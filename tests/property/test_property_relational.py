"""Property-based tests for the relational engines and the AGM bound."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.agm import uniform_random_database
from repro.relational.database import Database
from repro.relational.estimate import agm_bound
from repro.relational.joins import evaluate_left_deep, hash_join
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import boolean_generic_join, generic_join
from repro.relational.yannakakis import yannakakis

SHAPES = {
    "triangle": JoinQuery.triangle,
    "cycle4": lambda: JoinQuery.cycle(4),
    "path3": lambda: JoinQuery.path(3),
    "star3": lambda: JoinQuery.star(3),
}

ACYCLIC = {"path3", "star3"}


def normalize(relation, attrs):
    idx = [relation.attributes.index(a) for a in attrs]
    return {tuple(t[i] for i in idx) for t in relation.tuples}


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 30),
    domain=st.integers(1, 8),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_engines_agree(shape, size, domain, seed):
    query = SHAPES[shape]()
    db = uniform_random_database(query, size, domain, seed=seed)
    gj = normalize(generic_join(query, db), query.attributes)
    plan = normalize(evaluate_left_deep(query, db).answer, query.attributes)
    assert gj == plan
    assert boolean_generic_join(query, db) == bool(gj)
    if shape in ACYCLIC:
        y = normalize(yannakakis(query, db), query.attributes)
        assert y == gj


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 25),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_agm_bound_dominates(shape, size, domain, seed):
    query = SHAPES[shape]()
    db = uniform_random_database(query, size, domain, seed=seed)
    answer = generic_join(query, db)
    assert len(answer) <= agm_bound(query, db) + 1e-6


@given(
    tuples_left=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12
    ),
    tuples_right=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12
    ),
)
@settings(max_examples=60, deadline=None)
def test_hash_join_is_commutative(tuples_left, tuples_right):
    left = Relation("L", ("a", "b"), tuples_left)
    right = Relation("R", ("b", "c"), tuples_right)
    lr = hash_join(left, right)
    rl = hash_join(right, left)
    assert normalize(lr, ("a", "b", "c")) == normalize(rl, ("a", "b", "c"))


@given(
    tuples=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10)
)
@settings(max_examples=40, deadline=None)
def test_join_with_self_is_identity(tuples):
    r = Relation("R", ("a", "b"), tuples)
    joined = hash_join(r, Relation("R2", ("a", "b"), tuples))
    assert normalize(joined, ("a", "b")) == set(r.tuples)


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 15),
    domain=st.integers(1, 5),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_generic_join_invariant_under_attribute_order(shape, size, domain, seed):
    """Any permutation of the attribute order yields the same answer set
    — the worst-case-optimality claim is order-free (Theorem 3.3)."""
    from itertools import permutations

    query = SHAPES[shape]()
    db = uniform_random_database(query, size, domain, seed=seed)
    expected = normalize(generic_join(query, db), query.attributes)
    for order in permutations(query.attributes):
        full = normalize(
            generic_join(query, db, attribute_order=order), query.attributes
        )
        assert full == expected
        assert boolean_generic_join(query, db, attribute_order=order) == bool(
            expected
        )
