"""Factorized results agree byte-for-byte with the flat engines.

The dichotomy router (`repro.relational.factorized.evaluate`) must be
observationally equivalent to materialize-then-project on every query
— free-connex acyclic instances served from a d-representation, cyclic
and non-free-connex instances from the WCOJ fallback — on both
backends, with identical op totals across backends.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import CostCounter
from repro.generators.agm import uniform_random_database
from repro.relational.algebra import project
from repro.relational.factorized import evaluate, factorize, is_free_connex
from repro.relational.query import Atom, JoinQuery
from repro.relational.wcoj import generic_join

SHAPES = {
    "triangle": JoinQuery.triangle,
    "cycle4": lambda: JoinQuery.cycle(4),
    "path3": lambda: JoinQuery.path(3),
    "path4": lambda: JoinQuery.path(4),
    "star3": lambda: JoinQuery.star(3),
    "lw3": lambda: JoinQuery.loomis_whitney(3),
}

ACYCLIC = {"path3", "path4", "star3"}


def _free_subset(query, mask):
    """A nonempty attribute subset selected by the bitmask, free order."""
    attrs = query.attributes
    picked = tuple(a for i, a in enumerate(attrs) if mask & (1 << i))
    return picked or attrs[:1]


def _reference(query, database, free):
    flat = project(generic_join(query, database), free)
    return repr(sorted(flat.tuples)).encode()


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    mask=st.integers(1, 2**6 - 1),
    size=st.integers(1, 25),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_router_matches_flat_projection_byte_for_byte(
    shape, mask, size, domain, seed
):
    query = SHAPES[shape]()
    free = _free_subset(query, mask)
    database = uniform_random_database(query, size, domain, seed=seed)
    expected = _reference(query, database, free)
    result = evaluate(query, database, free=free)
    assert repr(sorted(result.materialize().tuples)).encode() == expected
    assert repr(sorted(result.enumerate())).encode() == expected
    assert result.count() == len(set(project(
        generic_join(query, database), free
    ).tuples))
    expected_method = "factorized" if is_free_connex(query, free) else "wcoj"
    assert result.method == expected_method


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    mask=st.integers(1, 2**6 - 1),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_router_backend_parity(shape, mask, size, domain, seed):
    query = SHAPES[shape]()
    free = _free_subset(query, mask)
    naive = uniform_random_database(query, size, domain, seed=seed)
    columnar = naive.with_backend("columnar")
    c1, c2 = CostCounter(), CostCounter()
    r1 = evaluate(query, naive, free=free, counter=c1)
    r2 = evaluate(query, columnar, free=free, counter=c2)
    assert sorted(r1.materialize().tuples) == sorted(r2.materialize().tuples)
    assert r1.count() == r2.count()
    assert r1.method == r2.method
    assert r1.num_nodes == r2.num_nodes
    assert c1.total == c2.total


@given(
    shape=st.sampled_from(sorted(set(SHAPES) - ACYCLIC)),
    size=st.integers(1, 20),
    domain=st.integers(1, 5),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_cyclic_queries_route_to_wcoj(shape, size, domain, seed):
    query = SHAPES[shape]()
    database = uniform_random_database(query, size, domain, seed=seed)
    result = evaluate(query, database)
    assert result.method == "wcoj"
    assert result.num_nodes == 0


@given(
    shape=st.sampled_from(sorted(ACYCLIC)),
    size=st.integers(1, 25),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_full_acyclic_queries_factorize(shape, size, domain, seed):
    query = SHAPES[shape]()
    database = uniform_random_database(query, size, domain, seed=seed)
    result = factorize(query, database)
    assert result.method == "factorized"
    expected = _reference(query, database, query.attributes)
    assert repr(sorted(result.materialize().tuples)).encode() == expected


# -- explicit dichotomy fixtures --------------------------------------


FREE_CONNEX_FIXTURES = [
    (JoinQuery.path(3), ("a0", "a1")),
    (JoinQuery.path(3), ("a1", "a2")),
    (JoinQuery.star(2), ("c", "l0")),
    (JoinQuery.star(3), ("c",)),
    (JoinQuery.path(2), ("a0", "a1", "a2")),
    # Disconnected free-connex product: answers are a cross product.
    (JoinQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))]), ("a", "c")),
]

NON_FREE_CONNEX_FIXTURES = [
    # Endpoints of a path: the extended hypergraph closes a cycle.
    (JoinQuery.path(3), ("a0", "a3")),
    # The BMM star projection — acyclic yet hard (§8).
    (JoinQuery.star(2), ("l0", "l1")),
    (JoinQuery.star(3), ("l0", "l1", "l2")),
    # Cyclic query: never free-connex, whatever the projection.
    (JoinQuery.triangle(), JoinQuery.triangle().attributes),
]


def test_free_connex_fixtures():
    for query, free in FREE_CONNEX_FIXTURES:
        assert is_free_connex(query, free), (query, free)


def test_non_free_connex_fixtures():
    for query, free in NON_FREE_CONNEX_FIXTURES:
        assert not is_free_connex(query, free), (query, free)


def test_fixture_routing_and_agreement():
    for query, free in FREE_CONNEX_FIXTURES + NON_FREE_CONNEX_FIXTURES:
        database = uniform_random_database(query, 15, 4, seed=11)
        result = evaluate(query, database, free=free)
        expected = _reference(query, database, free)
        assert repr(sorted(result.materialize().tuples)).encode() == expected
        fc = is_free_connex(query, free)
        assert result.method == ("factorized" if fc else "wcoj")
