"""Property-based tests for treewidth machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.treewidth.exact import treewidth_exact
from repro.treewidth.heuristics import (
    decomposition_from_elimination_order,
    min_degree_order,
    min_fill_order,
    treewidth_min_degree,
    treewidth_min_fill,
)
from repro.treewidth.nice import make_nice


@st.composite
def graphs(draw, max_vertices=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    g = Graph(vertices=range(n))
    if n >= 2:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = draw(st.lists(st.sampled_from(pairs), max_size=len(pairs)))
        for u, v in chosen:
            g.add_edge(u, v)
    return g


class TestDecompositionProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_heuristic_decompositions_valid(self, g):
        for heuristic in (treewidth_min_degree, treewidth_min_fill):
            width, dec = heuristic(g)
            dec.validate(g)
            assert dec.width == width

    @given(graphs(max_vertices=7))
    @settings(max_examples=40, deadline=None)
    def test_exact_at_most_heuristics(self, g):
        exact, dec = treewidth_exact(g)
        dec.validate(g)
        assert exact <= treewidth_min_degree(g)[0]
        assert exact <= treewidth_min_fill(g)[0]

    @given(graphs(max_vertices=7))
    @settings(max_examples=40, deadline=None)
    def test_exact_lower_bounded_by_clique_number(self, g):
        from repro.graphs.clique import max_clique

        exact, __ = treewidth_exact(g)
        assert exact >= len(max_clique(g)) - 1

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_nice_conversion_preserves_width(self, g):
        width, dec = treewidth_min_fill(g)
        nice = make_nice(dec)
        nice.validate()
        assert nice.width == width

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_orders_are_permutations(self, g):
        for order_fn in (min_degree_order, min_fill_order):
            order = order_fn(g)
            assert sorted(order) == sorted(g.vertices)

    @given(graphs(max_vertices=6), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_random_order_still_valid(self, g, rand):
        order = list(g.vertices)
        rand.shuffle(order)
        dec = decomposition_from_elimination_order(g, order)
        dec.validate(g)
        exact, __ = treewidth_exact(g)
        assert dec.width >= exact
