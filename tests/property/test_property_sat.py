"""Property-based tests for SAT solvers and the Schaefer classifier."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.schaefer import (
    BooleanRelation,
    classify_relation_set,
    is_affine_relation,
    is_bijunctive_relation,
    is_dual_horn_relation,
    is_horn_relation,
)
from repro.sat.two_sat import solve_2sat


@st.composite
def cnf_formulas(draw, max_vars=5, max_clauses=8, max_width=3):
    n = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(0, max_clauses))
    clauses = []
    for __ in range(num_clauses):
        width = draw(st.integers(1, min(max_width, n)))
        variables = draw(
            st.lists(st.integers(1, n), min_size=width, max_size=width, unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append([v if s else -v for v, s in zip(variables, signs)])
    return CNF(n, clauses)


@st.composite
def boolean_relations(draw, max_arity=3):
    arity = draw(st.integers(1, max_arity))
    tuples = draw(
        st.lists(
            st.tuples(*(st.integers(0, 1) for __ in range(arity))),
            min_size=1,
            max_size=2**arity,
        )
    )
    return BooleanRelation(arity, tuples)


def enumerate_sat(formula: CNF) -> bool:
    for values in product((False, True), repeat=formula.num_variables):
        assignment = dict(zip(range(1, formula.num_variables + 1), values))
        if formula.evaluate(assignment):
            return True
    return not formula.clauses


class TestDPLLProperties:
    @given(cnf_formulas())
    @settings(max_examples=80, deadline=None)
    def test_dpll_sound_and_complete(self, formula):
        model = solve_dpll(formula)
        assert (model is not None) == enumerate_sat(formula)
        if model is not None:
            assert formula.evaluate(model)

    @given(cnf_formulas(max_width=2))
    @settings(max_examples=80, deadline=None)
    def test_2sat_matches_dpll(self, formula):
        fast = solve_2sat(formula)
        slow = solve_dpll(formula)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert formula.evaluate(fast)

    @given(cnf_formulas())
    @settings(max_examples=40, deadline=None)
    def test_adding_clause_only_restricts(self, formula):
        if not formula.clauses:
            return
        weaker = CNF(formula.num_variables, list(formula.clauses)[:-1])
        if solve_dpll(weaker) is None:
            assert solve_dpll(formula) is None


class TestSchaeferProperties:
    @given(boolean_relations())
    @settings(max_examples=60, deadline=None)
    def test_horn_iff_and_closed(self, relation):
        closed = all(
            tuple(a & b for a, b in zip(s, t)) in relation.tuples
            for s in relation.tuples
            for t in relation.tuples
        )
        assert is_horn_relation(relation) == closed

    @given(boolean_relations())
    @settings(max_examples=60, deadline=None)
    def test_full_relation_in_every_class(self, relation):
        full = BooleanRelation(
            relation.arity, list(product((0, 1), repeat=relation.arity))
        )
        assert is_horn_relation(full)
        assert is_dual_horn_relation(full)
        assert is_bijunctive_relation(full)
        assert is_affine_relation(full)

    @given(boolean_relations())
    @settings(max_examples=60, deadline=None)
    def test_singleton_relation_always_tractable(self, relation):
        single = BooleanRelation(relation.arity, [next(iter(relation.tuples))])
        verdict = classify_relation_set([single])
        assert verdict.tractable  # a single tuple is closed under everything

    @given(st.lists(boolean_relations(), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_subset_of_tractable_is_tractable(self, relations):
        verdict_all = classify_relation_set(relations)
        if verdict_all.tractable:
            assert classify_relation_set(relations[:1]).tractable
