"""Property-based tests for CSP solvers and translations."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.backtracking import solve_backtracking
from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.consistency import propagate_domains
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.treewidth_dp import count_with_treewidth, solve_with_treewidth


@st.composite
def csp_instances(draw, max_vars=5, max_domain=3, max_constraints=6):
    num_vars = draw(st.integers(2, max_vars))
    domain_size = draw(st.integers(1, max_domain))
    variables = [f"v{i}" for i in range(num_vars)]
    domain = list(range(domain_size))
    all_pairs = list(product(domain, repeat=2))
    num_constraints = draw(st.integers(0, max_constraints))
    constraints = []
    for __ in range(num_constraints):
        indices = draw(
            st.lists(
                st.integers(0, num_vars - 1), min_size=2, max_size=2, unique=True
            )
        )
        relation = draw(st.lists(st.sampled_from(all_pairs), max_size=len(all_pairs)))
        constraints.append(
            Constraint((variables[indices[0]], variables[indices[1]]), relation)
        )
    return CSPInstance(variables, domain, constraints)


class TestSolverAgreement:
    @given(csp_instances())
    @settings(max_examples=60, deadline=None)
    def test_three_solvers_agree(self, inst):
        bf = solve_bruteforce(inst)
        bt = solve_backtracking(inst)
        dp = solve_with_treewidth(inst)
        assert (bf is None) == (bt is None) == (dp is None)
        for solution in (bf, bt, dp):
            if solution is not None:
                assert inst.is_solution(solution)

    @given(csp_instances(max_vars=4))
    @settings(max_examples=50, deadline=None)
    def test_counting_agrees(self, inst):
        assert count_bruteforce(inst) == count_with_treewidth(inst)

    @given(csp_instances())
    @settings(max_examples=50, deadline=None)
    def test_count_zero_iff_unsat(self, inst):
        count = count_with_treewidth(inst)
        assert (count == 0) == (solve_bruteforce(inst) is None)


class TestGACProperties:
    @given(csp_instances())
    @settings(max_examples=50, deadline=None)
    def test_gac_preserves_satisfiability(self, inst):
        domains = propagate_domains(inst)
        satisfiable = solve_bruteforce(inst) is not None
        if domains is None:
            assert not satisfiable
        elif satisfiable:
            # Any solution survives inside the filtered domains.
            solution = solve_bruteforce(inst)
            for var, val in solution.items():
                assert val in domains[var]

    @given(csp_instances())
    @settings(max_examples=40, deadline=None)
    def test_gac_domains_shrink_only(self, inst):
        domains = propagate_domains(inst)
        if domains is not None:
            for var in inst.variables:
                assert domains[var] <= set(inst.domain)


class TestInstanceProperties:
    @given(csp_instances())
    @settings(max_examples=40, deadline=None)
    def test_restrict_components_preserves_solutions(self, inst):
        """Solving per connected component and merging equals solving
        whole — the decomposition the Special CSP solver relies on."""
        components = inst.primal_graph().connected_components()
        merged: dict = {}
        for comp in components:
            sub = inst.restrict(comp)
            solution = solve_bruteforce(sub)
            if solution is None:
                assert solve_bruteforce(inst) is None
                return
            merged.update(solution)
        assert inst.is_solution(merged)

    @given(csp_instances())
    @settings(max_examples=40, deadline=None)
    def test_primal_graph_covers_scopes(self, inst):
        primal = inst.primal_graph()
        for c in inst.constraints:
            scope = [v for v in c.variables()]
            for i, u in enumerate(scope):
                for v in scope[i + 1:]:
                    assert primal.has_edge(u, v)
