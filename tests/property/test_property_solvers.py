"""Property-based tests for CDCL, SAT-encoded CSP, and enumeration."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.sat_encoding import solve_via_sat
from repro.generators.agm import uniform_random_database
from repro.relational.counting_answers import count_answers
from repro.relational.enumeration import enumerate_acyclic, enumerate_nested_loop
from repro.relational.query import JoinQuery
from repro.relational.wcoj import generic_join
from repro.sat.cdcl import solve_cdcl
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.model_counting import count_models


@st.composite
def cnf_formulas(draw, max_vars=6, max_clauses=10):
    n = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(0, max_clauses))
    clauses = []
    for __ in range(num_clauses):
        width = draw(st.integers(1, min(3, n)))
        variables = draw(
            st.lists(st.integers(1, n), min_size=width, max_size=width, unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append([v if s else -v for v, s in zip(variables, signs)])
    return CNF(n, clauses)


@st.composite
def csp_instances(draw, max_vars=4, max_domain=3):
    num_vars = draw(st.integers(2, max_vars))
    domain_size = draw(st.integers(1, max_domain))
    variables = [f"v{i}" for i in range(num_vars)]
    domain = list(range(domain_size))
    all_pairs = list(product(domain, repeat=2))
    constraints = []
    for __ in range(draw(st.integers(0, 5))):
        pair = draw(
            st.lists(st.integers(0, num_vars - 1), min_size=2, max_size=2, unique=True)
        )
        relation = draw(st.lists(st.sampled_from(all_pairs), max_size=len(all_pairs)))
        constraints.append(
            Constraint((variables[pair[0]], variables[pair[1]]), relation)
        )
    return CSPInstance(variables, domain, constraints)


class TestCDCLProperties:
    @given(cnf_formulas())
    @settings(max_examples=80, deadline=None)
    def test_cdcl_matches_dpll(self, formula):
        cdcl = solve_cdcl(formula)
        dpll = solve_dpll(formula)
        assert (cdcl is None) == (dpll is None)
        if cdcl is not None:
            assert formula.evaluate(cdcl)

    @given(cnf_formulas(max_vars=5))
    @settings(max_examples=50, deadline=None)
    def test_model_count_consistent_with_solvers(self, formula):
        count = count_models(formula)
        satisfiable = solve_cdcl(formula) is not None
        assert (count > 0) == satisfiable
        assert count <= 2**formula.num_variables


class TestSatEncodedCSPProperties:
    @given(csp_instances())
    @settings(max_examples=50, deadline=None)
    def test_sat_route_matches_bruteforce(self, inst):
        oracle = solve_bruteforce(inst)
        got = solve_via_sat(inst)
        assert (got is None) == (oracle is None)
        if got is not None:
            assert inst.is_solution(got)


class TestEnumerationProperties:
    @given(
        shape=st.sampled_from(["path2", "path3", "star2", "star3"]),
        size=st.integers(1, 20),
        domain=st.integers(1, 5),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_enumerators_complete_and_duplicate_free(self, shape, size, domain, seed):
        query = {
            "path2": lambda: JoinQuery.path(2),
            "path3": lambda: JoinQuery.path(3),
            "star2": lambda: JoinQuery.star(2),
            "star3": lambda: JoinQuery.star(3),
        }[shape]()
        database = uniform_random_database(query, size, domain, seed=seed)
        answer = generic_join(query, database)
        idx = [answer.attributes.index(a) for a in query.attributes]
        expected = {tuple(t[i] for i in idx) for t in answer.tuples}

        acyclic = list(enumerate_acyclic(query, database))
        naive = list(enumerate_nested_loop(query, database))
        assert set(acyclic) == expected
        assert set(naive) == expected
        assert len(acyclic) == len(expected)
        assert count_answers(query, database) == len(expected)
