"""Property-based tests for the fine-grained package."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finegrained.edit_distance import edit_distance, edit_distance_banded
from repro.finegrained.orthogonal_vectors import OVInstance, are_orthogonal, has_orthogonal_pair

short_strings = st.text(alphabet="abc", max_size=10)


class TestEditDistanceMetric:
    @given(short_strings, short_strings)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_strings)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(short_strings, short_strings)
    @settings(max_examples=60, deadline=None)
    def test_positivity(self, a, b):
        d = edit_distance(a, b)
        assert d >= 0
        assert (d == 0) == (a == b)

    @given(short_strings, short_strings, short_strings)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(short_strings, short_strings)
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0)

    @given(short_strings, short_strings, st.text(alphabet="abc", max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_common_prefix_invariance(self, a, b, prefix):
        assert edit_distance(prefix + a, prefix + b) == edit_distance(a, b)

    @given(short_strings, short_strings, st.integers(0, 12))
    @settings(max_examples=80, deadline=None)
    def test_banded_consistency(self, a, b, k):
        exact = edit_distance(a, b)
        banded = edit_distance_banded(a, b, k)
        if exact <= k:
            assert banded == exact
        else:
            assert banded is None


@st.composite
def vector_families(draw, max_n=6, max_d=5):
    d = draw(st.integers(1, max_d))
    vec = st.tuples(*(st.integers(0, 1) for __ in range(d)))
    left = draw(st.lists(vec, min_size=0, max_size=max_n))
    right = draw(st.lists(vec, min_size=0, max_size=max_n))
    return OVInstance.from_lists(left, right)


class TestOVProperties:
    @given(vector_families())
    @settings(max_examples=80, deadline=None)
    def test_matches_definition(self, instance):
        expected = any(
            are_orthogonal(a, b)
            for a in instance.left
            for b in instance.right
        )
        assert has_orthogonal_pair(instance) == expected

    @given(vector_families())
    @settings(max_examples=40, deadline=None)
    def test_swap_sides_preserves_answer(self, instance):
        swapped = OVInstance(instance.right, instance.left, instance.dimension)
        assert has_orthogonal_pair(instance) == has_orthogonal_pair(swapped)

    @given(vector_families())
    @settings(max_examples=40, deadline=None)
    def test_zero_vector_dominates(self, instance):
        if not instance.right:
            return
        zero = (0,) * instance.dimension
        augmented = OVInstance(
            instance.left + (zero,), instance.right, instance.dimension
        )
        if instance.right:
            assert has_orthogonal_pair(augmented)
