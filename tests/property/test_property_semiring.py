"""Semiring laws and the aggregate-equals-fold invariant.

This file is the law fixture every registered :class:`Semiring` points
at (``laws=``, checked by REP012): it property-checks the semiring
axioms plus the declared idempotence/absorption flags on
annotation-reachable values, and the repo-wide invariant that for
every (semiring, engine, backend) triple, aggregating through the
generic core is byte-identical to materializing the full answer and
folding it flat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import CostCounter
from repro.generators.agm import uniform_random_database
from repro.relational.factorized import factorize
from repro.relational.query import JoinQuery
from repro.relational.semiring import all_semirings, get_semiring
from repro.relational.wcoj import generic_join, generic_join_aggregate
from repro.relational.yannakakis import semiring_yannakakis

SHAPES = {
    "triangle": JoinQuery.triangle,
    "cycle4": lambda: JoinQuery.cycle(4),
    "path2": lambda: JoinQuery.path(2),
    "path3": lambda: JoinQuery.path(3),
    "star2": lambda: JoinQuery.star(2),
    "star3": lambda: JoinQuery.star(3),
}

ACYCLIC = {"path2", "path3", "star2", "star3"}

SEMIRING_NAMES = sorted(s.name for s in all_semirings())


def _wire(semiring, value) -> bytes:
    """The canonical wire bytes of a value — byte-for-byte comparisons."""
    return repr(semiring.to_payload(value)).encode()


# -- the repo invariant: generic core ≡ materialize-then-fold ----------


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    name=st.sampled_from(SEMIRING_NAMES),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=80, deadline=None)
def test_every_engine_and_backend_matches_flat_fold(
    shape, name, size, domain, seed
):
    from repro.relational.semiring import aggregate_relation

    query = SHAPES[shape]()
    semiring = get_semiring(name)
    naive = uniform_random_database(query, size, domain, seed=seed)
    columnar = naive.with_backend("columnar")
    expected = _wire(
        semiring, aggregate_relation(semiring, query, generic_join(query, naive))
    )
    for database in (naive, columnar):
        assert _wire(
            semiring, generic_join_aggregate(query, database, semiring)
        ) == expected
        if shape in ACYCLIC:
            assert _wire(
                semiring, semiring_yannakakis(query, database, semiring)
            ) == expected
            assert _wire(
                semiring, factorize(query, database).aggregate(semiring)
            ) == expected


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    name=st.sampled_from(SEMIRING_NAMES),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_aggregate_backend_parity_values_and_ops(shape, name, size, domain, seed):
    query = SHAPES[shape]()
    semiring = get_semiring(name)
    naive = uniform_random_database(query, size, domain, seed=seed)
    columnar = naive.with_backend("columnar")
    c1, c2 = CostCounter(), CostCounter()
    v1 = generic_join_aggregate(query, naive, semiring, counter=c1)
    v2 = generic_join_aggregate(query, columnar, semiring, counter=c2)
    assert _wire(semiring, v1) == _wire(semiring, v2)
    assert c1.total == c2.total


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_op_counts_are_semiring_independent(shape, size, domain, seed):
    query = SHAPES[shape]()
    database = uniform_random_database(query, size, domain, seed=seed)
    totals = set()
    for name in SEMIRING_NAMES:
        counter = CostCounter()
        generic_join_aggregate(query, database, get_semiring(name), counter=counter)
        totals.add(counter.total)
    assert len(totals) == 1


# -- the semiring axioms on annotation-reachable values ----------------

_ATOM = st.tuples(
    st.sampled_from(["R", "S", "T"]),
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
)

#: Sum-of-products specs: every value an engine can reach is a ⊕ of
#: ⊗-products of tuple annotations (possibly empty: zero and one).
_SPEC = st.lists(st.lists(_ATOM, max_size=3), max_size=3)


def _value(semiring, spec):
    acc = semiring.zero
    for monomial in spec:
        weight = semiring.one
        for relation_name, tup in monomial:
            weight = semiring.mul(weight, semiring.annotate(relation_name, tup))
        acc = semiring.add(acc, weight)
    return acc


@given(
    name=st.sampled_from(SEMIRING_NAMES),
    sa=_SPEC,
    sb=_SPEC,
    sc=_SPEC,
)
@settings(max_examples=150, deadline=None)
def test_semiring_laws(name, sa, sb, sc):
    s = get_semiring(name)
    x, y, z = (_value(s, spec) for spec in (sa, sb, sc))
    # Commutative monoid under ⊕ with identity zero.
    assert s.add(x, y) == s.add(y, x)
    assert s.add(s.add(x, y), z) == s.add(x, s.add(y, z))
    assert s.add(x, s.zero) == x
    # Commutative monoid under ⊗ with identity one, annihilator zero.
    assert s.mul(x, y) == s.mul(y, x)
    assert s.mul(s.mul(x, y), z) == s.mul(x, s.mul(y, z))
    assert s.mul(x, s.one) == x
    assert s.mul(x, s.zero) == s.zero
    # ⊗ distributes over ⊕.
    assert s.mul(x, s.add(y, z)) == s.add(s.mul(x, y), s.mul(x, z))


@given(name=st.sampled_from(SEMIRING_NAMES), sa=_SPEC, sb=_SPEC)
@settings(max_examples=100, deadline=None)
def test_declared_flags_hold(name, sa, sb):
    s = get_semiring(name)
    x, y = _value(s, sa), _value(s, sb)
    if s.idempotent_add:
        assert s.add(x, x) == x
    if s.absorptive:
        assert s.add(x, s.mul(x, y)) == x
    if s.annotation_free:
        assert s.annotate("R", (1, 2)) == s.one


@given(
    name=st.sampled_from(SEMIRING_NAMES),
    sa=_SPEC,
    n=st.integers(0, 6),
)
@settings(max_examples=100, deadline=None)
def test_repeat_add_is_iterated_add(name, sa, n):
    s = get_semiring(name)
    x = _value(s, sa)
    acc = s.zero
    for _ in range(n):
        acc = s.add(acc, x)
    assert s.repeat_add(x, n) == acc
