"""Sharded + coalesced + result-cached responses ≡ inline responses.

The scaling machinery of PR 9 — worker-process dispatch, single-flight
coalescing, and the query result cache — is allowed to change *when*
and *where* an evaluation runs, never *what it answers*. This suite
drives two socketless service instances per backend over random
queries and stores: a plain inline one (``workers=0``, no coalescing,
no result cache) and a fully loaded one (``workers=2`` spawned pools +
coalescing + result cache), and asserts the ``/query`` responses are
byte-identical through :func:`strip_volatile` (the sanctioned filter:
request ids, cache markers, and the coalesced flag legitimately
differ; answers, counts, route, reason, ops, and request-scoped
metrics must not) — across all three modes and both kernel backends,
through first evaluation, result-cache repeat, and a coalesced
concurrent batch.

Worker pools spawn once per module (they are warm processes, exactly
as in production); every example re-registers the database, which
exercises replication and cache invalidation on the loaded service.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.agm import uniform_random_database
from repro.relational.query import JoinQuery
from repro.service import QueryService
from repro.service.http import HttpRequest
from repro.service.server import strip_volatile
from repro.service.store import relations_payload

SHAPES = {
    "triangle": JoinQuery.triangle,
    "path3": lambda: JoinQuery.path(3),
    "star3": lambda: JoinQuery.star(3),
    "cycle4": lambda: JoinQuery.cycle(4),
}

BACKENDS = ("naive", "columnar")


def _free_subset(query, mask):
    attrs = query.attributes
    picked = tuple(a for i, a in enumerate(attrs) if mask & (1 << i))
    return picked or attrs[:1]


async def _post(service, path, payload):
    """One socketless request; returns (status, parsed JSON body)."""
    body = json.dumps(payload).encode()
    data = await service.dispatch(
        HttpRequest(method="POST", path=path, body=body)
    )
    head, __, response_body = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(response_body)


def _stripped(payload):
    """The byte-identity comparison form."""
    return json.dumps(strip_volatile(payload), sort_keys=True)


@pytest.fixture(scope="module")
def harness():
    """One persistent loop + per-backend (inline, loaded) service pairs.

    A single loop for every example keeps the loaded services' worker
    pools and single-flight tasks on the loop that created them.
    """
    loop = asyncio.new_event_loop()
    pairs = {}
    for backend in BACKENDS:
        inline = QueryService(backend=backend, coalesce=False)
        loaded = QueryService(
            backend=backend,
            workers=2,
            coalesce=True,
            result_cache_capacity=64,
        )
        loop.run_until_complete(loaded.ensure_executor())
        pairs[backend] = (inline, loaded)
    yield loop, pairs
    for __, loaded in pairs.values():
        loaded.executor.shutdown()
    loop.close()


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    mask=st.integers(1, 2**6 - 1),
    mode=st.sampled_from(["enumerate", "count", "boolean"]),
    backend=st.sampled_from(BACKENDS),
    size=st.integers(1, 12),
    domain=st.integers(1, 5),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=20, deadline=None)
def test_loaded_service_is_byte_identical_to_inline(
    harness, shape, mask, mode, backend, size, domain, seed
):
    loop, pairs = harness
    inline, loaded = pairs[backend]
    query = SHAPES[shape]()
    relations = relations_payload(uniform_random_database(query, size, domain, seed=seed))
    request = {
        "database": "hdb",
        "atoms": [
            {"relation": atom.relation_name, "attributes": list(atom.attributes)}
            for atom in query.atoms
        ],
        "mode": mode,
    }
    if mode == "enumerate":
        request["free"] = list(_free_subset(query, mask))

    async def body():
        for service in (inline, loaded):
            status, __ = await _post(
                service, "/databases", {"name": "hdb", "relations": relations}
            )
            assert status == 200

        # First evaluation: inline on-loop vs. worker dispatch.
        status, reference = await _post(inline, "/query", request)
        assert status == 200
        status, first = await _post(loaded, "/query", request)
        assert status == 200
        assert _stripped(first) == _stripped(reference)

        # Repeat: served from the result cache, still identical.
        status, repeat = await _post(loaded, "/query", request)
        assert status == 200
        assert repeat["result_cache"]["hit"] is True
        assert _stripped(repeat) == _stripped(reference)

        # A concurrent identical batch (coalesced and/or cached —
        # scheduling decides which): every response identical.
        batch = await asyncio.gather(
            *(_post(loaded, "/query", request) for _ in range(3))
        )
        for status, payload in batch:
            assert status == 200
            assert _stripped(payload) == _stripped(reference)

        # And the inline service repeats itself, cache or not.
        status, again = await _post(inline, "/query", request)
        assert status == 200
        assert _stripped(again) == _stripped(reference)

    loop.run_until_complete(body())
