"""Property-based tests for graph algorithms (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.clique import find_clique_bruteforce, max_clique
from repro.graphs.graph import DiGraph, Graph
from repro.graphs.triangle import (
    count_triangles_matrix,
    find_triangle_enumeration,
    find_triangle_matrix,
    find_triangle_naive,
)
from repro.graphs.vertex_cover import find_vertex_cover_fpt, is_vertex_cover


@st.composite
def graphs(draw, max_vertices=8):
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    g = Graph(vertices=range(n))
    if n >= 2:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = draw(st.lists(st.sampled_from(pairs), max_size=len(pairs)))
        for u, v in chosen:
            g.add_edge(u, v)
    return g


@st.composite
def digraphs(draw, max_vertices=7):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=2 * n,
        )
    )
    return DiGraph(vertices=range(n), edges=edges)


class TestGraphInvariants:
    @given(graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices) == 2 * g.num_edges

    @given(graphs())
    def test_complement_preserves_vertex_count(self, g):
        comp = g.complement()
        assert comp.num_vertices == g.num_vertices
        total = g.num_vertices * (g.num_vertices - 1) // 2
        assert g.num_edges + comp.num_edges == total

    @given(graphs())
    def test_components_partition_vertices(self, g):
        comps = g.connected_components()
        union = set()
        for c in comps:
            assert not (union & c)
            union |= c
        assert union == set(g.vertices)

    @given(graphs())
    def test_subgraph_of_component_has_no_external_edges(self, g):
        for comp in g.connected_components():
            sub = g.subgraph(comp)
            assert sub.num_vertices == len(comp)


class TestTriangleProperties:
    @given(graphs())
    @settings(max_examples=60)
    def test_detectors_agree(self, g):
        answers = {
            find_triangle_naive(g) is None,
            find_triangle_enumeration(g) is None,
            find_triangle_matrix(g) is None,
        }
        assert len(answers) == 1

    @given(graphs())
    @settings(max_examples=60)
    def test_count_positive_iff_triangle_found(self, g):
        count = count_triangles_matrix(g)
        found = find_triangle_enumeration(g)
        assert (count > 0) == (found is not None)


class TestCliqueProperties:
    @given(graphs(max_vertices=7))
    @settings(max_examples=40)
    def test_max_clique_is_clique_and_maximal(self, g):
        best = max_clique(g)
        assert g.is_clique(best)
        assert find_clique_bruteforce(g, len(best) + 1) is None

    @given(graphs(max_vertices=7), st.integers(0, 4))
    @settings(max_examples=40)
    def test_monotone_in_k(self, g, k):
        if find_clique_bruteforce(g, k + 1) is not None:
            assert find_clique_bruteforce(g, k) is not None


class TestVertexCoverProperties:
    @given(graphs(max_vertices=7))
    @settings(max_examples=40)
    def test_fpt_cover_is_cover(self, g):
        cover = find_vertex_cover_fpt(g, g.num_vertices)
        assert cover is not None
        assert is_vertex_cover(g, cover)

    @given(graphs(max_vertices=6))
    @settings(max_examples=40)
    def test_cover_complement_independent(self, g):
        cover = find_vertex_cover_fpt(g, g.num_vertices)
        outside = set(g.vertices) - set(cover)
        for u in outside:
            for v in outside:
                if u != v:
                    assert not g.has_edge(u, v)


class TestSCCProperties:
    @given(digraphs())
    @settings(max_examples=60)
    def test_scc_partition(self, d):
        comps = d.strongly_connected_components()
        union = set()
        for c in comps:
            assert not (union & c)
            union |= c
        assert union == set(d.vertices)

    @given(digraphs())
    @settings(max_examples=40)
    def test_scc_mutual_reachability(self, d):
        def reachable(src):
            seen = {src}
            stack = [src]
            while stack:
                v = stack.pop()
                for w in d.successors(v):
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            return seen

        for comp in d.strongly_connected_components():
            members = list(comp)
            for v in members[1:]:
                assert v in reachable(members[0])
                assert members[0] in reachable(v)
