"""Cached plans answer byte-identically to cold routing, on every backend.

The plan cache stores only the *route decision* (a pure function of
query shape, free tuple, and mode), so replaying a cached plan through
``run_route`` must produce byte-identical answers to a cold
``execute_route`` — across query shapes, projections, modes, and both
kernel backends. This is the service's core correctness contract: a
hot cache can change latency, never answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.agm import uniform_random_database
from repro.relational.query import JoinQuery
from repro.relational.router import decide_route, execute_route, run_route
from repro.service.plan_cache import PlanCache

SHAPES = {
    "triangle": JoinQuery.triangle,
    "path3": lambda: JoinQuery.path(3),
    "path4": lambda: JoinQuery.path(4),
    "star3": lambda: JoinQuery.star(3),
    "cycle4": lambda: JoinQuery.cycle(4),
}


def _free_subset(query, mask):
    attrs = query.attributes
    picked = tuple(a for i, a in enumerate(attrs) if mask & (1 << i))
    return picked or attrs[:1]


def _wire_bytes(answer):
    """The canonical wire form the service serializes (sorted by repr)."""
    if answer.relation is not None:
        return repr(sorted(answer.relation.tuples, key=repr)).encode()
    if answer.count is not None:
        return repr(answer.count).encode()
    return repr(answer.nonempty).encode()


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    mask=st.integers(1, 2**6 - 1),
    mode=st.sampled_from(["enumerate", "boolean"]),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_cached_plan_matches_cold_route_on_both_backends(
    shape, mask, mode, size, domain, seed
):
    query = SHAPES[shape]()
    free = _free_subset(query, mask) if mode == "enumerate" else None
    cache = PlanCache(capacity=8)
    naive = uniform_random_database(query, size, domain, seed=seed)
    for database in (naive, naive.with_backend("columnar")):
        cold = execute_route(query, database, free=free, mode=mode)
        plan, first_hit = cache.get_or_build(
            query, free, mode, "db", "fp", database.backend
        )
        warm = run_route(query, database, plan.decision, free=plan.free)
        assert _wire_bytes(warm) == _wire_bytes(cold)
        assert warm.decision == cold.decision
        # Second lookup must hit and replay the same plan object.
        again, hit = cache.get_or_build(
            query, free, mode, "db", "fp", database.backend
        )
        assert hit and again is plan
        rewarm = run_route(query, database, again.decision, free=again.free)
        assert _wire_bytes(rewarm) == _wire_bytes(cold)


@given(
    shape=st.sampled_from(["triangle", "path3", "star3"]),
    size=st.integers(1, 15),
    domain=st.integers(1, 5),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_count_mode_cached_plan_matches_cold(shape, size, domain, seed):
    query = SHAPES[shape]()
    database = uniform_random_database(query, size, domain, seed=seed)
    cold = execute_route(query, database, mode="count")
    decision = decide_route(query, mode="count")
    warm = run_route(query, database, decision)
    assert warm.count == cold.count
    assert warm.decision == cold.decision
