"""Property-based round trips for the certified-transform pipeline.

For each transform: apply it to random instances (both satisfiable and
unsatisfiable ones arise), solve the *target*, pull the solution back
through the certified back-map, and check it solves the *source* — plus
the yes/no equivalence (the target is solvable iff the source is) and
the ``None → None`` contract. The same is done for composed chains,
where the pull-back walks every stage.
"""

from itertools import combinations, product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.backtracking import solve_backtracking
from repro.csp.bruteforce import solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.graphs.clique import has_clique
from repro.graphs.graph import Graph
from repro.reductions.clique_to_csp import clique_to_csp
from repro.reductions.sat_to_csp import sat_to_csp
from repro.relational.joins import evaluate_left_deep
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.transforms import compose, get_transform


@st.composite
def cnf_formulas(draw, max_vars=4, max_clauses=6):
    num_vars = draw(st.integers(2, max_vars))
    literals = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literals, min_size=1, max_size=3, unique_by=abs),
            min_size=1,
            max_size=max_clauses,
        )
    )
    return CNF(num_vars, clauses)


@st.composite
def three_cnf_formulas(draw, max_vars=4, max_clauses=5):
    """Exactly-3-literal clauses, as the 3SAT transforms require."""
    num_vars = draw(st.integers(3, max_vars))
    literals = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literals, min_size=3, max_size=3, unique_by=abs),
            min_size=1,
            max_size=max_clauses,
        )
    )
    return CNF(num_vars, clauses)


@st.composite
def graphs_with_k(draw, max_vertices=5):
    n = draw(st.integers(2, max_vertices))
    vertices = [f"u{i}" for i in range(n)]
    possible = list(combinations(vertices, 2))
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    graph = Graph()
    for u, v in possible:
        graph.add_vertex(u)
        graph.add_vertex(v)
    for u, v in edges:
        graph.add_edge(u, v)
    k = draw(st.integers(2, n))
    return graph, k


@st.composite
def binary_csp_instances(draw, max_vars=4, max_domain=3, max_constraints=5):
    num_vars = draw(st.integers(2, max_vars))
    domain = list(range(draw(st.integers(1, max_domain))))
    variables = [f"v{i}" for i in range(num_vars)]
    all_pairs = list(product(domain, repeat=2))
    constraints = []
    for __ in range(draw(st.integers(0, max_constraints))):
        scope = draw(
            st.lists(st.sampled_from(variables), min_size=2, max_size=2, unique=True)
        )
        relation = draw(st.lists(st.sampled_from(all_pairs), max_size=len(all_pairs)))
        constraints.append(Constraint(tuple(scope), relation))
    return CSPInstance(variables, domain, constraints)


class TestSatToCspRoundTrip:
    @given(three_cnf_formulas())
    @settings(max_examples=40, deadline=None)
    def test_yes_no_equivalence_and_pull_back(self, formula):
        reduction = sat_to_csp(formula)
        csp_solution = solve_bruteforce(reduction.target)
        sat_solution = solve_dpll(formula)
        assert (csp_solution is None) == (sat_solution is None)
        if csp_solution is not None:
            assert formula.evaluate(reduction.pull_back(csp_solution))
        assert reduction.pull_back(None) is None


class TestCliqueToCspRoundTrip:
    @given(graphs_with_k())
    @settings(max_examples=40, deadline=None)
    def test_solution_is_a_clique(self, graph_and_k):
        graph, k = graph_and_k
        reduction = clique_to_csp(graph, k)
        solution = solve_bruteforce(reduction.target)
        assert (solution is not None) == has_clique(graph, k)
        if solution is not None:
            clique = reduction.pull_back(solution)
            assert len(set(clique)) == k
            assert all(graph.has_edge(u, v) for u, v in combinations(clique, 2))
        assert reduction.pull_back(None) is None


class TestComplementRoundTrip:
    @given(graphs_with_k())
    @settings(max_examples=40, deadline=None)
    def test_clique_iff_independent_set(self, graph_and_k):
        graph, k = graph_and_k
        entry = get_transform("clique→independent-set")
        reduction = entry.apply(graph, k)
        complement, k_prime = reduction.target
        assert k_prime == k
        # An independent set in the complement is a clique in G.
        assert has_clique(graph, k) == has_clique(complement.complement(), k)


class TestComposedSatChain:
    @given(three_cnf_formulas(max_vars=3, max_clauses=3))
    @settings(max_examples=10, deadline=None)
    def test_two_step_chain_round_trips(self, formula):
        chain = compose(
            get_transform("3sat→3coloring"), get_transform("3coloring→csp")
        )
        reduction = chain.apply(formula)
        # The coloring CSP has 3 + 2n + 6m variables — far past brute
        # force, easy for backtracking.
        csp_solution = solve_backtracking(reduction.target)
        sat_solution = solve_dpll(formula)
        assert (csp_solution is None) == (sat_solution is None)
        if csp_solution is not None:
            assert formula.evaluate(reduction.pull_back(csp_solution))
        assert reduction.pull_back(None) is None


class TestCspQueryRoundTrip:
    @given(binary_csp_instances())
    @settings(max_examples=40, deadline=None)
    def test_composed_csp_query_csp_round_trips(self, instance):
        chain = compose(
            get_transform("csp→join-query"), get_transform("join-query→csp")
        )
        reduction = chain.apply(instance)
        final_solution = solve_bruteforce(reduction.target)
        direct_solution = solve_bruteforce(instance)
        assert (final_solution is None) == (direct_solution is None)
        if final_solution is not None:
            assert instance.is_solution(reduction.pull_back(final_solution))
        assert reduction.pull_back(None) is None

    @given(binary_csp_instances(max_vars=3, max_constraints=4))
    @settings(max_examples=25, deadline=None)
    def test_query_answers_pull_back_to_solutions(self, instance):
        entry = get_transform("csp→join-query")
        reduction = entry.apply(instance)
        query, database = reduction.target
        answers = evaluate_left_deep(query, database).answer.tuples
        assert bool(answers) == (solve_bruteforce(instance) is not None)
        for answer in answers:
            assert instance.is_solution(reduction.pull_back(answer))
