"""Backend parity: naive and columnar engines are observationally
identical — same answer sets AND same CostCounter op totals.

The columnar kernels (``repro.relational.kernels``) are a pure change
of representation; these properties pin the contract that makes the
golden baselines backend-invariant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import CostCounter
from repro.generators.agm import uniform_random_database
from repro.relational.database import Database
from repro.relational.enumeration import enumerate_acyclic
from repro.relational.joins import evaluate_left_deep
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import boolean_generic_join, generic_join
from repro.relational.yannakakis import boolean_yannakakis, yannakakis

SHAPES = {
    "triangle": JoinQuery.triangle,
    "cycle4": lambda: JoinQuery.cycle(4),
    "path3": lambda: JoinQuery.path(3),
    "star3": lambda: JoinQuery.star(3),
    "lw3": lambda: JoinQuery.loomis_whitney(3),
}

ACYCLIC = {"path3", "star3"}


def both_backends(query, size, domain, seed):
    db = uniform_random_database(query, size, domain, seed=seed)
    return db, db.with_backend("columnar")


def answers_and_ops(fn, query, db, **kw):
    counter = CostCounter()
    answer = fn(query, db, counter=counter, **kw)
    return sorted(answer.tuples), counter.total


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 30),
    domain=st.integers(1, 8),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_generic_join_backend_parity(shape, size, domain, seed):
    query = SHAPES[shape]()
    naive, columnar = both_backends(query, size, domain, seed)
    a_naive, ops_naive = answers_and_ops(generic_join, query, naive)
    a_col, ops_col = answers_and_ops(generic_join, query, columnar)
    assert a_naive == a_col
    assert ops_naive == ops_col


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 25),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_left_deep_backend_parity(shape, size, domain, seed):
    query = SHAPES[shape]()
    naive, columnar = both_backends(query, size, domain, seed)
    c1, c2 = CostCounter(), CostCounter()
    r1 = evaluate_left_deep(query, naive, counter=c1)
    r2 = evaluate_left_deep(query, columnar, counter=c2)
    assert sorted(r1.answer.tuples) == sorted(r2.answer.tuples)
    assert c1.total == c2.total
    assert r1.peak_intermediate_size == r2.peak_intermediate_size
    assert r1.total_intermediate_tuples == r2.total_intermediate_tuples


@given(
    shape=st.sampled_from(sorted(ACYCLIC)),
    size=st.integers(1, 25),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_yannakakis_and_enumeration_backend_parity(shape, size, domain, seed):
    query = SHAPES[shape]()
    naive, columnar = both_backends(query, size, domain, seed)
    a_naive, ops_naive = answers_and_ops(yannakakis, query, naive)
    a_col, ops_col = answers_and_ops(yannakakis, query, columnar)
    assert a_naive == a_col
    assert ops_naive == ops_col
    assert boolean_yannakakis(query, naive) == boolean_yannakakis(query, columnar)
    c1, c2 = CostCounter(), CostCounter()
    e_naive = sorted(enumerate_acyclic(query, naive, c1))
    e_col = sorted(enumerate_acyclic(query, columnar, c2))
    assert e_naive == e_col
    assert c1.total == c2.total


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    size=st.integers(1, 20),
    domain=st.integers(1, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_boolean_generic_join_backend_parity(shape, size, domain, seed):
    query = SHAPES[shape]()
    naive, columnar = both_backends(query, size, domain, seed)
    c1, c2 = CostCounter(), CostCounter()
    r_naive = boolean_generic_join(query, naive, counter=c1)
    r_col = boolean_generic_join(query, columnar, counter=c2)
    assert r_naive == r_col
    if not r_naive:
        # Empty answers force a full traversal in both backends, so the
        # op totals must agree exactly; non-empty answers early-exit at
        # a traversal-order-dependent point (documented in kernels.py).
        assert c1.total == c2.total


# -- edge cases required by the issue ---------------------------------


def test_empty_relation_parity():
    query = JoinQuery.triangle()
    db = Database(
        [
            Relation("R1", ("x", "y"), [(1, 2), (2, 3)]),
            Relation("R2", ("x", "y")),  # empty
            Relation("R3", ("x", "y"), [(2, 3)]),
        ]
    )
    columnar = db.with_backend("columnar")
    a_naive, ops_naive = answers_and_ops(generic_join, query, db)
    a_col, ops_col = answers_and_ops(generic_join, query, columnar)
    assert a_naive == a_col == []
    assert ops_naive == ops_col
    c1, c2 = CostCounter(), CostCounter()
    assert not boolean_generic_join(query, db, counter=c1)
    assert not boolean_generic_join(query, columnar, counter=c2)
    assert c1.total == c2.total


def test_single_atom_query_parity():
    query = JoinQuery([Atom("R", ("a", "b"))])
    db = Database([Relation("R", ("x", "y"), [(1, 2), (3, 4), (3, 5)])])
    columnar = db.with_backend("columnar")
    a_naive, ops_naive = answers_and_ops(generic_join, query, db)
    a_col, ops_col = answers_and_ops(generic_join, query, columnar)
    assert a_naive == a_col == [(1, 2), (3, 4), (3, 5)]
    assert ops_naive == ops_col


def test_repeated_attribute_across_atoms_parity():
    # A self-join binding the same relation twice, sharing *both*
    # attributes in swapped positions: answers are the symmetric pairs.
    query = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("b", "a"))])
    db = Database([Relation("E", ("x", "y"), [(1, 2), (2, 1), (1, 3), (4, 4)])])
    columnar = db.with_backend("columnar")
    a_naive, ops_naive = answers_and_ops(generic_join, query, db)
    a_col, ops_col = answers_and_ops(generic_join, query, columnar)
    assert a_naive == a_col == [(1, 2), (2, 1), (4, 4)]
    assert ops_naive == ops_col


def test_mixed_value_types_roundtrip():
    # The interner must preserve arbitrary hashable values exactly.
    query = JoinQuery([Atom("R", ("a", "b")), Atom("S", ("b", "c"))])
    rows_r = [("u", 1), ("v", 2), ((1, "t"), 1)]
    rows_s = [(1, None), (2, "w")]
    db = Database([Relation("R", ("x", "y"), rows_r), Relation("S", ("x", "y"), rows_s)])
    columnar = db.with_backend("columnar")
    c1, c2 = CostCounter(), CostCounter()
    a_naive = generic_join(query, db, counter=c1)
    a_col = generic_join(query, columnar, counter=c2)
    assert a_naive.tuples == a_col.tuples  # set equality; mixed types unsortable
    assert a_naive.tuples == {("u", 1, None), ((1, "t"), 1, None), ("v", 2, "w")}
    assert c1.total == c2.total
    r1 = evaluate_left_deep(query, db)
    r2 = evaluate_left_deep(query, columnar)
    assert r1.answer.tuples == r2.answer.tuples


def test_mutation_invalidates_cached_indexes():
    query = JoinQuery.triangle()
    for backend in ("naive", "columnar"):
        rows = [(0, 1), (1, 2), (0, 2)]
        database = Database(
            [
                Relation("R1", ("x", "y"), rows),
                Relation("R2", ("x", "y"), rows),
                Relation("R3", ("x", "y"), rows),
            ],
            backend=backend,
        )
        before = sorted(generic_join(query, database).tuples)
        assert before == [(0, 1, 2)]
        database.relation("R1").add((5, 6))
        database.relation("R2").add((5, 7))
        database.relation("R3").add((6, 7))
        after = sorted(generic_join(query, database).tuples)
        assert after == [(0, 1, 2), (5, 6, 7)]
