"""Tests for the hypothesis registry, implications, and bounds."""

import pytest

from repro.complexity.bounds import LowerBound, all_lower_bounds, bounds_under
from repro.complexity.hypotheses import (
    ETH,
    SETH,
    UNCONDITIONAL,
    all_hypotheses,
    get_hypothesis,
)
from repro.complexity.implications import (
    implication_graph,
    implies,
    stronger_hypotheses,
    weaker_hypotheses,
)
from repro.complexity.report import format_hypothesis_report, format_landscape
from repro.errors import InvalidInstanceError


class TestRegistry:
    def test_all_unique_keys(self):
        keys = [h.key for h in all_hypotheses()]
        assert len(keys) == len(set(keys))
        assert len(keys) == 10

    def test_lookup(self):
        assert get_hypothesis("eth") is ETH
        with pytest.raises(InvalidInstanceError):
            get_hypothesis("zpp")

    def test_plausibility_labels(self):
        labels = {h.plausibility for h in all_hypotheses()}
        assert labels <= {"theorem", "standard", "controversial", "conjecture"}


class TestImplications:
    def test_reflexive(self):
        assert implies("eth", "eth")

    def test_paper_hierarchy(self):
        assert implies("seth", "eth")
        assert implies("seth", "p-neq-np")
        assert implies("eth", "fpt-neq-w1")
        assert implies("fpt-neq-w1", "p-neq-np")

    def test_no_upward_implications(self):
        assert not implies("p-neq-np", "fpt-neq-w1")
        assert not implies("eth", "seth")
        assert not implies("fpt-neq-w1", "eth")

    def test_everything_implies_unconditional(self):
        for h in all_hypotheses():
            assert implies(h.key, "unconditional")

    def test_unknown_key_rejected(self):
        with pytest.raises(InvalidInstanceError):
            implies("eth", "nonsense")

    def test_graph_is_acyclic_among_distinct(self):
        """No two distinct hypotheses imply each other (they'd be the
        same assumption)."""
        for a in all_hypotheses():
            for b in all_hypotheses():
                if a.key != b.key:
                    assert not (implies(a.key, b.key) and implies(b.key, a.key))

    def test_stronger_weaker_consistency(self):
        for h in all_hypotheses():
            for w in weaker_hypotheses(h.key):
                assert h.key in stronger_hypotheses(w)

    def test_graph_vertices(self):
        g = implication_graph()
        assert set(g.vertices) == {h.key for h in all_hypotheses()}


class TestBounds:
    def test_every_bound_has_known_hypothesis(self):
        keys = {h.key for h in all_hypotheses()}
        for bound in all_lower_bounds():
            assert bound.hypothesis in keys

    def test_bound_keys_unique(self):
        keys = [b.key for b in all_lower_bounds()]
        assert len(keys) == len(set(keys))

    def test_unconditional_bound_exists(self):
        uncond = [
            b for b in all_lower_bounds() if b.hypothesis == UNCONDITIONAL.key
        ]
        assert any(b.paper_ref == "Theorem 3.2" for b in uncond)

    def test_bounds_under_monotone(self):
        assert len(bounds_under("seth")) >= len(bounds_under("eth"))
        assert len(bounds_under("eth")) >= len(bounds_under("fpt-neq-w1"))
        assert len(bounds_under("unconditional")) >= 1

    def test_seth_unlocks_theorem_72(self):
        keys = {b.key for b in bounds_under("seth")}
        assert "freuder-optimal" in keys
        assert "domset-exponent" in keys

    def test_eth_does_not_unlock_seth_bounds(self):
        keys = {b.key for b in bounds_under("eth")}
        assert "freuder-optimal" not in keys

    def test_reduction_modules_exist(self):
        import importlib

        for bound in all_lower_bounds():
            if bound.reduction_module:
                importlib.import_module(bound.reduction_module)


class TestReports:
    def test_single_report_mentions_bounds(self):
        text = format_hypothesis_report("seth")
        assert "SETH" in text
        assert "Theorem 7.1" in text or "Theorem 7.2" in text

    def test_landscape_covers_all(self):
        text = format_landscape()
        for h in all_hypotheses():
            assert h.name in text
