"""The paper map stays honest: modules import, sections covered."""

import importlib

import pytest

from repro.complexity.paper_map import PAPER_MAP, format_paper_map, modules_for


class TestPaperMap:
    def test_every_module_imports(self):
        for entry in PAPER_MAP:
            for module in entry.modules:
                importlib.import_module(module)

    def test_all_paper_sections_present(self):
        sections = {entry.section for entry in PAPER_MAP}
        expected = {"§2.1", "§2.2", "§2.3", "§2.4", "§3", "§4", "§5", "§6", "§7", "§8", "§9"}
        assert sections == expected

    def test_every_experiment_id_valid(self):
        valid_prefixes = {f"E{i}-" for i in range(1, 23)}
        for entry in PAPER_MAP:
            for experiment in entry.experiments:
                assert any(experiment.startswith(p) for p in valid_prefixes)

    def test_modules_for(self):
        assert "repro.relational.wcoj" in modules_for("§3")
        with pytest.raises(KeyError):
            modules_for("§99")

    def test_format_mentions_everything(self):
        text = format_paper_map()
        for entry in PAPER_MAP:
            assert entry.section in text
            assert entry.title in text

    def test_experiments_cover_e1_to_e22(self):
        mentioned = {
            experiment.split("-")[0]
            for entry in PAPER_MAP
            for experiment in entry.experiments
        }
        assert mentioned == {f"E{i}" for i in range(1, 23)}
