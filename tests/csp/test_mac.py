"""Direct tests for the MAC (maintained arc consistency) search mode."""

import pytest

from repro.counting import CostCounter
from repro.csp.backtracking import solve_backtracking
from repro.csp.bruteforce import solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance

from ..conftest import make_random_binary_csp


class TestMAC:
    def test_agreement_with_bruteforce(self, rng):
        for __ in range(15):
            inst = make_random_binary_csp(
                rng,
                num_variables=rng.randrange(2, 6),
                domain_size=rng.randrange(2, 4),
                num_constraints=rng.randrange(1, 8),
            )
            oracle = solve_bruteforce(inst)
            got = solve_backtracking(inst, maintain_gac=True)
            assert (got is None) == (oracle is None)
            if got is not None:
                assert inst.is_solution(got)

    def test_detects_root_inconsistency_before_search(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x",), [(0,)]), Constraint(("x",), [(1,)])],
        )
        counter = CostCounter()
        assert solve_backtracking(inst, maintain_gac=True, counter=counter) is None

    def test_propagation_chain_solved_without_thrash(self):
        """A long equality chain forces everything from one assignment;
        MAC should solve with essentially no backtracking."""
        n = 12
        eq = [(0, 0), (1, 1)]
        variables = [f"v{i}" for i in range(n)]
        constraints = [
            Constraint((variables[i], variables[i + 1]), eq) for i in range(n - 1)
        ]
        constraints.append(Constraint((variables[0],), [(1,)]))
        inst = CSPInstance(variables, [0, 1], constraints)
        solution = solve_backtracking(inst, maintain_gac=True)
        assert solution == {v: 1 for v in variables}

    def test_mac_cheaper_than_fc_on_propagation_heavy(self):
        """On implication-chain instances MAC's inference pays off in
        raw search effort even if per-node cost is higher."""
        n = 10
        implies_rel = [(0, 0), (0, 1), (1, 1)]
        variables = [f"v{i}" for i in range(n)]
        constraints = [
            Constraint((variables[i], variables[i + 1]), implies_rel)
            for i in range(n - 1)
        ]
        # Force a contradiction at the ends: v0 = 1, v_{n-1} = 0.
        constraints.append(Constraint((variables[0],), [(1,)]))
        constraints.append(Constraint((variables[-1],), [(0,)]))
        inst = CSPInstance(variables, [0, 1], constraints)
        assert solve_backtracking(inst, maintain_gac=True) is None
        assert solve_bruteforce(inst) is None

    def test_mac_with_ternary_constraints(self):
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [Constraint(("x", "y", "z"), [(0, 1, 0), (1, 0, 1)])],
        )
        solution = solve_backtracking(inst, maintain_gac=True)
        assert solution is not None
        assert inst.is_solution(solution)
