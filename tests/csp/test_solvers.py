"""Cross-checked tests for all CSP solvers (brute force as oracle)."""

from itertools import product

import pytest

from repro.counting import CostCounter
from repro.csp.backtracking import solve_backtracking
from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.consistency import enforce_gac, propagate_domains
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solver import solve
from repro.csp.treewidth_dp import count_with_treewidth, solve_with_treewidth
from repro.errors import SolverError

from ..conftest import make_random_binary_csp

ALL_SOLVERS = (
    solve_bruteforce,
    solve_backtracking,
    lambda inst, counter=None: solve_with_treewidth(inst, counter=counter),
    solve,
)


def coloring_instance(colors: int, edges) -> CSPInstance:
    variables = sorted({v for e in edges for v in e})
    domain = list(range(colors))
    disequal = {(a, b) for a, b in product(domain, repeat=2) if a != b}
    return CSPInstance(variables, domain, [Constraint(e, disequal) for e in edges])


@pytest.mark.parametrize("solver", ALL_SOLVERS)
class TestEachSolver:
    def test_trivial_satisfiable(self, solver):
        inst = CSPInstance(["x"], [0, 1], [Constraint(("x",), [(1,)])])
        solution = solver(inst)
        assert solution == {"x": 1}

    def test_trivial_unsatisfiable(self, solver):
        inst = CSPInstance(["x"], [0, 1], [Constraint(("x",), [])])
        assert solver(inst) is None

    def test_no_constraints(self, solver):
        inst = CSPInstance(["x", "y"], [5], [])
        solution = solver(inst)
        assert solution == {"x": 5, "y": 5}

    def test_triangle_coloring(self, solver):
        # K3 with 2 colors unsat; with 3 colors sat.
        k3 = [("a", "b"), ("b", "c"), ("a", "c")]
        assert solver(coloring_instance(2, k3)) is None
        solution = solver(coloring_instance(3, k3))
        assert solution is not None
        assert len(set(solution.values())) == 3

    def test_empty_domain(self, solver):
        inst = CSPInstance(["x"], [], [])
        assert solver(inst) is None


class TestAgreement:
    def test_randomized(self, rng):
        for trial in range(25):
            inst = make_random_binary_csp(
                rng,
                num_variables=rng.randrange(2, 6),
                domain_size=rng.randrange(2, 4),
                num_constraints=rng.randrange(1, 8),
            )
            oracle = solve_bruteforce(inst)
            for solver in (solve_backtracking, solve, lambda i: solve_with_treewidth(i)):
                got = solver(inst)
                assert (got is None) == (oracle is None), trial
                if got is not None:
                    assert inst.is_solution(got)

    def test_counting_agreement(self, rng):
        for trial in range(20):
            inst = make_random_binary_csp(
                rng,
                num_variables=rng.randrange(2, 6),
                domain_size=rng.randrange(2, 4),
                num_constraints=rng.randrange(1, 7),
            )
            assert count_bruteforce(inst) == count_with_treewidth(inst), trial

    def test_counting_no_constraints(self):
        inst = CSPInstance(["x", "y"], [0, 1, 2], [])
        assert count_bruteforce(inst) == 9
        assert count_with_treewidth(inst) == 9

    def test_ternary_constraints(self, rng):
        for trial in range(10):
            variables = ["x", "y", "z", "w"]
            domain = [0, 1]
            triples = [
                t for t in product(domain, repeat=3) if rng.random() < 0.5
            ]
            pairs = [t for t in product(domain, repeat=2) if rng.random() < 0.7]
            inst = CSPInstance(
                variables,
                domain,
                [Constraint(("x", "y", "z"), triples), Constraint(("z", "w"), pairs)],
            )
            assert count_bruteforce(inst) == count_with_treewidth(inst)
            assert (solve_bruteforce(inst) is None) == (
                solve_with_treewidth(inst) is None
            )


class TestBacktrackingOptions:
    @pytest.mark.parametrize("mrv", [True, False])
    @pytest.mark.parametrize("fc", [True, False])
    @pytest.mark.parametrize("gac", [True, False])
    def test_options_preserve_correctness(self, rng, mrv, fc, gac):
        for _ in range(6):
            inst = make_random_binary_csp(rng, num_variables=4, domain_size=3)
            oracle = solve_bruteforce(inst)
            got = solve_backtracking(
                inst, use_mrv=mrv, use_forward_checking=fc, preprocess_gac=gac
            )
            assert (got is None) == (oracle is None)


class TestGAC:
    def test_gac_soundness(self, rng):
        """GAC never removes values that appear in some solution."""
        for _ in range(15):
            inst = make_random_binary_csp(rng, num_variables=4, domain_size=3)
            domains = propagate_domains(inst)
            solutions = []
            domain = sorted(inst.domain)
            for values in product(domain, repeat=inst.num_variables):
                assignment = dict(zip(inst.variables, values))
                if inst.is_solution(assignment):
                    solutions.append(assignment)
            if solutions and domains is not None:
                for solution in solutions:
                    for var, val in solution.items():
                        assert val in domains[var]
            if domains is None:
                assert not solutions

    def test_gac_fixpoint(self):
        # x=y, y=z, z != x over {0,1}: unsatisfiable; GAC alone cannot
        # always detect this (it's path-inconsistent, arc-consistent).
        eq = [(0, 0), (1, 1)]
        ne = [(0, 1), (1, 0)]
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [
                Constraint(("x", "y"), eq),
                Constraint(("y", "z"), eq),
                Constraint(("z", "x"), ne),
            ],
        )
        domains = propagate_domains(inst)
        assert domains is not None  # GAC does not refute it...
        assert solve_bruteforce(inst) is None  # ...but search does.

    def test_gac_detects_empty_domain(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x",), [(0,)]), Constraint(("x",), [(1,)])],
        )
        assert propagate_domains(inst) is None

    def test_gac_prunes(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1, 2],
            [Constraint(("x", "y"), [(0, 1)])],
        )
        domains = propagate_domains(inst)
        assert domains == {"x": {0}, "y": {1}}

    def test_enforce_gac_with_custom_domains(self):
        inst = CSPInstance(
            ["x", "y"], [0, 1, 2], [Constraint(("x", "y"), [(0, 1), (1, 2)])]
        )
        domains = enforce_gac(inst, {"x": {1}, "y": {1, 2}})
        assert domains == {"x": {1}, "y": {2}}


class TestSolverFrontend:
    def test_unknown_method(self, small_csp):
        with pytest.raises(SolverError):
            solve(small_csp, method="quantum")

    @pytest.mark.parametrize("method", ["auto", "backtracking", "bruteforce", "treewidth"])
    def test_all_methods_work(self, small_csp, method):
        oracle = solve_bruteforce(small_csp)
        got = solve(small_csp, method=method)
        assert (got is None) == (oracle is None)

    def test_counter_threads_through(self, small_csp):
        counter = CostCounter()
        solve(small_csp, counter=counter)
        assert counter.total > 0
