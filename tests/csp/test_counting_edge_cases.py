"""Edge cases for the counting DP (Theorem 4.2's counting variant)."""

import pytest

from repro.csp.bruteforce import count_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.treewidth_dp import count_with_treewidth


class TestCountingEdgeCases:
    def test_single_variable_unary(self):
        inst = CSPInstance(["x"], [0, 1, 2], [Constraint(("x",), [(0,), (2,)])])
        assert count_with_treewidth(inst) == 2

    def test_contradictory_unaries(self):
        inst = CSPInstance(
            ["x"],
            [0, 1],
            [Constraint(("x",), [(0,)]), Constraint(("x",), [(1,)])],
        )
        assert count_with_treewidth(inst) == 0

    def test_one_unsat_component_zeroes_everything(self):
        ne = [(0, 1), (1, 0)]
        empty = []
        inst = CSPInstance(
            ["a", "b", "c", "d"],
            [0, 1],
            [Constraint(("a", "b"), ne), Constraint(("c", "d"), empty)],
        )
        assert count_with_treewidth(inst) == 0
        assert count_bruteforce(inst) == 0

    def test_isolated_variables_multiply_domain(self):
        inst = CSPInstance(
            ["x", "free1", "free2"],
            [0, 1, 2],
            [Constraint(("x",), [(1,)])],
        )
        # 1 choice for x, 3 each for the free variables.
        assert count_with_treewidth(inst) == 9

    def test_large_counts_exact_arithmetic(self):
        """Python integers keep the DP exact even for astronomically
        large counts (20 free ternary variables: 3^20)."""
        inst = CSPInstance([f"v{i}" for i in range(20)], [0, 1, 2], [])
        assert count_with_treewidth(inst) == 3**20

    def test_overlapping_scopes_same_variables(self):
        eq = [(0, 0), (1, 1)]
        ne = [(0, 1), (1, 0)]
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x", "y"), eq), Constraint(("x", "y"), ne)],
        )
        assert count_with_treewidth(inst) == 0

    def test_flipped_scope_orientations(self):
        implies_rel = [(0, 0), (0, 1), (1, 1)]
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [
                Constraint(("x", "y"), implies_rel),
                Constraint(("y", "x"), implies_rel),
            ],
        )
        # x->y and y->x together force x == y: 2 solutions.
        assert count_with_treewidth(inst) == 2
        assert count_bruteforce(inst) == 2

    def test_chain_count_formula(self):
        """A NAND chain over {0,1} counts Fibonacci-style independent
        sets of a path: constraints (v_i, v_{i+1}) forbidding (1,1)."""
        n = 10
        nand = [(0, 0), (0, 1), (1, 0)]
        variables = [f"v{i}" for i in range(n)]
        constraints = [
            Constraint((variables[i], variables[i + 1]), nand)
            for i in range(n - 1)
        ]
        inst = CSPInstance(variables, [0, 1], constraints)
        # Independent sets of P_n = Fibonacci(n+2).
        fib = [1, 2]
        while len(fib) < n + 1:
            fib.append(fib[-1] + fib[-2])
        assert count_with_treewidth(inst) == fib[n]

    def test_ternary_parity_count(self):
        """XOR of three variables: exactly half the cube satisfies."""
        odd = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1) if (a + b + c) % 2 == 1]
        inst = CSPInstance(["x", "y", "z"], [0, 1], [Constraint(("x", "y", "z"), odd)])
        assert count_with_treewidth(inst) == 4
