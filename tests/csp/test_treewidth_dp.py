"""Focused tests for Freuder's DP (Theorem 4.2)."""

from itertools import product

import pytest

from repro.counting import CostCounter
from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.treewidth_dp import count_with_treewidth, solve_with_treewidth
from repro.generators.csp_gen import bounded_treewidth_csp
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import treewidth_min_fill


class TestWithExplicitDecomposition:
    def test_path_instance(self):
        eq = [(0, 0), (1, 1)]
        inst = CSPInstance(
            ["a", "b", "c"],
            [0, 1],
            [Constraint(("a", "b"), eq), Constraint(("b", "c"), eq)],
        )
        dec = TreeDecomposition(
            bags={0: ["a", "b"], 1: ["b", "c"]}, tree_edges=[(0, 1)]
        )
        solution = solve_with_treewidth(inst, dec)
        assert solution is not None
        assert solution["a"] == solution["b"] == solution["c"]
        assert count_with_treewidth(inst, dec) == 2

    def test_invalid_decomposition_rejected(self):
        from repro.errors import InvalidDecompositionError

        inst = CSPInstance(["a", "b"], [0], [Constraint(("a", "b"), [(0, 0)])])
        bad = TreeDecomposition(bags={0: ["a"]})
        with pytest.raises(InvalidDecompositionError):
            solve_with_treewidth(inst, bad)


class TestCounting:
    def test_unsat_counts_zero(self):
        inst = CSPInstance(["x"], [0], [Constraint(("x",), [])])
        assert count_with_treewidth(inst) == 0

    def test_independent_variables_multiply(self):
        inst = CSPInstance(["x", "y", "z"], [0, 1], [])
        assert count_with_treewidth(inst) == 8

    def test_disconnected_components_multiply(self):
        ne = [(0, 1), (1, 0)]
        inst = CSPInstance(
            ["a", "b", "c", "d"],
            [0, 1],
            [Constraint(("a", "b"), ne), Constraint(("c", "d"), ne)],
        )
        # Each component has 2 solutions: 2*2 = 4.
        assert count_with_treewidth(inst) == 4
        assert count_bruteforce(inst) == 4

    def test_larger_instance_matches_bruteforce(self):
        inst = bounded_treewidth_csp(8, 3, 2, tightness=0.4, seed=17)
        assert count_with_treewidth(inst) == count_bruteforce(inst)

    def test_duplicate_constraints_dont_double_count(self):
        eq = [(0, 0), (1, 1)]
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x", "y"), eq), Constraint(("x", "y"), eq)],
        )
        assert count_with_treewidth(inst) == 2


class TestComplexityShape:
    def test_cost_bounded_by_theorem(self):
        """The DP's operation count stays within a small factor of the
        |V|·|D|^{k+1} envelope (constants absorbed by the nice
        decomposition's node count)."""
        for d in (2, 4, 8):
            inst = bounded_treewidth_csp(10, d, 2, tightness=0.2, seed=3)
            width, dec = treewidth_min_fill(inst.primal_graph())
            counter = CostCounter()
            solve_with_treewidth(inst, dec, counter)
            envelope = 40 * inst.num_variables * d ** (width + 1)
            assert counter.total <= envelope

    def test_dp_beats_bruteforce_on_wide_instances(self):
        inst = bounded_treewidth_csp(12, 3, 1, tightness=0.25, seed=5)
        dp_counter, bf_counter = CostCounter(), CostCounter()
        dp = solve_with_treewidth(inst, counter=dp_counter)
        bf = solve_bruteforce(inst, bf_counter)
        assert (dp is None) == (bf is None)
        if bf is None:
            # Unsatisfiable: brute force had to scan everything.
            assert dp_counter.total < bf_counter.total
