"""Tests for the CSP → SAT direct encoding (CDCL backend)."""

import pytest

from repro.csp.bruteforce import solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.sat_encoding import encode_direct, solve_via_sat
from repro.csp.solver import solve

from ..conftest import make_random_binary_csp


class TestEncoding:
    def test_variable_count(self):
        inst = CSPInstance(["x", "y"], [0, 1, 2], [])
        formula, var_of = encode_direct(inst)
        assert formula.num_variables == 6
        assert len(var_of) == 6

    def test_at_least_and_at_most_one(self):
        inst = CSPInstance(["x"], [0, 1, 2], [])
        formula, __ = encode_direct(inst)
        # 1 at-least-one + 3 at-most-one clauses.
        assert formula.num_clauses == 4

    def test_conflict_clauses(self):
        inst = CSPInstance(
            ["x", "y"], [0, 1], [Constraint(("x", "y"), [(0, 1)])]
        )
        formula, __ = encode_direct(inst)
        # 2 ALO + 2 AMO + 3 forbidden combos.
        assert formula.num_clauses == 2 + 2 + 3

    def test_repeated_scope_variables(self):
        inst = CSPInstance(["x"], [0, 1], [Constraint(("x", "x"), [(0, 0)])])
        solution = solve_via_sat(inst)
        assert solution == {"x": 0}


class TestSolveViaSat:
    def test_trivial_cases(self):
        assert solve_via_sat(CSPInstance([], [0], [])) == {}
        assert solve_via_sat(CSPInstance(["x"], [], [])) is None

    def test_coloring(self):
        ne2 = [(0, 1), (1, 0)]
        triangle = CSPInstance(
            ["a", "b", "c"],
            [0, 1],
            [
                Constraint(("a", "b"), ne2),
                Constraint(("b", "c"), ne2),
                Constraint(("a", "c"), ne2),
            ],
        )
        assert solve_via_sat(triangle) is None

    def test_agreement_with_bruteforce(self, rng):
        for __ in range(20):
            inst = make_random_binary_csp(
                rng,
                num_variables=rng.randrange(2, 6),
                domain_size=rng.randrange(2, 4),
                num_constraints=rng.randrange(1, 8),
            )
            oracle = solve_bruteforce(inst)
            got = solve_via_sat(inst)
            assert (got is None) == (oracle is None)
            if got is not None:
                assert inst.is_solution(got)

    def test_ternary_constraints(self):
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [Constraint(("x", "y", "z"), [(0, 1, 0), (1, 0, 1)])],
        )
        solution = solve_via_sat(inst)
        assert solution is not None
        assert inst.is_solution(solution)

    def test_solver_frontend_method(self, small_csp):
        oracle = solve_bruteforce(small_csp)
        got = solve(small_csp, method="sat")
        assert (got is None) == (oracle is None)
