"""Tests for CSPInstance and Constraint."""

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import InvalidInstanceError


class TestConstraint:
    def test_empty_scope_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Constraint((), [])

    def test_tuple_arity_checked(self):
        with pytest.raises(InvalidInstanceError):
            Constraint(("x", "y"), [(1,)])

    def test_satisfied_by(self):
        c = Constraint(("x", "y"), [(0, 1), (1, 0)])
        assert c.satisfied_by({"x": 0, "y": 1})
        assert not c.satisfied_by({"x": 0, "y": 0})

    def test_satisfied_by_missing_variable(self):
        c = Constraint(("x", "y"), [(0, 1)])
        with pytest.raises(InvalidInstanceError):
            c.satisfied_by({"x": 0})

    def test_consistent_with_partial(self):
        c = Constraint(("x", "y"), [(0, 1)])
        assert c.consistent_with({"x": 0})
        assert not c.consistent_with({"x": 1})
        assert c.consistent_with({})

    def test_consistent_with_total(self):
        c = Constraint(("x", "y"), [(0, 1)])
        assert c.consistent_with({"x": 0, "y": 1})
        assert not c.consistent_with({"x": 0, "y": 0})

    def test_supports(self):
        c = Constraint(("x", "y"), [(0, 1), (1, 1)])
        domains = {"x": {0, 1}, "y": {1}}
        assert c.supports("x", 0, domains)
        domains_no_y = {"x": {0, 1}, "y": {0}}
        assert not c.supports("x", 0, domains_no_y)

    def test_supports_unknown_variable(self):
        c = Constraint(("x",), [(0,)])
        with pytest.raises(InvalidInstanceError):
            c.supports("z", 0, {"x": {0}})

    def test_repeated_scope_variable(self):
        # Scope (x, x) means both positions must agree with x's value.
        c = Constraint(("x", "x"), [(0, 0), (1, 0)])
        assert c.satisfied_by({"x": 0})
        assert not c.satisfied_by({"x": 1})


class TestCSPInstance:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CSPInstance(["x", "x"], [0], [])

    def test_unknown_scope_variable_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CSPInstance(["x"], [0], [Constraint(("y",), [(0,)])])

    def test_is_binary(self):
        binary = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), [(0, 1)])])
        assert binary.is_binary
        ternary = CSPInstance(
            ["x", "y", "z"], [0, 1], [Constraint(("x", "y", "z"), [(0, 1, 0)])]
        )
        assert not ternary.is_binary

    def test_primal_graph(self):
        inst = CSPInstance(
            ["x", "y", "z", "w"],
            [0],
            [Constraint(("x", "y", "z"), [(0, 0, 0)])],
        )
        primal = inst.primal_graph()
        assert primal.is_clique(["x", "y", "z"])
        assert primal.degree("w") == 0

    def test_hypergraph(self):
        inst = CSPInstance(
            ["x", "y"], [0], [Constraint(("x", "y"), [(0, 0)])]
        )
        h = inst.hypergraph()
        assert h.num_edges == 1

    def test_is_solution(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), [(0, 1)])])
        assert inst.is_solution({"x": 0, "y": 1})
        assert not inst.is_solution({"x": 1, "y": 0})
        assert not inst.is_solution({"x": 0})          # partial
        assert not inst.is_solution({"x": 0, "y": 7})  # out of domain

    def test_restrict_keeps_internal_constraints(self):
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [
                Constraint(("x", "y"), [(0, 1)]),
                Constraint(("y", "z"), [(1, 0)]),
            ],
        )
        sub = inst.restrict(["x", "y"])
        assert sub.num_variables == 2
        assert sub.num_constraints == 1

    def test_constraints_on(self):
        c1 = Constraint(("x", "y"), [(0, 0)])
        c2 = Constraint(("y", "z"), [(0, 0)])
        inst = CSPInstance(["x", "y", "z"], [0], [c1, c2])
        assert inst.constraints_on("y") == [c1, c2]
        assert inst.constraints_on("x") == [c1]
