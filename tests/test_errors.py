"""Tests for the exception hierarchy (catchability contracts)."""

import pytest

from repro.errors import (
    ArityMismatchError,
    BudgetExceededError,
    InvalidDecompositionError,
    InvalidInstanceError,
    ReductionError,
    ReproError,
    SchemaError,
    SolverError,
    UnknownAttributeError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            ArityMismatchError,
            UnknownAttributeError,
            InvalidInstanceError,
            InvalidDecompositionError,
            ReductionError,
            SolverError,
            BudgetExceededError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_arity_is_schema_error(self):
        assert issubclass(ArityMismatchError, SchemaError)
        assert issubclass(UnknownAttributeError, SchemaError)

    def test_budget_is_solver_error(self):
        assert issubclass(BudgetExceededError, SolverError)

    def test_library_failures_catchable_as_repro_error(self):
        from repro.relational.relation import Relation

        with pytest.raises(ReproError):
            Relation("R", ())
        from repro.csp.instance import Constraint

        with pytest.raises(ReproError):
            Constraint((), [])
        from repro.graphs.graph import Graph

        with pytest.raises(ReproError):
            Graph().add_edge(1, 1)
