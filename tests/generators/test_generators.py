"""Tests for the instance generators: determinism + declared shape."""

import pytest

from repro.errors import InvalidInstanceError
from repro.generators.agm import (
    expected_tight_answer_size,
    fractional_independent_set,
    skewed_triangle_database,
    tight_agm_database,
    uniform_random_database,
)
from repro.generators.csp_gen import (
    bounded_treewidth_csp,
    planted_solution_csp,
    random_binary_csp,
)
from repro.generators.graph_gen import (
    gnm_random_graph,
    gnp_random_graph,
    planted_clique_graph,
    planted_dominating_set_graph,
    planted_hyperclique,
    planted_vertex_cover_graph,
    random_uniform_hypergraph,
    skewed_bipartite_graph,
    turan_graph,
)
from repro.generators.sat_gen import HARD_3SAT_RATIO, planted_ksat, random_ksat
from repro.graphs.dominating_set import is_dominating_set
from repro.graphs.vertex_cover import is_vertex_cover
from repro.relational.query import JoinQuery
from repro.treewidth.heuristics import treewidth_min_fill


class TestDeterminism:
    def test_same_seed_same_instance(self):
        a = random_ksat(8, 20, 3, seed=5)
        b = random_ksat(8, 20, 3, seed=5)
        assert a.clauses == b.clauses

    def test_different_seed_differs(self):
        a = random_ksat(8, 20, 3, seed=5)
        b = random_ksat(8, 20, 3, seed=6)
        assert a.clauses != b.clauses

    def test_graphs_deterministic(self):
        a = gnp_random_graph(10, 0.4, seed=1)
        b = gnp_random_graph(10, 0.4, seed=1)
        assert a == b

    def test_csp_deterministic(self):
        a = random_binary_csp(5, 3, 6, seed=2)
        b = random_binary_csp(5, 3, 6, seed=2)
        assert [c.relation for c in a.constraints] == [
            c.relation for c in b.constraints
        ]


class TestSatGen:
    def test_shape(self):
        f = random_ksat(10, 42, 3, seed=0)
        assert f.num_variables == 10
        assert f.num_clauses == 42
        assert f.is_k_sat(3)

    def test_too_few_variables(self):
        with pytest.raises(InvalidInstanceError):
            random_ksat(2, 5, 3)

    def test_planted_satisfies(self):
        f, planted = planted_ksat(9, int(9 * HARD_3SAT_RATIO), 3, seed=1)
        assert f.evaluate(planted)


class TestCSPGen:
    def test_random_binary_shape(self):
        inst = random_binary_csp(6, 4, 8, tightness=0.3, seed=0)
        assert inst.num_variables == 6
        assert inst.domain_size == 4
        assert inst.num_constraints == 8
        assert inst.is_binary

    def test_tightness_validation(self):
        with pytest.raises(InvalidInstanceError):
            random_binary_csp(4, 3, 2, tightness=1.5)

    def test_planted_solution_valid(self):
        inst, planted = planted_solution_csp(6, 3, 10, seed=4)
        assert inst.is_solution(planted)

    def test_bounded_treewidth_respects_width(self):
        for width in (1, 2, 3):
            inst = bounded_treewidth_csp(12, 3, width, seed=width)
            achieved, __ = treewidth_min_fill(inst.primal_graph())
            assert achieved <= width

    def test_bounded_treewidth_validation(self):
        with pytest.raises(InvalidInstanceError):
            bounded_treewidth_csp(3, 2, 5)


class TestGraphGen:
    def test_gnp_bounds(self):
        with pytest.raises(InvalidInstanceError):
            gnp_random_graph(5, 1.5)
        g = gnp_random_graph(10, 0.0, seed=0)
        assert g.num_edges == 0
        g = gnp_random_graph(6, 1.0, seed=0)
        assert g.num_edges == 15

    def test_gnm_exact_edges(self):
        g = gnm_random_graph(10, 17, seed=1)
        assert g.num_edges == 17
        with pytest.raises(InvalidInstanceError):
            gnm_random_graph(4, 10)

    def test_planted_clique(self):
        g, members = planted_clique_graph(12, 5, seed=3)
        assert g.is_clique(members)
        assert len(members) == 5

    def test_planted_dominating(self):
        g, centers = planted_dominating_set_graph(12, 3, seed=2)
        assert is_dominating_set(g, centers)

    def test_planted_cover(self):
        g, cover = planted_vertex_cover_graph(12, 3, 20, seed=2)
        assert is_vertex_cover(g, cover)

    def test_turan(self):
        g = turan_graph(10, 3)
        from repro.graphs.clique import has_clique

        assert has_clique(g, 3)
        assert not has_clique(g, 4)
        with pytest.raises(InvalidInstanceError):
            turan_graph(3, 0)

    def test_skewed_bipartite_triangle_free(self):
        g = skewed_bipartite_graph(20, 3, 30, seed=0)
        from repro.graphs.triangle import has_triangle

        assert not has_triangle(g)

    def test_uniform_hypergraph(self):
        h = random_uniform_hypergraph(10, 3, 12, seed=1)
        assert h.num_edges == 12
        with pytest.raises(InvalidInstanceError):
            random_uniform_hypergraph(4, 3, 100)

    def test_planted_hyperclique(self):
        from repro.graphs.hyperclique import is_hyperclique

        h, members = planted_hyperclique(9, 3, 5, 6, seed=0)
        assert is_hyperclique(h, members)
        with pytest.raises(InvalidInstanceError):
            planted_hyperclique(5, 3, 2, 1)


class TestAGMGen:
    def test_dual_weights_sum_to_rho(self):
        from repro.hypergraph.covers import fractional_edge_cover_number

        for q in (JoinQuery.triangle(), JoinQuery.cycle(4), JoinQuery.star(3)):
            weights = fractional_independent_set(q)
            rho = fractional_edge_cover_number(q.hypergraph())
            assert sum(weights.values()) == pytest.approx(rho, abs=1e-6)

    def test_dual_feasibility(self):
        q = JoinQuery.triangle()
        weights = fractional_independent_set(q)
        for edge in q.hypergraph().edges:
            assert sum(weights[v] for v in edge) <= 1 + 1e-9

    def test_tight_db_relation_sizes(self):
        q = JoinQuery.triangle()
        for n in (10, 100):
            db = tight_agm_database(q, n)
            assert db.max_relation_size() <= n

    def test_expected_size_formula(self):
        q = JoinQuery.triangle()
        from repro.relational.wcoj import generic_join

        for n in (16, 49):
            db = tight_agm_database(q, n)
            assert len(generic_join(q, db)) == expected_tight_answer_size(q, n)

    def test_skewed_triangle(self):
        db = skewed_triangle_database(20)
        # (0, 0) lies on both arms of the cross: 2·(N/2) − 1 tuples.
        assert db.max_relation_size() == 19
        with pytest.raises(InvalidInstanceError):
            skewed_triangle_database(1)

    def test_uniform_random_db(self):
        q = JoinQuery.cycle(4)
        db = uniform_random_database(q, 30, 10, seed=2)
        assert db.max_relation_size() <= 30
        assert len(db.relation_names) == 4
