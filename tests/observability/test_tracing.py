"""Tests for tracing spans and the ambient-trace mechanism."""

from repro.counting import CostCounter
from repro.observability.tracing import (
    TraceContext,
    activate,
    current_trace,
    span,
)


class TestTraceContext:
    def test_records_name_attributes_and_ops_delta(self):
        trace = TraceContext()
        counter = CostCounter()
        counter.charge(5)
        with trace.span("phase", counter=counter, n=64):
            counter.charge(7)
        assert len(trace.spans) == 1
        recorded = trace.spans[0]
        assert recorded.name == "phase"
        assert recorded.attributes == {"n": 64}
        assert recorded.ops == 7  # only charges inside the span
        assert recorded.elapsed_s >= 0.0

    def test_nesting_depth(self):
        trace = TraceContext()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        depths = {s.name: s.depth for s in trace.spans}
        assert depths == {"outer": 0, "inner": 1}

    def test_payload_shape(self):
        trace = TraceContext()
        with trace.span("p", counter=None, k=3):
            pass
        (payload,) = trace.to_payload()
        assert set(payload) == {"name", "depth", "attributes", "ops", "elapsed_s"}

    def test_span_recorded_even_when_body_raises(self):
        trace = TraceContext()
        try:
            with trace.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert trace.spans[0].elapsed_s >= 0.0
        assert trace._depth == 0

    def test_nested_span_depth_survives_exceptions(self):
        """Regression: an exception escaping an inner span must unwind
        the depth counter at every level, so spans opened afterwards
        record the correct depth (not one inflated by the dead spans)."""
        trace = TraceContext()
        try:
            with trace.span("outer"):
                with trace.span("middle"):
                    with trace.span("inner"):
                        raise RuntimeError("deep failure")
        except RuntimeError:
            pass
        assert trace._depth == 0
        depths = {s.name: s.depth for s in trace.spans}
        assert depths == {"outer": 0, "middle": 1, "inner": 2}
        # A fresh span after the unwinding starts back at the root.
        with trace.span("after"):
            pass
        assert trace.spans[-1].depth == 0


class TestAmbientSpan:
    def test_noop_without_active_trace(self):
        assert current_trace() is None
        with span("ignored", n=1) as record:
            assert record is None

    def test_reports_into_activated_trace(self):
        trace = TraceContext()
        with activate(trace):
            assert current_trace() is trace
            with span("solver", m=2) as record:
                assert record is not None
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["solver"]

    def test_activation_restores_previous_trace(self):
        outer, inner = TraceContext(), TraceContext()
        with activate(outer):
            with activate(inner):
                with span("x"):
                    pass
            assert current_trace() is outer
        assert [s.name for s in inner.spans] == ["x"]
        assert outer.spans == []


class TestInstrumentedSolvers:
    def test_generic_join_spans_land_in_active_trace(self):
        from repro.generators.agm import tight_agm_database
        from repro.relational.query import JoinQuery
        from repro.relational.wcoj import generic_join

        query = JoinQuery.triangle()
        database = tight_agm_database(query, 16)
        trace = TraceContext()
        counter = CostCounter()
        with activate(trace):
            generic_join(query, database, counter=counter)
        names = [s.name for s in trace.spans]
        assert names == ["generic_join"]
        assert trace.spans[0].ops == counter.total > 0
