"""Tests for the Chrome trace_event export: span-forest rebuild and
the deterministic op-time layout."""

import json

from repro.observability.chrome_trace import (
    build_span_forest,
    record_to_chrome_trace,
    render_chrome_trace,
)


def make_span(name, depth, ops):
    return {"name": name, "depth": depth, "ops": ops, "attributes": {}}


class TestSpanForest:
    def test_rebuilds_nesting_from_order_and_depth(self):
        spans = [
            make_span("root", 0, 10),
            make_span("child-a", 1, 4),
            make_span("grandchild", 2, 1),
            make_span("child-b", 1, 3),
            make_span("second-root", 0, 5),
        ]
        forest = build_span_forest(spans)
        assert [n.payload["name"] for n in forest] == ["root", "second-root"]
        root = forest[0]
        assert [c.payload["name"] for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].payload["name"] == "grandchild"

    def test_duration_covers_children_with_floor_of_one(self):
        spans = [make_span("parent", 0, 0), make_span("child", 1, 7)]
        (parent,) = build_span_forest(spans)
        assert parent.duration == 7  # children's total, parent charged nothing
        (leaf,) = build_span_forest([make_span("leaf", 0, 0)])
        assert leaf.duration == 1  # floor so the event is visible


class TestTraceDocument:
    def make_record(self):
        return {
            "schema": "repro-run-record/2",
            "run": {"ids": ["T1"], "parallel": 1, "cache_enabled": False},
            "experiments": [
                {
                    "key": "T1",
                    "status": "ok",
                    "spans": [
                        make_span("run", 0, 12),
                        make_span("phase", 1, 12),
                    ],
                }
            ],
        }

    def test_events_have_threads_and_complete_spans(self):
        doc = record_to_chrome_trace(self.make_record())
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name" for e in metadata)
        assert any(
            e["name"] == "thread_name" and e["args"]["name"] == "T1 (ok)"
            for e in metadata
        )
        assert [(e["name"], e["ts"], e["dur"]) for e in complete] == [
            ("run", 0, 12),
            ("phase", 0, 12),
        ]

    def test_op_time_axis_is_documented_in_metadata(self):
        doc = record_to_chrome_trace(self.make_record())
        assert "1 microsecond = 1 charged operation" in doc["metadata"]["time_axis"]

    def test_render_is_valid_sorted_json(self):
        text = render_chrome_trace(self.make_record(), indent=2)
        assert json.loads(text)["traceEvents"]

    def test_export_is_deterministic(self):
        record = self.make_record()
        assert render_chrome_trace(record) == render_chrome_trace(record)
