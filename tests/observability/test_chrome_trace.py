"""Tests for the Chrome trace_event export: span-forest rebuild and
the deterministic op-time layout."""

import json

from repro.observability.chrome_trace import (
    build_span_forest,
    record_to_chrome_trace,
    render_chrome_trace,
)


def make_span(name, depth, ops):
    return {"name": name, "depth": depth, "ops": ops, "attributes": {}}


class TestSpanForest:
    def test_rebuilds_nesting_from_order_and_depth(self):
        spans = [
            make_span("root", 0, 10),
            make_span("child-a", 1, 4),
            make_span("grandchild", 2, 1),
            make_span("child-b", 1, 3),
            make_span("second-root", 0, 5),
        ]
        forest = build_span_forest(spans)
        assert [n.payload["name"] for n in forest] == ["root", "second-root"]
        root = forest[0]
        assert [c.payload["name"] for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].payload["name"] == "grandchild"

    def test_duration_covers_children_with_floor_of_one(self):
        spans = [make_span("parent", 0, 0), make_span("child", 1, 7)]
        (parent,) = build_span_forest(spans)
        assert parent.duration == 7  # children's total, parent charged nothing
        (leaf,) = build_span_forest([make_span("leaf", 0, 0)])
        assert leaf.duration == 1  # floor so the event is visible


class TestTraceDocument:
    def make_record(self):
        return {
            "schema": "repro-run-record/2",
            "run": {"ids": ["T1"], "parallel": 1, "cache_enabled": False},
            "experiments": [
                {
                    "key": "T1",
                    "status": "ok",
                    "spans": [
                        make_span("run", 0, 12),
                        make_span("phase", 1, 12),
                    ],
                }
            ],
        }

    def test_events_have_threads_and_complete_spans(self):
        doc = record_to_chrome_trace(self.make_record())
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name" for e in metadata)
        assert any(
            e["name"] == "thread_name" and e["args"]["name"] == "T1 (ok)"
            for e in metadata
        )
        assert [(e["name"], e["ts"], e["dur"]) for e in complete] == [
            ("run", 0, 12),
            ("phase", 0, 12),
        ]

    def test_op_time_axis_is_documented_in_metadata(self):
        doc = record_to_chrome_trace(self.make_record())
        assert "1 microsecond = 1 charged operation" in doc["metadata"]["time_axis"]

    def test_render_is_valid_sorted_json(self):
        text = render_chrome_trace(self.make_record(), indent=2)
        assert json.loads(text)["traceEvents"]

    def test_export_is_deterministic(self):
        record = self.make_record()
        assert render_chrome_trace(record) == render_chrome_trace(record)


class TestConcurrentTracks:
    """Interleaved request-scoped traces must not share a thread lane."""

    def overlapping_spans(self):
        from repro.observability.tracing import TraceContext

        alpha = TraceContext(track="r1")
        beta = TraceContext(track="r2")
        # Interleave the two contexts the way two concurrent asyncio
        # requests would: alpha opens, beta opens, alpha nests, ...
        with alpha.span("evaluate", a=1):
            with beta.span("evaluate", b=2):
                with alpha.span("join"):
                    pass
                with beta.span("join"):
                    pass
        merged = []
        # Simulate arrival-order merging of the two span logs.
        for one, two in zip(alpha.to_payload(), beta.to_payload()):
            merged.extend((one, two))
        return merged

    def test_split_tracks_partitions_by_context(self):
        from repro.observability.chrome_trace import split_tracks

        merged = self.overlapping_spans()
        tracks = split_tracks(merged)
        assert [track for track, __ in tracks] == ["r1", "r2"]
        assert all(len(spans) == 2 for __, spans in tracks)

    def test_merged_concurrent_trace_gets_one_tid_per_request(self):
        payload = {
            "schema": "test",
            "experiments": [
                {"key": "service", "status": "ok", "spans": self.overlapping_spans()}
            ],
        }
        document = record_to_chrome_trace(payload)
        threads = {
            event["args"]["name"]: event["tid"]
            for event in document["traceEvents"]
            if event["name"] == "thread_name"
        }
        assert set(threads) == {"service (ok) · r1", "service (ok) · r2"}
        assert len(set(threads.values())) == 2
        # Each lane holds its own intact two-span tree: the nested
        # "join" spans stay children of their own context's "evaluate".
        by_tid = {}
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event)
        for tid, events in by_tid.items():
            names = sorted(e["name"] for e in events)
            assert names == ["evaluate", "join"]

    def test_untracked_spans_keep_the_historical_single_thread_layout(self):
        payload = {
            "schema": "test",
            "experiments": [
                {
                    "key": "T1",
                    "status": "ok",
                    "spans": [make_span("solve", 0, 4)],
                }
            ],
        }
        document = record_to_chrome_trace(payload)
        names = [
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "thread_name"
        ]
        assert names == ["T1 (ok)"]
