"""Tests for the report layer: exponent-series extraction and the
terminal/markdown/HTML renderers."""

import pytest

from repro.errors import InvalidInstanceError
from repro.observability.report import (
    extract_exponent_series,
    load_record_payload,
    record_exponent_series,
    render_histogram_text,
    render_html,
    render_markdown,
    render_terminal,
)


def make_result(rows, experiment_id="T-fit", columns=("N", "ops")):
    return {
        "experiment_id": experiment_id,
        "claim": "test claim",
        "columns": list(columns),
        "rows": rows,
        "findings": {"verdict": "PASS"},
    }


def quadratic_rows():
    return [{"N": n, "ops": n * n} for n in (4, 8, 16, 32)]


def make_record(metrics=None, results=None):
    return {
        "schema": "repro-run-record/2",
        "run": {"ids": ["T1"], "parallel": 1, "cache_enabled": False},
        "experiments": [
            {
                "key": "T1",
                "status": "ok",
                "error": None,
                "parameters": {},
                "cache_key": "0" * 64,
                "source_hash": "1" * 64,
                "cost_total": 7,
                "spans": [],
                "metrics": metrics or {},
                "results": results if results is not None else [make_result(quadratic_rows())],
            }
        ],
    }


class TestExponentExtraction:
    def test_fits_slope_from_loglog_rows(self):
        (series,) = extract_exponent_series(make_result(quadratic_rows()))
        assert series.x_column == "N"
        assert series.y_column == "ops"
        assert series.slope == pytest.approx(2.0)
        assert series.xs == (4.0, 8.0, 16.0, 32.0)

    def test_groups_by_family_column(self):
        rows = [
            {"family": "a", "N": n, "ops": n} for n in (2, 4, 8)
        ] + [
            {"family": "b", "N": n, "ops": n**3} for n in (2, 4, 8)
        ]
        series = extract_exponent_series(
            make_result(rows, columns=("family", "N", "ops"))
        )
        slopes = {s.group: s.slope for s in series}
        assert slopes["family=a"] == pytest.approx(1.0)
        assert slopes["family=b"] == pytest.approx(3.0)

    def test_needs_two_distinct_positive_points(self):
        rows = [{"N": 4, "ops": 16}, {"N": 4, "ops": 16}]
        assert extract_exponent_series(make_result(rows)) == []
        assert extract_exponent_series(make_result([])) == []

    def test_record_level_extraction(self):
        series = record_exponent_series(make_record())
        assert [s.experiment_id for s in series] == ["T-fit"]


class TestTextRenderers:
    HIST = {"buckets": [1, 2, 4], "counts": [5, 0, 2, 1], "count": 8, "sum": 20}

    def test_histogram_text_has_bars_and_labels(self):
        text = render_histogram_text("probe.depth", self.HIST)
        assert "probe.depth" in text
        assert "█" in text
        assert "≤1" in text  # ≤1 bucket label
        assert ">4" in text  # overflow bucket label

    def test_terminal_report_includes_fits_and_histograms(self):
        record = make_record(metrics={"histograms": {"probe.depth": self.HIST}})
        text = render_terminal([("r.json", record)])
        assert "T-fit" in text
        assert "ops ~ N^2" in text
        assert "probe.depth" in text

    def test_markdown_report_renders(self):
        record = make_record(metrics={"histograms": {"probe.depth": self.HIST}})
        md = render_markdown([("r.json", record)])
        assert "T-fit" in md
        assert "probe.depth" in md


class TestHtmlDashboard:
    def test_dashboard_is_self_contained_with_svgs(self):
        record = make_record(
            metrics={"histograms": {"probe.depth": TestTextRenderers.HIST}}
        )
        html = render_html([("r.json", record)])
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert 'class="bar"' in html  # histogram bars
        assert 'class="fit-series"' in html  # exponent-fit scatter
        assert "prefers-color-scheme: dark" in html
        assert "<script" not in html  # self-contained, static

    def test_dashboard_without_metrics_still_renders(self):
        html = render_html([("r.json", make_record())])
        assert "<svg" in html  # the fit chart alone


class TestLoadRecordPayload:
    def test_loads_valid_record(self, tmp_path):
        import json

        path = tmp_path / "run.json"
        path.write_text(json.dumps(make_record()), encoding="utf-8")
        payload = load_record_payload(path)
        assert payload["experiments"][0]["key"] == "T1"

    def test_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}', encoding="utf-8")
        with pytest.raises(InvalidInstanceError):
            load_record_payload(path)
