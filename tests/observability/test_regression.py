"""Tests for the golden-baseline regression gate."""

import copy
import json

import pytest

from repro.errors import InvalidInstanceError
from repro.observability.record import validate_record
from repro.observability.regression import (
    BASELINE_IDS,
    check_against_baselines,
    entry_as_record_payload,
    gate_failed,
    load_baseline,
    render_checks,
    write_baselines,
)


def make_entry(key="T1", exponent=2.0, status="ok"):
    return {
        "key": key,
        "status": status,
        "error": None,
        "parameters": {"run": {"seed": 0}},
        "cache_key": "0" * 64,
        "source_hash": "1" * 64,
        "cost_total": 10,
        "elapsed_s": 0.1,
        "spans": [],
        "metrics": {},
        "results": [
            {
                "experiment_id": f"{key}-fit",
                "claim": "test",
                "columns": ["N", "ops"],
                "rows": [],
                "findings": {"verdict": "PASS", "measured_exponent": exponent},
            }
        ],
    }


def make_record(entries):
    return {
        "schema": "repro-run-record/2",
        "created_at": "2026-01-01T00:00:00+00:00",
        "run": {"ids": [e["key"] for e in entries], "parallel": 1, "cache_enabled": False},
        "experiments": entries,
    }


class TestBaselineFiles:
    def test_entry_payload_is_schema_valid_and_volatile_free(self):
        payload = entry_as_record_payload(make_entry())
        assert validate_record(payload) == []
        assert "created_at" not in payload
        assert "elapsed_s" not in payload["experiments"][0]

    def test_write_then_load_roundtrip(self, tmp_path):
        record = make_record([make_entry("T1"), make_entry("T2")])
        written = write_baselines(record, tmp_path)
        assert [p.name for p in written] == ["T1.json", "T2.json"]
        loaded = load_baseline(tmp_path, "T1")
        assert loaded["experiments"][0]["key"] == "T1"

    def test_write_is_byte_stable(self, tmp_path):
        record = make_record([make_entry()])
        (first,) = write_baselines(record, tmp_path)
        before = first.read_bytes()
        write_baselines(copy.deepcopy(record), tmp_path)
        assert first.read_bytes() == before

    def test_failed_entries_are_skipped(self, tmp_path):
        record = make_record([make_entry("T1", status="failed")])
        assert write_baselines(record, tmp_path) == []

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path, "T9") is None

    def test_corrupt_baseline_raises(self, tmp_path):
        (tmp_path / "T1.json").write_text('{"schema": "nope"}', encoding="utf-8")
        with pytest.raises(InvalidInstanceError):
            load_baseline(tmp_path, "T1")


class TestGate:
    def test_matching_record_passes(self, tmp_path):
        write_baselines(make_record([make_entry()]), tmp_path)
        checks = check_against_baselines(make_record([make_entry()]), tmp_path)
        assert [c.outcome for c in checks] == ["ok"]
        assert not gate_failed(checks)

    def test_exponent_drift_beyond_tolerance_fails(self, tmp_path):
        write_baselines(make_record([make_entry(exponent=2.0)]), tmp_path)
        drifted = make_record([make_entry(exponent=2.5)])
        checks = check_against_baselines(drifted, tmp_path, tolerance=0.15)
        assert [c.outcome for c in checks] == ["drift"]
        assert gate_failed(checks)
        assert "GATE FAILED" in render_checks(checks, tmp_path)

    def test_drift_within_tolerance_passes(self, tmp_path):
        write_baselines(make_record([make_entry(exponent=2.0)]), tmp_path)
        nudged = make_record([make_entry(exponent=2.1)])
        checks = check_against_baselines(nudged, tmp_path, tolerance=0.15)
        assert not gate_failed(checks)

    def test_failed_run_fails_the_gate(self, tmp_path):
        write_baselines(make_record([make_entry()]), tmp_path)
        checks = check_against_baselines(
            make_record([make_entry(status="timeout")]), tmp_path
        )
        assert [c.outcome for c in checks] == ["failed-run"]
        assert gate_failed(checks)

    def test_missing_baseline_is_not_fatal(self, tmp_path):
        checks = check_against_baselines(make_record([make_entry("T9")]), tmp_path)
        assert [c.outcome for c in checks] == ["missing-baseline"]
        assert not gate_failed(checks)


class TestCommittedBaselines:
    """The tracked baselines/ directory itself stays valid."""

    def test_every_pinned_baseline_exists_and_validates(self):
        from pathlib import Path

        directory = Path(__file__).resolve().parents[2] / "baselines"
        for key in BASELINE_IDS:
            payload = load_baseline(directory, key)
            assert payload is not None, f"baselines/{key}.json missing"
            assert payload["experiments"][0]["key"] == key

    def test_committed_baselines_are_canonical(self):
        from pathlib import Path

        directory = Path(__file__).resolve().parents[2] / "baselines"
        for key in BASELINE_IDS:
            raw = (directory / f"{key}.json").read_text(encoding="utf-8")
            payload = json.loads(raw)
            canonical = (
                json.dumps(
                    entry_as_record_payload(payload["experiments"][0]),
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            assert raw == canonical, f"baselines/{key}.json is not canonical"


class TestCliGate:
    def test_compare_against_baselines_exits_nonzero_on_drift(self, tmp_path, capsys):
        """Acceptance: perturbing a baseline finding beyond tolerance
        makes `compare --against-baselines` exit non-zero."""
        from repro.experiments.__main__ import main

        write_baselines(make_record([make_entry(exponent=2.0)]), tmp_path)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_record([make_entry(exponent=2.0)])))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(make_record([make_entry(exponent=3.0)])))

        assert (
            main(
                ["compare", str(good), "--against-baselines",
                 "--baselines-dir", str(tmp_path)]
            )
            == 0
        )
        assert (
            main(
                ["compare", str(bad), "--against-baselines",
                 "--baselines-dir", str(tmp_path)]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "GATE FAILED" in out
