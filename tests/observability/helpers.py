"""Module-level experiment runners for the process-pool tests.

Workers unpickle submitted specs by reference, so these callables must
live in an importable module rather than inside a test function.
"""

from __future__ import annotations

import time

from repro.experiments.harness import ExperimentResult
from repro.observability.context import RunContext


def passing_run(
    scale: int = 3, seed: int = 0, context: RunContext | None = None
) -> ExperimentResult:
    ctx = RunContext.ensure(context, "T-pass")
    counter = ctx.new_counter()
    result = ExperimentResult(
        experiment_id="T-pass", claim="test experiment", columns=("i", "sq")
    )
    with ctx.span("T/loop", scale=scale):
        for i in range(scale):
            counter.charge()
            result.add_row(i=i, sq=i * i)
    result.findings["loop_exponent"] = 2.0
    result.findings["verdict"] = "PASS"
    return result


def failing_run(seed: int = 0) -> ExperimentResult:
    raise ValueError("intentional experiment failure")


def sleeping_run(duration: float = 60.0) -> ExperimentResult:
    time.sleep(duration)
    return passing_run()
