"""Tests for the process-pool experiment runner: graceful degradation,
caching, and record determinism."""

from repro.observability.cache import ResultCache
from repro.observability.runner import ExperimentSpec, execute_spec, run_specs

from .helpers import failing_run, passing_run, sleeping_run

PASSING = ExperimentSpec("T1", (passing_run,), seed=3)
FAILING = ExperimentSpec("T2", (failing_run,))
SLEEPING = ExperimentSpec("T3", (sleeping_run,))


class TestExperimentSpec:
    def test_parameters_resolve_defaults_and_seed(self):
        parameters = PASSING.parameters()
        assert parameters == {"passing_run": {"scale": 3, "seed": 3}}

    def test_context_excluded_from_parameters(self):
        for kwargs in PASSING.parameters().values():
            assert "context" not in kwargs


class TestExecuteSpec:
    def test_payload_shape(self):
        payload = execute_spec(PASSING)
        assert set(payload) == {"results", "cost_total", "spans", "elapsed_s", "metrics"}
        (result,) = payload["results"]
        assert result["experiment_id"] == "T-pass"
        assert result["findings"]["verdict"] == "PASS"
        assert payload["cost_total"] == 3  # one charge per loop iteration

    def test_spans_include_runner_and_inner_phases(self):
        names = [s["name"] for s in execute_spec(PASSING)["spans"]]
        assert names == ["T1/passing_run", "T/loop"]


class TestRunSpecs:
    def test_single_spec_ok(self):
        record = run_specs([PASSING])
        (entry,) = record.experiments
        assert entry.status == "ok"
        assert entry.succeeded
        assert entry.cost_total == 3
        assert record.failures == []

    def test_failure_recorded_and_run_continues(self):
        record = run_specs([FAILING, PASSING], parallel=2)
        failed, ok = record.experiments
        assert failed.status == "failed"
        assert "ValueError: intentional experiment failure" in failed.error
        assert failed.results == []
        assert ok.status == "ok"
        assert [run.key for run in record.failures] == ["T2"]

    def test_timeout_recorded_and_run_continues(self):
        record = run_specs([SLEEPING, PASSING], parallel=2, timeout=1.0)
        timed_out, ok = record.experiments
        assert timed_out.status == "timeout"
        assert "timeout" in timed_out.error
        assert ok.status == "ok"

    def test_on_complete_called_in_spec_order(self):
        seen = []
        run_specs([FAILING, PASSING], parallel=2, on_complete=lambda e: seen.append(e.key))
        assert seen == ["T2", "T1"]

    def test_record_is_valid_against_schema(self):
        from repro.observability.record import validate_record

        record = run_specs([PASSING, FAILING], parallel=2)
        assert validate_record(record.to_dict()) == []


class TestCaching:
    def test_second_run_replays_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_specs([PASSING], cache=cache)
        second = run_specs([PASSING], cache=cache)
        assert first.experiments[0].status == "ok"
        assert second.experiments[0].status == "cached"
        assert second.experiments[0].results == first.experiments[0].results
        assert second.experiments[0].cost_total == first.experiments[0].cost_total

    def test_failed_runs_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs([FAILING], cache=cache)
        again = run_specs([FAILING], cache=cache)
        assert again.experiments[0].status == "failed"

    def test_seed_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs([PASSING], cache=cache)
        reseeded = ExperimentSpec("T1", (passing_run,), seed=9)
        record = run_specs([reseeded], cache=cache)
        assert record.experiments[0].status == "ok"


class TestDeterminism:
    def test_two_runs_produce_byte_identical_canonical_records(self):
        first = run_specs([PASSING, FAILING], parallel=2)
        second = run_specs([PASSING, FAILING], parallel=2)
        assert first.canonical_json() == second.canonical_json()

    def test_real_experiment_record_is_deterministic(self):
        from repro.experiments.__main__ import SPECS

        first = run_specs([SPECS["E13"]])
        second = run_specs([SPECS["E13"]])
        assert first.canonical_json() == second.canonical_json()

    def test_identical_seeds_give_byte_identical_metrics(self):
        """S4: two fresh runs of an instrumented experiment must emit
        byte-identical metrics payloads (fixed buckets, no wall-clock)."""
        import json

        from repro.experiments.__main__ import SPECS

        first = run_specs([SPECS["E3"]])
        second = run_specs([SPECS["E3"]])
        first_metrics = first.experiments[0].metrics
        assert first_metrics  # the instrumentation actually fired
        assert "histograms" in first_metrics
        assert json.dumps(first_metrics, sort_keys=True) == json.dumps(
            second.experiments[0].metrics, sort_keys=True
        )

    def test_metrics_identical_across_parallelism(self):
        """S4: --parallel 1 vs --parallel 2 may differ only in the run
        block's recorded settings, never in any experiment entry."""
        from repro.experiments.__main__ import SPECS

        serial = run_specs([SPECS["E3"], SPECS["E9"]], parallel=1)
        pooled = run_specs([SPECS["E3"], SPECS["E9"]], parallel=2)
        serial_entries = serial.canonical_dict()["experiments"]
        pooled_entries = pooled.canonical_dict()["experiments"]
        assert serial_entries == pooled_entries

    def test_cached_and_live_runs_agree_canonically(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = run_specs([PASSING], cache=cache)
        cached = run_specs([PASSING], cache=cache)
        live_dict = live.canonical_dict()
        cached_dict = cached.canonical_dict()
        # Status legitimately differs; everything measured must not.
        live_dict["experiments"][0].pop("status")
        cached_dict["experiments"][0].pop("status")
        assert live_dict == cached_dict
