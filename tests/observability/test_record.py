"""Tests for run records: serialization, validation, comparison."""

import json

import pytest

from repro.errors import InvalidInstanceError
from repro.observability.record import (
    SCHEMA,
    ExperimentRun,
    RunRecord,
    compare_records,
    jsonify,
    render_result_payload,
    strip_volatile,
    validate_record,
)


def make_entry(key="E1", status="ok", findings=None, error=None):
    findings = findings if findings is not None else {"verdict": "PASS"}
    return ExperimentRun(
        key=key,
        status=status,
        seed=0,
        parameters={"run": {"seed": 0}},
        source_hash="a" * 64,
        cache_key="b" * 64,
        cost_total=10,
        elapsed_s=0.5,
        spans=[
            {"name": f"{key}/run", "depth": 0, "attributes": {}, "ops": 10,
             "elapsed_s": 0.5}
        ],
        results=[
            {
                "experiment_id": f"{key}-test",
                "claim": "claim",
                "columns": ["n", "ops"],
                "rows": [{"n": 1, "ops": 3}],
                "findings": findings,
            }
        ],
        error=error,
    )


def make_record(entries=None):
    record = RunRecord(
        ids=["E1"], parallel=2, cache_enabled=True, created_at="2026-01-01T00:00:00"
    )
    record.experiments = entries if entries is not None else [make_entry()]
    return record


class TestJsonify:
    def test_scalars_pass_through(self):
        assert jsonify(True) is True
        assert jsonify(3) == 3
        assert jsonify(2.5) == 2.5
        assert jsonify(None) is None

    def test_tuples_become_lists(self):
        assert jsonify((1, (2, 3))) == [1, [2, 3]]

    def test_mapping_keys_become_strings(self):
        assert jsonify({3: 1.5, "a": (1,)}) == {"3": 1.5, "a": [1]}

    def test_sets_sorted_deterministically(self):
        assert jsonify({3, 1, 2}) == jsonify({2, 3, 1})

    def test_unknown_objects_reprd(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonify(Odd()) == "<odd>"


class TestRunRecord:
    def test_roundtrip_through_dict(self):
        record = make_record()
        clone = RunRecord.from_dict(json.loads(record.to_json()))
        assert clone.to_dict() == record.to_dict()

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(InvalidInstanceError):
            RunRecord.from_dict({"schema": "nope"})

    def test_canonical_strips_volatile_keys(self):
        canonical = make_record().canonical_json()
        assert "created_at" not in canonical
        assert "elapsed_s" not in canonical

    def test_canonical_ignores_timing_differences(self):
        slow, fast = make_record(), make_record()
        slow.experiments[0].elapsed_s = 99.0
        slow.created_at = "2027-12-31T23:59:59"
        assert slow.canonical_json() == fast.canonical_json()

    def test_failures_property(self):
        ok = make_entry("E1")
        failed = make_entry("E2", status="failed", error="ValueError: x")
        verdict_fail = make_entry("E3", findings={"verdict": "FAIL"})
        record = make_record([ok, failed, verdict_fail])
        assert [run.key for run in record.failures] == ["E2", "E3"]

    def test_strip_volatile_is_recursive(self):
        nested = {"a": [{"elapsed_s": 1, "keep": 2}], "created_at": "x"}
        assert strip_volatile(nested) == {"a": [{"keep": 2}]}


class TestValidateRecord:
    def test_valid_record_has_no_problems(self):
        assert validate_record(make_record().to_dict()) == []

    def test_schema_tag_checked(self):
        payload = make_record().to_dict()
        payload["schema"] = "other/9"
        assert any("schema" in p for p in validate_record(payload))

    def test_bad_status_flagged(self):
        payload = make_record().to_dict()
        payload["experiments"][0]["status"] = "exploded"
        assert any("status" in p for p in validate_record(payload))

    def test_failed_requires_error(self):
        entry = make_entry(status="failed", error=None)
        payload = make_record([entry]).to_dict()
        assert any("error: required" in p for p in validate_record(payload))

    def test_row_keys_must_match_columns(self):
        payload = make_record().to_dict()
        payload["experiments"][0]["results"][0]["rows"][0] = {"n": 1}
        assert any("keys do not match columns" in p for p in validate_record(payload))

    def test_malformed_span_flagged(self):
        payload = make_record().to_dict()
        payload["experiments"][0]["spans"][0] = {"name": "x"}
        assert any("malformed span" in p for p in validate_record(payload))

    def test_v1_records_still_accepted(self):
        payload = make_record().to_dict()
        payload["schema"] = "repro-run-record/1"
        for entry in payload["experiments"]:
            entry.pop("metrics", None)
        assert validate_record(payload) == []

    def test_canonical_record_is_itself_valid(self):
        # Baselines are stored canonically; stripping volatile keys
        # must not make a record invalid.
        assert validate_record(strip_volatile(make_record().to_dict())) == []


class TestValidateMetrics:
    def with_metrics(self, metrics):
        payload = make_record().to_dict()
        payload["experiments"][0]["metrics"] = metrics
        return payload

    def good_histogram(self):
        return {"buckets": [1, 2, 4], "counts": [1, 0, 2, 0], "count": 3, "sum": 9}

    def test_well_formed_metrics_pass(self):
        metrics = {
            "counters": {"x.events": 4},
            "gauges": {"x.depth": {"value": 2, "max": 5}},
            "histograms": {"x.sizes": self.good_histogram()},
        }
        assert validate_record(self.with_metrics(metrics)) == []

    def test_missing_metrics_section_is_fine(self):
        payload = make_record().to_dict()
        payload["experiments"][0].pop("metrics", None)
        assert validate_record(payload) == []

    def test_negative_counter_flagged(self):
        problems = validate_record(self.with_metrics({"counters": {"c": -1}}))
        assert any("counters" in p for p in problems)

    def test_unsorted_buckets_flagged(self):
        hist = self.good_histogram()
        hist["buckets"] = [2, 1, 4]
        problems = validate_record(self.with_metrics({"histograms": {"h": hist}}))
        assert any("h" in p for p in problems)

    def test_counts_length_must_be_buckets_plus_one(self):
        hist = self.good_histogram()
        hist["counts"] = [1, 2]
        problems = validate_record(self.with_metrics({"histograms": {"h": hist}}))
        assert any("h" in p for p in problems)

    def test_count_must_equal_counts_total(self):
        hist = self.good_histogram()
        hist["count"] = 99
        problems = validate_record(self.with_metrics({"histograms": {"h": hist}}))
        assert any("h" in p for p in problems)

    def test_unknown_section_flagged(self):
        problems = validate_record(self.with_metrics({"timers": {}}))
        assert any("timers" in p for p in problems)


class TestCompareRecords:
    def old_and_new(self, old_findings, new_findings):
        old = make_record([make_entry(findings=old_findings)]).to_dict()
        new = make_record([make_entry(findings=new_findings)]).to_dict()
        return old, new

    def test_identical_records_have_no_drift(self):
        old, new = self.old_and_new({"verdict": "PASS"}, {"verdict": "PASS"})
        diff = compare_records(old, new)
        assert not diff.has_drift
        assert "no finding differences" in diff.render()

    def test_exponent_drift_beyond_tolerance(self):
        old, new = self.old_and_new(
            {"fit_exponent": 2.0, "verdict": "PASS"},
            {"fit_exponent": 2.4, "verdict": "PASS"},
        )
        diff = compare_records(old, new, tolerance=0.15)
        assert diff.has_drift
        assert diff.drifted == [("E1-test", "fit_exponent", 2.0, 2.4)]

    def test_exponent_change_within_tolerance_ok(self):
        old, new = self.old_and_new(
            {"slope": 2.0, "verdict": "PASS"}, {"slope": 2.1, "verdict": "PASS"}
        )
        assert not compare_records(old, new, tolerance=0.15).has_drift

    def test_verdict_regression_is_drift(self):
        old, new = self.old_and_new({"verdict": "PASS"}, {"verdict": "FAIL"})
        diff = compare_records(old, new)
        assert diff.has_drift
        assert diff.verdict_changes == [("E1-test", "PASS", "FAIL")]

    def test_verdict_improvement_is_not_drift(self):
        old, new = self.old_and_new({"verdict": "FAIL"}, {"verdict": "PASS"})
        assert not compare_records(old, new).has_drift

    def test_non_exponent_changes_reported_not_drift(self):
        old, new = self.old_and_new(
            {"count": 5, "verdict": "PASS"}, {"count": 6, "verdict": "PASS"}
        )
        diff = compare_records(old, new)
        assert not diff.has_drift
        assert diff.changed == [("E1-test", "count", 5, 6)]

    def test_added_and_removed_results(self):
        old = make_record([make_entry("E1")]).to_dict()
        new = make_record([make_entry("E2")]).to_dict()
        diff = compare_records(old, new)
        assert diff.added == ["E2-test"]
        assert diff.removed == ["E1-test"]


class TestRenderResultPayload:
    def test_renders_like_live_result(self):
        payload = make_entry().results[0]
        text = render_result_payload(payload)
        assert "E1-test" in text and "claim" in text
        assert "verdict = PASS" in text
