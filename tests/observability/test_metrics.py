"""Tests for the deterministic metrics registry: instruments,
fixed-bucket histograms, ambient activation, and solver wiring."""

import json

import pytest

from repro.errors import InvalidInstanceError
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    SMALL_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate_metrics,
    current_metrics,
    inc,
    observe,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.to_payload() == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites_and_tracks_maximum(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.to_payload() == {"value": 3, "max": 7}

    def test_set_max_is_monotone(self):
        gauge = Gauge("g")
        gauge.set_max(5)
        gauge.set_max(2)
        assert gauge.to_payload() == {"value": 5, "max": 5}


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        hist = Histogram("h", bounds=(1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5, 100):
            hist.observe(value)
        # counts: <=1, <=2, <=4, overflow
        assert hist.counts == [2, 1, 2, 2]
        assert hist.count == 7
        assert hist.sum == 115

    def test_payload_shape(self):
        hist = Histogram("h", bounds=(1, 2))
        hist.observe(2)
        assert hist.to_payload() == {
            "buckets": [1, 2],
            "counts": [0, 1, 0],
            "count": 1,
            "sum": 2,
        }

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS == (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
        assert all(b < a for b, a in zip(SMALL_BUCKETS, SMALL_BUCKETS[1:]))

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Histogram("h", bounds=(1, 1, 2))
        with pytest.raises(InvalidInstanceError):
            Histogram("h", bounds=())

    def test_negative_observation_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Histogram("h").observe(-1)

    def test_mean(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_rebucketing_a_histogram_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(InvalidInstanceError):
            registry.histogram("h", buckets=(1, 2, 4))

    def test_empty_registry_payload_is_empty(self):
        registry = MetricsRegistry()
        assert registry.empty
        assert registry.to_payload() == {}

    def test_payload_has_sorted_sections(self):
        registry = MetricsRegistry()
        registry.counter("z.second").inc()
        registry.counter("a.first").inc(2)
        registry.gauge("depth").set(3)
        registry.histogram("sizes", buckets=(1, 2)).observe(2)
        payload = registry.to_payload()
        assert list(payload["counters"]) == ["a.first", "z.second"]
        assert payload["gauges"]["depth"] == {"value": 3, "max": 3}
        assert payload["histograms"]["sizes"]["counts"] == [0, 1, 0]
        json.dumps(payload)  # JSON-safe by construction


class TestAmbientRegistry:
    def test_inactive_by_default(self):
        assert current_metrics() is None
        observe("ignored", 3)  # no-op, must not raise
        inc("ignored")

    def test_activation_scopes_and_restores(self):
        registry = MetricsRegistry()
        with activate_metrics(registry) as active:
            assert active is registry
            assert current_metrics() is registry
            observe("h", 2, buckets=(1, 2))
            inc("c", 3)
        assert current_metrics() is None
        payload = registry.to_payload()
        assert payload["counters"]["c"] == 3
        assert payload["histograms"]["h"]["count"] == 1

    def test_nested_activation_restores_outer(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate_metrics(outer):
            with activate_metrics(inner):
                inc("x")
            assert current_metrics() is outer
        assert inner.to_payload()["counters"]["x"] == 1
        assert outer.empty


class TestSolverInstrumentation:
    """The hot paths observe into the ambient registry — and stay
    silent (and correct) without one."""

    def test_generic_join_emits_probe_and_answer_metrics(self):
        from repro.generators.agm import tight_agm_database
        from repro.relational.query import JoinQuery
        from repro.relational.wcoj import generic_join

        query = JoinQuery.triangle()
        database = tight_agm_database(query, 16)
        quiet = generic_join(query, database)
        registry = MetricsRegistry()
        with activate_metrics(registry):
            loud = generic_join(query, database)
        assert loud == quiet  # instrumentation never changes answers
        payload = registry.to_payload()
        assert payload["counters"]["wcoj.joins"] == 1
        assert payload["counters"]["wcoj.answers"] == len(loud)
        probe = payload["histograms"]["wcoj.probes_per_answer"]
        assert probe["count"] == len(loud)
        assert payload["histograms"]["wcoj.candidate_set_size"]["count"] > 0

    def test_backtracking_emits_branching_metrics(self):
        from repro.csp.backtracking import solve_backtracking
        from repro.generators.csp_gen import random_binary_csp

        instance = random_binary_csp(
            num_variables=8, domain_size=3, num_constraints=10, seed=5
        )
        registry = MetricsRegistry()
        with activate_metrics(registry):
            solve_backtracking(instance)
        payload = registry.to_payload()
        assert payload["counters"]["backtracking.nodes"] > 0
        assert "backtracking.branching_factor" in payload["histograms"]

    def test_dpll_emits_unit_chain_metrics(self):
        from repro.generators.sat_gen import random_ksat
        from repro.sat.dpll import solve_dpll

        formula = random_ksat(num_variables=12, num_clauses=50, k=3, seed=2)
        registry = MetricsRegistry()
        with activate_metrics(registry):
            solve_dpll(formula)
        payload = registry.to_payload()
        assert payload["counters"]["dpll.calls"] == 1
        chains = payload["histograms"]["dpll.unit_chain_length"]
        assert chains["count"] > 0


class TestPercentiles:
    def test_interpolates_within_a_bucket(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        for value in (5.0, 15.0, 18.0, 19.0):
            hist.observe(value)
        # Rank 2 of 4 lands at the top of the (0, 10] bucket's share.
        assert hist.percentile(0.25) == 10.0 * (1 / 1)
        p50 = hist.percentile(0.50)
        assert 10.0 < p50 <= 20.0
        assert hist.percentile(1.0) == 20.0

    def test_single_observation_all_quantiles_in_its_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert 1.0 < hist.percentile(q) <= 2.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.percentile(0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        assert hist.percentile(0.5) == 0.0

    def test_invalid_quantiles_rejected(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(InvalidInstanceError):
                hist.percentile(q)

    def test_monotone_in_q(self):
        hist = Histogram("h")
        for value in (1, 3, 9, 30, 100, 400, 1000, 5000):
            hist.observe(value)
        quantiles = [hist.percentile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_payload_percentile_matches_live_histogram(self):
        from repro.observability.metrics import payload_percentile

        hist = Histogram("h")
        for value in (2, 7, 70, 900):
            hist.observe(value)
        payload = hist.to_payload()
        for q in (0.5, 0.95, 0.99):
            assert payload_percentile(payload, q) == hist.percentile(q)
