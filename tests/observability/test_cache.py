"""Tests for the content-addressed result cache."""

from repro.observability.cache import ResultCache, cache_key, source_hash

from .helpers import failing_run, passing_run

PAYLOAD = {"results": [], "cost_total": 3, "spans": []}


class TestCacheKey:
    def test_deterministic(self):
        sources = source_hash([passing_run])
        assert cache_key("E1", {"a": 1}, 0, sources) == cache_key(
            "E1", {"a": 1}, 0, sources
        )

    def test_sensitive_to_every_component(self):
        sources = source_hash([passing_run])
        base = cache_key("E1", {"a": 1}, 0, sources)
        assert cache_key("E2", {"a": 1}, 0, sources) != base
        assert cache_key("E1", {"a": 2}, 0, sources) != base
        assert cache_key("E1", {"a": 1}, 7, sources) != base
        assert cache_key("E1", {"a": 1}, 0, "0" * 64) != base


class TestSourceHash:
    def test_stable_for_same_runners(self):
        assert source_hash([passing_run]) == source_hash([passing_run])

    def test_same_module_runners_share_a_hash(self):
        # Both helpers live in one module; the hash covers module source,
        # so any edit to either invalidates both — conservatively.
        assert source_hash([passing_run]) == source_hash([failing_run])

    def test_differs_across_modules(self):
        from repro.experiments import exp_hypotheses

        assert source_hash([passing_run]) != source_hash([exp_hypotheses.run])


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).load("f" * 64) is None

    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("f" * 64, PAYLOAD)
        loaded = cache.load("f" * 64)
        assert loaded is not None
        assert loaded["cost_total"] == 3

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("f" * 64, PAYLOAD)
        (tmp_path / ("f" * 64 + ".json")).write_text("{not json")
        assert cache.load("f" * 64) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ("f" * 64 + ".json")).write_text('{"schema": "other/0"}')
        assert cache.load("f" * 64) is None

    def test_store_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("f" * 64, PAYLOAD)
        assert not list(tmp_path.glob("*.tmp"))
