"""Tests for the Theorem 7.2 pipeline: DomSet → CSP and grouping."""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.csp.bruteforce import solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import ReductionError
from repro.generators.graph_gen import planted_dominating_set_graph
from repro.graphs.dominating_set import (
    find_dominating_set_bruteforce,
    is_dominating_set,
)
from repro.graphs.graph import Graph
from repro.reductions.domset_to_csp import (
    dominating_set_to_csp,
    dominating_set_to_grouped_csp,
)
from repro.reductions.grouping import group_variables
from repro.treewidth.exact import treewidth_exact

from ..conftest import make_random_graph


class TestDomsetToCSP:
    def test_validation(self):
        with pytest.raises(ReductionError):
            dominating_set_to_csp(Graph(vertices=[1]), 0)
        with pytest.raises(ReductionError):
            dominating_set_to_csp(Graph(), 1)

    def test_certificates(self):
        g, __ = planted_dominating_set_graph(6, 2, seed=1)
        red = dominating_set_to_csp(g, 2)
        red.certify()
        assert red.target.num_variables == 2 + 6

    def test_primal_is_complete_bipartite_with_low_treewidth(self):
        g, __ = planted_dominating_set_graph(5, 2, seed=2)
        red = dominating_set_to_csp(g, 2)
        width, __ = treewidth_exact(red.target.primal_graph())
        assert width <= 2

    def test_equivalence_random(self, rng):
        for _ in range(8):
            g = make_random_graph(rng.randrange(4, 7), 0.45, rng)
            t = 2
            red = dominating_set_to_csp(g, t)
            red.certify()
            oracle = find_dominating_set_bruteforce(g, t)
            solution = solve_backtracking(red.target)
            assert (oracle is None) == (solution is None)
            if solution is not None:
                ds = red.pull_back(solution)
                assert is_dominating_set(g, ds)
                assert 1 <= len(ds) <= t

    def test_single_vertex_graph(self):
        g = Graph(vertices=["v"])
        red = dominating_set_to_csp(g, 1)
        solution = solve_backtracking(red.target)
        assert solution is not None
        assert red.pull_back(solution) == ("v",)


class TestGrouping:
    def base_instance(self) -> CSPInstance:
        ne = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]
        return CSPInstance(
            ["a", "b", "c"],
            [0, 1, 2],
            [
                Constraint(("a", "b"), ne),
                Constraint(("b", "c"), ne),
            ],
        )

    def test_overlapping_groups_rejected(self):
        inst = self.base_instance()
        with pytest.raises(ReductionError):
            group_variables(inst, [["a", "b"], ["b", "c"]])

    def test_unknown_variable_rejected(self):
        inst = self.base_instance()
        with pytest.raises(ReductionError):
            group_variables(inst, [["a", "zzz"]])

    def test_certificates(self):
        inst = self.base_instance()
        red = group_variables(inst, [["a", "b"]])
        red.certify()
        assert red.target.num_variables == 2  # {a,b} and {c}
        assert red.target.domain_size == 9

    def test_equivalence_and_back_map(self, rng):
        from ..conftest import make_random_binary_csp

        for _ in range(10):
            inst = make_random_binary_csp(rng, num_variables=4, domain_size=2)
            red = group_variables(inst, [[inst.variables[0], inst.variables[1]]])
            red.certify()
            oracle = solve_bruteforce(inst)
            grouped_solution = solve_backtracking(red.target)
            assert (oracle is None) == (grouped_solution is None)
            if grouped_solution is not None:
                back = red.pull_back(grouped_solution)
                assert inst.is_solution(back)

    def test_empty_groups_means_all_singletons(self):
        inst = self.base_instance()
        red = group_variables(inst, [])
        assert red.target.num_variables == 3
        assert red.target.domain_size == 3

    def test_constraint_within_one_group(self):
        inst = CSPInstance(
            ["a", "b"], [0, 1], [Constraint(("a", "b"), [(0, 1)])]
        )
        red = group_variables(inst, [["a", "b"]])
        solution = solve_backtracking(red.target)
        assert solution is not None
        assert red.pull_back(solution) == {"a": 0, "b": 1}


class TestFullTheorem72:
    def test_group_size_must_divide(self):
        g, __ = planted_dominating_set_graph(5, 2, seed=3)
        with pytest.raises(ReductionError):
            dominating_set_to_grouped_csp(g, 3, 2)

    def test_grouped_width_k(self):
        g, __ = planted_dominating_set_graph(6, 4, seed=4)
        red = dominating_set_to_grouped_csp(g, 4, 2)
        red.certify()
        width, __ = treewidth_exact(red.target.primal_graph())
        assert width <= 2
        assert red.parameter_target == 2

    def test_end_to_end_equivalence(self, rng):
        for _ in range(5):
            g = make_random_graph(5, 0.5, rng)
            t, group = 2, 2
            red = dominating_set_to_grouped_csp(g, t, group)
            oracle = find_dominating_set_bruteforce(g, t)
            solution = solve_backtracking(red.target)
            assert (oracle is None) == (solution is None)
            if solution is not None:
                ds = red.pull_back(solution)
                assert is_dominating_set(g, ds)
                assert len(ds) <= t
