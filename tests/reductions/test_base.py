"""Tests for the certified-reduction framework."""

import pytest

from repro.errors import ReductionError
from repro.reductions.base import Certificate, CertifiedReduction


class TestCertifiedReduction:
    def test_certify_passes_when_all_hold(self):
        red = CertifiedReduction(name="t", source=1, target=2)
        red.add_certificate("a", True)
        red.certify()

    def test_certify_raises_with_details(self):
        red = CertifiedReduction(name="t", source=1, target=2)
        red.add_certificate("size ok", False, "3 vs 2")
        with pytest.raises(ReductionError, match="size ok"):
            red.certify()

    def test_certificate_lookup(self):
        red = CertifiedReduction(name="t", source=1, target=2)
        red.add_certificate("a", True, "detail")
        assert red.certificate("a") == Certificate("a", True, "detail")
        with pytest.raises(ReductionError):
            red.certificate("missing")

    def test_pull_back_none_stays_none(self):
        red = CertifiedReduction(
            name="t", source=1, target=2, map_solution_back=lambda s: s + 1
        )
        assert red.pull_back(None) is None
        assert red.pull_back(1) == 2

    def test_default_back_map_is_identity(self):
        red = CertifiedReduction(name="t", source=1, target=2)
        assert red.pull_back("x") == "x"
