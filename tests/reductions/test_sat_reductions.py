"""Equivalence tests for the 3SAT reductions (Corollaries 6.1, 6.2)."""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.errors import ReductionError
from repro.generators.sat_gen import random_ksat
from repro.reductions.sat_to_coloring import (
    BASE,
    FALSE,
    TRUE,
    coloring_as_csp,
    sat_to_3coloring,
    solve_coloring,
)
from repro.reductions.sat_to_csp import sat_to_csp
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll


class TestSatToCSP:
    def test_empty_formula_rejected(self):
        with pytest.raises(ReductionError):
            sat_to_csp(CNF(0))

    def test_certificates(self):
        f = random_ksat(6, 10, 3, seed=1)
        red = sat_to_csp(f)
        red.certify()
        assert red.target.num_variables == 6
        assert red.target.num_constraints == 10
        assert red.target.domain_size == 2

    def test_clause_with_repeated_variable(self):
        # (x1 ∨ ¬x1 ∨ x2): the scope deduplicates to {1, 2}.
        f = CNF(2, [[1, -1, 2]])
        red = sat_to_csp(f)
        red.certify()
        # Tautological clause: every pair allowed.
        assert len(red.target.constraints[0].relation) == 4

    def test_equivalence_random(self, rng):
        for _ in range(20):
            n = rng.randrange(3, 7)
            f = random_ksat(n, rng.randrange(1, 4 * n), 3, seed=rng.randrange(10**6))
            red = sat_to_csp(f)
            red.certify()
            sat = solve_dpll(f) is not None
            csp_solution = solve_backtracking(red.target)
            assert sat == (csp_solution is not None)
            if csp_solution is not None:
                assert f.evaluate(red.pull_back(csp_solution))

    def test_unit_clauses(self):
        f = CNF.from_clauses([[1], [-2]])
        red = sat_to_csp(f)
        solution = solve_backtracking(red.target)
        back = red.pull_back(solution)
        assert back == {1: True, 2: False}


class TestSatTo3Coloring:
    def test_wide_clause_rejected(self):
        with pytest.raises(ReductionError):
            sat_to_3coloring(CNF.from_clauses([[1, 2, 3, 4]]))

    def test_size_certificates_linear(self):
        f = random_ksat(8, 20, 3, seed=2)
        red = sat_to_3coloring(f)
        red.certify()
        graph = red.target.graph
        assert graph.num_vertices <= 3 + 2 * 8 + 6 * 20
        assert graph.num_edges <= 3 + 3 * 8 + 12 * 20

    def test_palette_is_triangle(self):
        f = CNF.from_clauses([[1]])
        red = sat_to_3coloring(f)
        g = red.target.graph
        assert g.has_edge(TRUE, FALSE) and g.has_edge(TRUE, BASE) and g.has_edge(FALSE, BASE)

    def test_equivalence_random(self, rng):
        for _ in range(12):
            n = rng.randrange(3, 6)
            f = random_ksat(n, rng.randrange(1, 10), 3, seed=rng.randrange(10**6))
            red = sat_to_3coloring(f)
            red.certify()
            sat = solve_dpll(f) is not None
            coloring = solve_coloring(red.target)
            assert sat == (coloring is not None), list(f.clauses)
            if coloring is not None:
                assert f.evaluate(red.pull_back(coloring))

    def test_unsatisfiable_formula_not_colorable(self):
        f = CNF.from_clauses([[1], [-1]])
        assert solve_dpll(f) is None
        red = sat_to_3coloring(f)
        assert solve_coloring(red.target) is None

    def test_narrow_clauses_padded(self):
        # 1- and 2-literal clauses go through the same gadget.
        f = CNF.from_clauses([[1], [-1, 2]])
        red = sat_to_3coloring(f)
        coloring = solve_coloring(red.target)
        assert coloring is not None
        back = red.pull_back(coloring)
        assert back[1] is True and back[2] is True


class TestColoringAsCSP:
    def test_corollary_62_form(self):
        """Corollary 6.2's instance family: binary constraints, |D| = 3."""
        f = random_ksat(4, 6, 3, seed=3)
        red = sat_to_3coloring(f)
        csp = coloring_as_csp(red.target.graph)
        assert csp.is_binary
        assert csp.domain_size == 3

    def test_k4_not_3_colorable(self):
        from repro.graphs.graph import Graph

        k4 = Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert solve_coloring(k4) is None
        assert solve_coloring(k4, colors=4) is not None
