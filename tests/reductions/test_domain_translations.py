"""Tests for the §2 translations between the four domains."""

import pytest

from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import ReductionError
from repro.graphs.subgraph_iso import find_partitioned_subgraph
from repro.reductions.csp_to_graph import csp_to_partitioned_subgraph
from repro.reductions.csp_to_structures import csp_to_structures
from repro.reductions.query_to_csp import csp_to_query, query_to_csp
from repro.relational.database import Database
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join
from repro.structures.homomorphism import (
    count_structure_homomorphisms,
    find_structure_homomorphism,
)

from ..conftest import make_random_binary_csp


class TestQueryToCSP:
    def test_simple_query(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db = Database([Relation("R", ("x", "y"), [(1, 2), (3, 4)])])
        red = query_to_csp(q, db)
        red.certify()
        assert red.target.num_variables == 2
        solution = solve_bruteforce(red.target)
        assert solution is not None
        assert red.pull_back(solution) in {(1, 2), (3, 4)}

    def test_empty_database_rejected(self):
        q = JoinQuery([Atom("R", ("a",))])
        db = Database([Relation("R", ("x",))])
        with pytest.raises(ReductionError):
            query_to_csp(q, db)

    def test_answer_count_equals_solution_count(self, rng):
        from repro.generators.agm import uniform_random_database

        q = JoinQuery.triangle()
        db = uniform_random_database(q, 20, 5, seed=7)
        red = query_to_csp(q, db)
        answer = generic_join(q, db)
        assert count_bruteforce(red.target) == len(answer)


class TestCSPToQuery:
    def test_round_trip(self, rng):
        for _ in range(10):
            inst = make_random_binary_csp(rng, num_variables=4, domain_size=3)
            red = csp_to_query(inst)
            red.certify()
            query, database = red.target
            answer = generic_join(query, database)
            assert len(answer) == count_bruteforce(inst)
            for t in answer.tuples:
                ordered = tuple(
                    t[answer.attributes.index(a)] for a in query.attributes
                )
                back = red.pull_back(ordered)
                assert inst.is_solution(back)

    def test_repeated_scope_rejected(self):
        inst = CSPInstance(
            ["x"], [0, 1], [Constraint(("x", "x"), [(0, 0)])]
        )
        with pytest.raises(ReductionError):
            csp_to_query(inst)

    def test_isolated_variable_gets_domain_atom(self):
        inst = CSPInstance(["x", "lonely"], [0, 1], [Constraint(("x",), [(1,)])])
        red = csp_to_query(inst)
        query, database = red.target
        assert len(query.atoms) == 2
        answer = generic_join(query, database)
        assert len(answer) == 2  # x=1, lonely in {0,1}


class TestCSPToPartitionedSubgraph:
    def test_requires_binary(self):
        inst = CSPInstance(
            ["x", "y", "z"], [0], [Constraint(("x", "y", "z"), [(0, 0, 0)])]
        )
        with pytest.raises(ReductionError):
            csp_to_partitioned_subgraph(inst)

    def test_host_size_certificate(self, rng):
        inst = make_random_binary_csp(rng, num_variables=4, domain_size=3)
        red = csp_to_partitioned_subgraph(inst)
        red.certify()
        __, host, __dict = red.target
        assert host.num_vertices == 12

    def test_equivalence_random(self, rng):
        for _ in range(12):
            inst = make_random_binary_csp(
                rng, num_variables=4, domain_size=3, num_constraints=4
            )
            red = csp_to_partitioned_subgraph(inst)
            pattern, host, partition = red.target
            embedding = find_partitioned_subgraph(pattern, host, partition)
            oracle = solve_bruteforce(inst)
            assert (embedding is None) == (oracle is None)
            if embedding is not None:
                assert inst.is_solution(red.pull_back(embedding))

    def test_multiple_constraints_same_pair_intersect(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [
                Constraint(("x", "y"), [(0, 0), (0, 1)]),
                Constraint(("y", "x"), [(1, 0)]),  # flipped scope
            ],
        )
        red = csp_to_partitioned_subgraph(inst)
        pattern, host, partition = red.target
        embedding = find_partitioned_subgraph(pattern, host, partition)
        # Intersection: x=0,y=1 only.
        assert embedding is not None
        assert red.pull_back(embedding) == {"x": 0, "y": 1}


class TestCSPToStructures:
    def test_needs_constraints(self):
        inst = CSPInstance(["x"], [0], [])
        with pytest.raises(ReductionError):
            csp_to_structures(inst)

    def test_certificates(self, rng):
        inst = make_random_binary_csp(rng)
        red = csp_to_structures(inst)
        red.certify()
        a, b = red.target
        assert a.universe_size == inst.num_variables
        assert b.universe_size == inst.domain_size

    def test_hom_count_equals_solution_count(self, rng):
        for _ in range(10):
            inst = make_random_binary_csp(
                rng, num_variables=4, domain_size=2, num_constraints=4
            )
            red = csp_to_structures(inst)
            a, b = red.target
            assert count_structure_homomorphisms(a, b) == count_bruteforce(inst)

    def test_hom_maps_back_to_solution(self, rng):
        inst = make_random_binary_csp(rng, num_variables=3, domain_size=3)
        red = csp_to_structures(inst)
        a, b = red.target
        hom = find_structure_homomorphism(a, b)
        oracle = solve_bruteforce(inst)
        assert (hom is None) == (oracle is None)
        if hom is not None:
            assert inst.is_solution(red.pull_back(hom))

    def test_ternary_constraints_supported(self):
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [Constraint(("x", "y", "z"), [(0, 1, 0), (1, 0, 1)])],
        )
        red = csp_to_structures(inst)
        a, b = red.target
        assert count_structure_homomorphisms(a, b) == count_bruteforce(inst)
