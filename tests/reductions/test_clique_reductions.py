"""Tests for Clique → CSP and Clique → Special CSP (§5, §6)."""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.errors import ReductionError
from repro.generators.graph_gen import planted_clique_graph, turan_graph
from repro.graphs.clique import find_clique_bruteforce
from repro.graphs.graph import Graph
from repro.graphs.special import is_special_graph, solve_special_csp
from repro.reductions.clique_to_csp import clique_to_csp
from repro.reductions.clique_to_special import MAX_K, clique_to_special_csp

from ..conftest import make_random_graph


class TestCliqueToCSP:
    def test_small_k_rejected(self, triangle_graph):
        with pytest.raises(ReductionError):
            clique_to_csp(triangle_graph, 1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ReductionError):
            clique_to_csp(Graph(), 3)

    def test_certificates(self, triangle_graph):
        red = clique_to_csp(triangle_graph, 3)
        red.certify()
        assert red.target.num_variables == 3
        assert red.target.num_constraints == 3
        assert red.parameter_target == 3

    def test_equivalence_random(self, rng):
        for _ in range(12):
            g = make_random_graph(rng.randrange(4, 9), 0.5, rng)
            k = rng.randrange(2, 5)
            red = clique_to_csp(g, k)
            red.certify()
            oracle = find_clique_bruteforce(g, k)
            solution = solve_backtracking(red.target)
            assert (oracle is None) == (solution is None)
            if solution is not None:
                clique = red.pull_back(solution)
                assert len(set(clique)) == k
                assert g.is_clique(clique)

    def test_turan_no_instance(self):
        g = turan_graph(9, 2)
        red = clique_to_csp(g, 3)
        assert solve_backtracking(red.target) is None

    def test_distinctness_enforced(self):
        """The adjacency relation has no loops, so slots are distinct."""
        g = Graph(edges=[(0, 1)])
        red = clique_to_csp(g, 2)
        solution = solve_backtracking(red.target)
        assert solution is not None
        values = list(solution.values())
        assert len(set(values)) == 2


class TestCliqueToSpecial:
    def test_k_cap(self, triangle_graph):
        with pytest.raises(ReductionError):
            clique_to_special_csp(triangle_graph, MAX_K + 1)

    def test_certificates(self, triangle_graph):
        red = clique_to_special_csp(triangle_graph, 3)
        red.certify()
        assert red.target.num_variables == 3 + 8
        assert is_special_graph(red.target.primal_graph())
        assert red.parameter_target == 3 + 2**3

    def test_equivalence_with_special_solver(self):
        g, __ = planted_clique_graph(8, 3, p=0.3, seed=11)
        red = clique_to_special_csp(g, 3)
        red.certify()
        solution = solve_special_csp(red.target)
        assert solution is not None
        clique = red.pull_back(solution)
        assert g.is_clique(clique)
        assert len(set(clique)) == 3

    def test_no_instance(self):
        g = turan_graph(8, 2)  # triangle-free
        red = clique_to_special_csp(g, 3)
        assert solve_special_csp(red.target) is None
        assert solve_backtracking(red.target) is None

    def test_path_variables_unconstrained(self):
        """Path constraints allow everything — the dummies only pad the
        parameter, exactly as in the paper's reduction."""
        g = Graph(edges=[(0, 1)])
        red = clique_to_special_csp(g, 2)
        instance = red.target
        path_constraints = [
            c
            for c in instance.constraints
            if all(str(v).startswith("p") for v in c.scope)
        ]
        assert len(path_constraints) == 2**2 - 1
        domain_size = instance.domain_size
        assert all(len(c.relation) == domain_size**2 for c in path_constraints)
