"""Tests for the Clique ↔ IS ↔ VC chain and Definition 5.1."""

import pytest

from repro.errors import ReductionError
from repro.graphs.clique import find_clique_bruteforce
from repro.graphs.graph import Graph
from repro.graphs.independent_set import find_independent_set_bruteforce, is_independent_set
from repro.graphs.vertex_cover import find_vertex_cover_bruteforce, is_vertex_cover
from repro.reductions.parameterized_examples import (
    clique_to_independent_set,
    independent_set_to_vertex_cover,
    is_parameterized,
)

from ..conftest import make_random_graph


class TestCliqueToIS:
    def test_validation(self, triangle_graph):
        with pytest.raises(ReductionError):
            clique_to_independent_set(triangle_graph, -1)

    def test_parameter_preserved(self, triangle_graph):
        red = clique_to_independent_set(triangle_graph, 3)
        red.certify()
        assert red.parameter_target == 3
        assert is_parameterized(red, lambda k: k)

    def test_equivalence(self, rng):
        for __ in range(10):
            g = make_random_graph(7, 0.5, rng)
            for k in (2, 3):
                red = clique_to_independent_set(g, k)
                complement, k2 = red.target
                clique = find_clique_bruteforce(g, k)
                independent = find_independent_set_bruteforce(complement, k2)
                assert (clique is None) == (independent is None)
                if independent is not None:
                    # An IS of the complement is a clique of g.
                    assert g.is_clique(red.pull_back(independent))


class TestISToVC:
    def test_validation(self, triangle_graph):
        with pytest.raises(ReductionError):
            independent_set_to_vertex_cover(triangle_graph, 99)

    def test_not_parameterized(self):
        g = Graph(vertices=range(50))
        red = independent_set_to_vertex_cover(g, 3)
        # k' = 47 blows past any reasonable f(3): Definition 5.1.3 fails.
        assert red.parameter_target == 47
        assert not is_parameterized(red, lambda k: 2**k)

    def test_equivalence(self, rng):
        for __ in range(10):
            g = make_random_graph(6, 0.5, rng)
            for k in (2, 3):
                red = independent_set_to_vertex_cover(g, k)
                __, k_prime = red.target
                independent = find_independent_set_bruteforce(g, k)
                cover = find_vertex_cover_bruteforce(g, k_prime)
                assert (independent is None) == (cover is None)
                if cover is not None:
                    back = red.pull_back(cover)
                    assert is_independent_set(g, back)
                    assert len(back) >= k

    def test_chain_composes(self, rng):
        """Clique → IS → VC end to end on a concrete instance."""
        g = make_random_graph(7, 0.5, rng)
        k = 3
        step1 = clique_to_independent_set(g, k)
        complement, __ = step1.target
        step2 = independent_set_to_vertex_cover(complement, k)
        __, k_prime = step2.target
        clique = find_clique_bruteforce(g, k)
        cover = find_vertex_cover_bruteforce(complement, k_prime)
        assert (clique is None) == (cover is None)
        if cover is not None:
            recovered = step1.pull_back(step2.pull_back(cover))
            assert g.is_clique(recovered)
