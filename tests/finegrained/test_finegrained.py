"""Tests for the fine-grained package: OV, SAT→OV, edit distance."""

import random

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError, ReductionError
from repro.finegrained.edit_distance import edit_distance, edit_distance_banded
from repro.finegrained.orthogonal_vectors import (
    OVInstance,
    are_orthogonal,
    find_orthogonal_pair,
    has_orthogonal_pair,
)
from repro.finegrained.sat_to_ov import MAX_HALF_VARIABLES, sat_to_orthogonal_vectors
from repro.generators.sat_gen import random_ksat
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll


class TestOVInstance:
    def test_dimension_consistency(self):
        with pytest.raises(InvalidInstanceError):
            OVInstance.from_lists([[0, 1]], [[1]])

    def test_boolean_entries(self):
        with pytest.raises(InvalidInstanceError):
            OVInstance.from_lists([[0, 2]], [[1, 0]])

    def test_are_orthogonal(self):
        assert are_orthogonal((1, 0, 1), (0, 1, 0))
        assert not are_orthogonal((1, 0), (1, 1))


class TestFindOrthogonalPair:
    def test_finds_pair(self):
        inst = OVInstance.from_lists([(1, 1), (1, 0)], [(1, 1), (0, 1)])
        pair = find_orthogonal_pair(inst)
        assert pair == ((1, 0), (0, 1))

    def test_no_pair(self):
        inst = OVInstance.from_lists([(1, 1)], [(1, 0), (0, 1)])
        assert find_orthogonal_pair(inst) is None
        assert not has_orthogonal_pair(inst)

    def test_empty_sides(self):
        inst = OVInstance.from_lists([], [(1,)])
        assert find_orthogonal_pair(inst) is None

    def test_counter_counts_pairs(self):
        inst = OVInstance.from_lists([(1,)] * 3, [(1,)] * 4)
        counter = CostCounter()
        find_orthogonal_pair(inst, counter)
        assert counter.total == 12

    def test_matches_bruteforce_definition(self, rng):
        for __ in range(10):
            d = rng.randrange(1, 6)
            left = [tuple(rng.randrange(2) for __ in range(d)) for __ in range(6)]
            right = [tuple(rng.randrange(2) for __ in range(d)) for __ in range(6)]
            inst = OVInstance.from_lists(left, right)
            expected = any(
                are_orthogonal(a, b) for a in left for b in right
            )
            assert has_orthogonal_pair(inst) == expected


class TestSatToOV:
    def test_validation(self):
        with pytest.raises(ReductionError):
            sat_to_orthogonal_vectors(CNF(0))
        with pytest.raises(ReductionError):
            sat_to_orthogonal_vectors(CNF(2 * MAX_HALF_VARIABLES + 2))

    def test_certificates(self):
        formula = random_ksat(6, 12, 3, seed=1)
        red = sat_to_orthogonal_vectors(formula)
        red.certify()
        assert len(red.target.left) == 8
        assert len(red.target.right) == 8
        assert red.target.dimension == 12

    def test_equivalence(self, rng):
        for __ in range(12):
            n = rng.randrange(3, 9)
            formula = random_ksat(n, rng.randrange(2, 5 * n), 3, seed=rng.randrange(10**6))
            red = sat_to_orthogonal_vectors(formula)
            pair = find_orthogonal_pair(red.target)
            sat = solve_dpll(formula) is not None
            assert (pair is not None) == sat
            if pair is not None:
                assert formula.evaluate(red.pull_back(pair))

    def test_unsat_formula(self):
        formula = CNF.from_clauses([[1], [-1], [2, 3]])
        red = sat_to_orthogonal_vectors(formula)
        assert find_orthogonal_pair(red.target) is None


class TestEditDistance:
    def test_base_cases(self):
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "xy") == 2

    def test_known_values(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("abc", "axc") == 1

    def test_symmetry_and_triangle(self, rng):
        for __ in range(10):
            a = "".join(rng.choice("ab") for __ in range(rng.randrange(0, 8)))
            b = "".join(rng.choice("ab") for __ in range(rng.randrange(0, 8)))
            c = "".join(rng.choice("ab") for __ in range(rng.randrange(0, 8)))
            assert edit_distance(a, b) == edit_distance(b, a)
            assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    def test_bounds(self, rng):
        for __ in range(10):
            a = "".join(rng.choice("abc") for __ in range(rng.randrange(1, 9)))
            b = "".join(rng.choice("abc") for __ in range(rng.randrange(1, 9)))
            d = edit_distance(a, b)
            assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


class TestBandedEditDistance:
    def test_rejects_negative_band(self):
        with pytest.raises(InvalidInstanceError):
            edit_distance_banded("a", "b", -1)

    def test_matches_full_dp_within_band(self, rng):
        for __ in range(15):
            a = "".join(rng.choice("ab") for __ in range(rng.randrange(0, 10)))
            b = "".join(rng.choice("ab") for __ in range(rng.randrange(0, 10)))
            exact = edit_distance(a, b)
            for k in (0, 1, 2, 5, 10):
                banded = edit_distance_banded(a, b, k)
                if exact <= k:
                    assert banded == exact
                else:
                    assert banded is None

    def test_length_gap_short_circuits(self):
        assert edit_distance_banded("aaaa", "a", 1) is None

    def test_band_is_cheaper(self):
        a = "ab" * 200
        b = "ab" * 199 + "bb"
        full, banded = CostCounter(), CostCounter()
        edit_distance(a, b, full)
        result = edit_distance_banded(a, b, 4, banded)
        assert result is not None
        assert banded.total < full.total / 10
