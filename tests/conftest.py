"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
from itertools import product

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.graphs.graph import Graph


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def triangle_graph() -> Graph:
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def petersen_graph() -> Graph:
    """The Petersen graph: 3-regular, girth 5, no triangles."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(edges=outer + inner + spokes)


def make_random_graph(n: int, p: float, rng: random.Random) -> Graph:
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def make_random_binary_csp(
    rng: random.Random,
    num_variables: int = 5,
    domain_size: int = 3,
    num_constraints: int = 5,
    tightness: float = 0.5,
) -> CSPInstance:
    variables = [f"v{i}" for i in range(num_variables)]
    domain = list(range(domain_size))
    constraints = []
    for _ in range(num_constraints):
        u, v = rng.sample(variables, 2)
        relation = {
            pair for pair in product(domain, repeat=2) if rng.random() < 1 - tightness
        }
        constraints.append(Constraint((u, v), relation))
    return CSPInstance(variables, domain, constraints)


@pytest.fixture
def small_csp(rng) -> CSPInstance:
    return make_random_binary_csp(rng)
