"""Tests for fractional/integral edge covers — the ρ* machinery (§3)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.hypergraph.covers import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    integral_edge_cover_number,
    is_fractional_cover,
)
from repro.hypergraph.hypergraph import Hypergraph


class TestKnownValues:
    """ρ* values the paper states or that follow directly."""

    def test_triangle_is_three_halves(self):
        assert fractional_edge_cover_number(Hypergraph.triangle()) == pytest.approx(1.5)

    def test_single_edge(self):
        assert fractional_edge_cover_number(Hypergraph(edges=[("a", "b")])) == pytest.approx(1.0)

    def test_even_cycle(self):
        # C4: weight 1/2 per edge won't cover... actually opposite edges
        # with weight 1 each: rho* = 2 for the 4-cycle.
        assert fractional_edge_cover_number(Hypergraph.cycle(4)) == pytest.approx(2.0)

    def test_odd_cycle(self):
        # C5: rho* = 5/2 · (1/2)... the LP optimum for odd cycles is n/2.
        assert fractional_edge_cover_number(Hypergraph.cycle(5)) == pytest.approx(2.5)

    def test_clique_n_over_2(self):
        for n in (3, 4, 5):
            assert fractional_edge_cover_number(
                Hypergraph.clique(n)
            ) == pytest.approx(n / 2)

    def test_star_needs_all_leaves(self):
        assert fractional_edge_cover_number(Hypergraph.star(4)) == pytest.approx(4.0)

    def test_single_big_hyperedge(self):
        h = Hypergraph(edges=[("a", "b", "c", "d", "e")])
        assert fractional_edge_cover_number(h) == pytest.approx(1.0)

    def test_empty_hypergraph(self):
        assert fractional_edge_cover_number(Hypergraph()) == 0.0


class TestCoverValidity:
    def test_returned_weights_are_a_cover(self):
        for h in (Hypergraph.triangle(), Hypergraph.cycle(5), Hypergraph.star(3)):
            cover = fractional_edge_cover(h)
            assert is_fractional_cover(h, cover.weights)
            assert cover.total == pytest.approx(sum(cover.weights), abs=1e-6)

    def test_uncoverable_vertex_rejected(self):
        h = Hypergraph(vertices=["lonely"], edges=[("a", "b")])
        with pytest.raises(InvalidInstanceError):
            fractional_edge_cover(h)

    def test_is_fractional_cover_negative_weight(self):
        h = Hypergraph(edges=[("a", "b")])
        assert not is_fractional_cover(h, [-0.5])

    def test_is_fractional_cover_wrong_length(self):
        h = Hypergraph(edges=[("a", "b")])
        assert not is_fractional_cover(h, [0.5, 0.5])

    def test_is_fractional_cover_undercovered(self):
        h = Hypergraph.triangle()
        assert not is_fractional_cover(h, [0.2, 0.2, 0.2])

    def test_weight_of_accessor(self):
        cover = fractional_edge_cover(Hypergraph(edges=[("a", "b")]))
        assert cover.weight_of(0) == pytest.approx(1.0)


class TestIntegralCover:
    def test_triangle_needs_two_edges(self):
        # Integral relaxation gap: 2 vs 3/2.
        assert integral_edge_cover_number(Hypergraph.triangle()) == 2

    def test_star_needs_all(self):
        assert integral_edge_cover_number(Hypergraph.star(3)) == 3

    def test_single_edge(self):
        assert integral_edge_cover_number(Hypergraph(edges=[("a", "b")])) == 1

    def test_empty(self):
        assert integral_edge_cover_number(Hypergraph()) == 0

    def test_at_least_fractional(self):
        for h in (Hypergraph.triangle(), Hypergraph.cycle(5), Hypergraph.clique(4)):
            assert integral_edge_cover_number(h) >= fractional_edge_cover_number(h) - 1e-9


class TestFractionalVertexCover:
    def test_triangle(self):
        # tau* of the triangle hypergraph: 3 * 1/2.
        assert fractional_vertex_cover_number(Hypergraph.triangle()) == pytest.approx(1.5)

    def test_no_edges(self):
        assert fractional_vertex_cover_number(Hypergraph(vertices=["a"])) == 0.0

    def test_single_edge(self):
        assert fractional_vertex_cover_number(
            Hypergraph(edges=[("a", "b")])
        ) == pytest.approx(1.0)
