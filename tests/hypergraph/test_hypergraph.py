"""Tests for the general hypergraph container."""

import pytest

from repro.errors import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph


class TestConstruction:
    def test_empty(self):
        h = Hypergraph()
        assert h.num_vertices == 0 and h.num_edges == 0

    def test_empty_edge_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Hypergraph(edges=[[]])

    def test_edges_keep_insertion_order(self):
        h = Hypergraph(edges=[("b", "c"), ("a", "b")])
        assert h.edges[0] == frozenset({"b", "c"})
        assert h.edges[1] == frozenset({"a", "b"})

    def test_duplicate_edges_allowed_as_labels(self):
        h = Hypergraph(edges=[("a", "b"), ("a", "b")])
        assert h.num_edges == 2

    def test_add_edge_returns_index(self):
        h = Hypergraph()
        assert h.add_edge(("x",)) == 0
        assert h.add_edge(("x", "y")) == 1


class TestQueries:
    def test_incident_edges(self):
        h = Hypergraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert h.incident_edges("b") == [0, 1]
        assert h.degree("b") == 2
        assert h.degree("d") == 1

    def test_is_cover(self):
        h = Hypergraph(vertices=["x"], edges=[("a", "b")])
        assert not h.is_cover()
        assert h.is_cover(["a", "b"])

    def test_restrict(self):
        h = Hypergraph(edges=[("a", "b", "c"), ("c", "d")])
        r = h.restrict(["a", "b"])
        assert r.num_vertices == 2
        assert r.edges == [frozenset({"a", "b"})]

    def test_restrict_drops_empty_edges(self):
        h = Hypergraph(edges=[("a", "b"), ("c", "d")])
        r = h.restrict(["a", "b"])
        assert r.num_edges == 1


class TestPrimalGraph:
    def test_triangle(self):
        h = Hypergraph.triangle()
        primal = h.primal_graph()
        assert primal.num_vertices == 3
        assert primal.num_edges == 3

    def test_single_hyperedge_gives_clique(self):
        h = Hypergraph(edges=[("a", "b", "c", "d")])
        primal = h.primal_graph()
        assert primal.is_clique(["a", "b", "c", "d"])

    def test_isolated_vertices_kept(self):
        h = Hypergraph(vertices=["z"], edges=[("a", "b")])
        assert h.primal_graph().has_vertex("z")


class TestNamedShapes:
    def test_cycle(self):
        h = Hypergraph.cycle(5)
        assert h.num_vertices == 5 and h.num_edges == 5
        with pytest.raises(InvalidInstanceError):
            Hypergraph.cycle(2)

    def test_clique(self):
        h = Hypergraph.clique(4)
        assert h.num_edges == 6
        with pytest.raises(InvalidInstanceError):
            Hypergraph.clique(1)

    def test_star(self):
        h = Hypergraph.star(3)
        assert h.num_vertices == 4 and h.num_edges == 3
        with pytest.raises(InvalidInstanceError):
            Hypergraph.star(0)
