"""Tests for GYO reduction, α-acyclicity, and join trees."""

import pytest

from repro.errors import InvalidInstanceError
from repro.hypergraph.acyclicity import gyo_reduction, is_alpha_acyclic, join_tree
from repro.hypergraph.hypergraph import Hypergraph


class TestAcyclicity:
    def test_empty(self):
        assert is_alpha_acyclic(Hypergraph())

    def test_single_edge(self):
        assert is_alpha_acyclic(Hypergraph(edges=[("a", "b", "c")]))

    def test_path_is_acyclic(self):
        h = Hypergraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert is_alpha_acyclic(h)

    def test_star_is_acyclic(self):
        assert is_alpha_acyclic(Hypergraph.star(4))

    def test_triangle_is_cyclic(self):
        assert not is_alpha_acyclic(Hypergraph.triangle())

    def test_cycle4_is_cyclic(self):
        assert not is_alpha_acyclic(Hypergraph.cycle(4))

    def test_triangle_plus_cover_edge_is_acyclic(self):
        """Adding the big edge {a,b,c} makes the triangle α-acyclic —
        the classic non-monotonicity of α-acyclicity."""
        h = Hypergraph(
            edges=[("a1", "a2"), ("a1", "a3"), ("a2", "a3"), ("a1", "a2", "a3")]
        )
        assert is_alpha_acyclic(h)

    def test_contained_edges_removed(self):
        h = Hypergraph(edges=[("a", "b", "c"), ("a", "b")])
        eliminated, remaining = gyo_reduction(h)
        assert not remaining
        assert len(eliminated) == 2


class TestJoinTree:
    def test_cyclic_rejected(self):
        with pytest.raises(InvalidInstanceError):
            join_tree(Hypergraph.triangle())

    def test_single_edge_no_links(self):
        assert join_tree(Hypergraph(edges=[("a", "b")])) == []

    def test_path_tree_connected(self):
        h = Hypergraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        links = join_tree(h)
        assert len(links) == 2  # 3 edges -> spanning tree with 2 links

    def test_running_intersection_property(self):
        """For each pair of hyperedges, their shared vertices must appear
        on every node along the tree path between them."""
        h = Hypergraph(
            edges=[("a", "b"), ("b", "c"), ("b", "d"), ("d", "e"), ("a", "b", "c")]
        )
        assert is_alpha_acyclic(h)
        links = join_tree(h)
        edges = h.edges
        # Build adjacency of the join tree.
        adj: dict[int, set[int]] = {i: set() for i in range(len(edges))}
        for child, parent in links:
            adj[child].add(parent)
            adj[parent].add(child)

        def path(i, j):
            stack = [(i, [i])]
            seen = {i}
            while stack:
                node, p = stack.pop()
                if node == j:
                    return p
                for nxt in adj[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, p + [nxt]))
            return None

        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                shared = edges[i] & edges[j]
                if not shared:
                    continue
                p = path(i, j)
                assert p is not None, "join tree must be connected on overlapping edges"
                for node in p:
                    assert shared <= edges[node], (i, j, node)

    def test_star_tree(self):
        links = join_tree(Hypergraph.star(3))
        assert len(links) == 2
