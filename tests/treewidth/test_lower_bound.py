"""Tests for the degeneracy lower bound on treewidth."""

import pytest

from repro.graphs.graph import Graph
from repro.treewidth.exact import treewidth_exact
from repro.treewidth.heuristics import (
    treewidth_lower_bound_degeneracy,
    treewidth_min_fill,
)

from ..conftest import make_random_graph


class TestDegeneracyLowerBound:
    def test_empty_and_trees(self):
        assert treewidth_lower_bound_degeneracy(Graph()) == 0
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        assert treewidth_lower_bound_degeneracy(star) == 1

    def test_clique(self):
        k5 = Graph(edges=[(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert treewidth_lower_bound_degeneracy(k5) == 4

    def test_cycle(self):
        c6 = Graph(edges=[(i, (i + 1) % 6) for i in range(6)])
        assert treewidth_lower_bound_degeneracy(c6) == 2

    def test_petersen(self, petersen_graph):
        # 3-regular: degeneracy 3 <= tw = 4.
        assert treewidth_lower_bound_degeneracy(petersen_graph) == 3

    def test_sandwich_property(self, rng):
        """lower bound <= exact <= heuristic upper bound, always."""
        for __ in range(15):
            g = make_random_graph(rng.randrange(2, 9), 0.4, rng)
            lower = treewidth_lower_bound_degeneracy(g)
            exact, __dec = treewidth_exact(g)
            upper, __dec2 = treewidth_min_fill(g)
            assert lower <= exact <= upper

    def test_certifies_heuristic_when_tight(self):
        """When lower bound == heuristic width, the heuristic is
        provably optimal — no exact run needed."""
        k4 = Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        lower = treewidth_lower_bound_degeneracy(k4)
        upper, __ = treewidth_min_fill(k4)
        assert lower == upper == 3
