"""Tests for elimination-order heuristics."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.treewidth.heuristics import (
    decomposition_from_elimination_order,
    min_degree_order,
    min_fill_order,
    treewidth_min_degree,
    treewidth_min_fill,
)

from ..conftest import make_random_graph


def cycle_graph(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


def grid_graph(rows: int, cols: int) -> Graph:
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
    return g


class TestOrders:
    def test_orders_are_permutations(self, rng):
        g = make_random_graph(8, 0.4, rng)
        for order_fn in (min_degree_order, min_fill_order):
            order = order_fn(g)
            assert sorted(order, key=repr) == sorted(g.vertices, key=repr)

    def test_empty_graph(self):
        assert min_degree_order(Graph()) == []
        assert min_fill_order(Graph()) == []


class TestDecompositionFromOrder:
    def test_bad_order_rejected(self, triangle_graph):
        with pytest.raises(InvalidInstanceError):
            decomposition_from_elimination_order(triangle_graph, [0, 1])

    def test_empty_graph(self):
        dec = decomposition_from_elimination_order(Graph(), [])
        assert dec.width <= 0

    def test_any_order_yields_valid_decomposition(self, rng):
        for _ in range(10):
            g = make_random_graph(rng.randrange(2, 10), 0.4, rng)
            order = list(g.vertices)
            rng.shuffle(order)
            dec = decomposition_from_elimination_order(g, order)
            dec.validate(g)

    def test_disconnected_graph_gives_tree(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        dec = decomposition_from_elimination_order(g, [0, 1, 2, 3])
        dec.validate(g)


class TestHeuristicWidths:
    def test_tree_width_one(self):
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        width, dec = treewidth_min_degree(star)
        assert width == 1
        dec.validate(star)

    def test_cycle_width_two(self):
        for heuristic in (treewidth_min_degree, treewidth_min_fill):
            width, dec = heuristic(cycle_graph(6))
            assert width == 2
            dec.validate(cycle_graph(6))

    def test_clique_width_n_minus_one(self):
        k5 = Graph(edges=[(i, j) for i in range(5) for j in range(i + 1, 5)])
        width, __ = treewidth_min_fill(k5)
        assert width == 4

    def test_grid_3x3(self):
        g = grid_graph(3, 3)
        width, dec = treewidth_min_fill(g)
        assert width == 3  # tw(3x3 grid) = 3; min-fill achieves it
        dec.validate(g)

    def test_heuristics_always_valid(self, rng):
        for _ in range(10):
            g = make_random_graph(rng.randrange(2, 12), 0.35, rng)
            for heuristic in (treewidth_min_degree, treewidth_min_fill):
                width, dec = heuristic(g)
                dec.validate(g)
                assert dec.width == width
