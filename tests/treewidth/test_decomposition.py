"""Tests for tree decomposition validation (Definition 4.1)."""

import pytest

from repro.errors import InvalidDecompositionError
from repro.graphs.graph import Graph
from repro.treewidth.decomposition import TreeDecomposition


def path_graph(n: int) -> Graph:
    return Graph(edges=[(i, i + 1) for i in range(n - 1)])


class TestWidth:
    def test_empty(self):
        assert TreeDecomposition(bags={}).width == -1

    def test_single_bag(self):
        assert TreeDecomposition(bags={0: [1, 2, 3]}).width == 2

    def test_max_over_bags(self):
        dec = TreeDecomposition(bags={0: [1], 1: [1, 2, 3, 4]}, tree_edges=[(0, 1)])
        assert dec.width == 3


class TestValidation:
    def test_valid_path_decomposition(self):
        g = path_graph(4)
        dec = TreeDecomposition(
            bags={0: [0, 1], 1: [1, 2], 2: [2, 3]},
            tree_edges=[(0, 1), (1, 2)],
        )
        dec.validate(g)
        assert dec.is_valid(g)

    def test_missing_vertex_detected(self):
        g = path_graph(3)
        dec = TreeDecomposition(bags={0: [0, 1]}, tree_edges=[])
        with pytest.raises(InvalidDecompositionError, match="not covered"):
            dec.validate(g)

    def test_missing_edge_detected(self):
        g = path_graph(3)
        dec = TreeDecomposition(
            bags={0: [0, 1], 1: [2]}, tree_edges=[(0, 1)]
        )
        with pytest.raises(InvalidDecompositionError, match="in no bag"):
            dec.validate(g)

    def test_disconnected_occurrence_detected(self):
        g = path_graph(3)
        # Vertex 0 occurs in bags 0 and 2 but not the middle bag.
        dec = TreeDecomposition(
            bags={0: [0, 1], 1: [1, 2], 2: [0, 2]},
            tree_edges=[(0, 1), (1, 2)],
        )
        with pytest.raises(InvalidDecompositionError, match="not connected"):
            dec.validate(g)

    def test_non_tree_detected_cycle(self):
        g = path_graph(2)
        dec = TreeDecomposition(
            bags={0: [0, 1], 1: [0, 1], 2: [0, 1]},
            tree_edges=[(0, 1), (1, 2), (2, 0)],
        )
        with pytest.raises(InvalidDecompositionError, match="not a tree"):
            dec.validate(g)

    def test_forest_detected(self):
        g = path_graph(2)
        dec = TreeDecomposition(bags={0: [0, 1], 1: [0]}, tree_edges=[])
        with pytest.raises(InvalidDecompositionError, match="not a tree"):
            dec.validate(g)

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition(bags={0: [1]}, tree_edges=[(0, 99)])

    def test_trivial_decomposition_always_valid(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        dec = TreeDecomposition(bags={0: [0, 1, 2]})
        dec.validate(g)


class TestRootedChildren:
    def test_orientation(self):
        dec = TreeDecomposition(
            bags={0: [0], 1: [1], 2: [2]}, tree_edges=[(0, 1), (1, 2)]
        )
        children = dec.rooted_children(0)
        assert children[0] == [1]
        assert children[1] == [2]
        assert children[2] == []
