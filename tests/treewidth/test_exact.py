"""Tests for exact treewidth (subset DP)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.treewidth.exact import MAX_EXACT_VERTICES, treewidth_exact
from repro.treewidth.heuristics import treewidth_min_fill

from ..conftest import make_random_graph


def cycle_graph(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


class TestKnownWidths:
    def test_empty(self):
        width, __ = treewidth_exact(Graph())
        assert width == -1

    def test_single_vertex(self):
        width, dec = treewidth_exact(Graph(vertices=[0]))
        assert width == 0
        dec.validate(Graph(vertices=[0]))

    def test_single_edge(self):
        g = Graph(edges=[(0, 1)])
        width, dec = treewidth_exact(g)
        assert width == 1
        dec.validate(g)

    def test_tree_is_one(self):
        star = Graph(edges=[(0, i) for i in range(1, 7)])
        assert treewidth_exact(star)[0] == 1

    def test_cycle_is_two(self):
        assert treewidth_exact(cycle_graph(7))[0] == 2

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_clique(self, n):
        kn = Graph(edges=[(i, j) for i in range(n) for j in range(i + 1, n)])
        assert treewidth_exact(kn)[0] == n - 1

    def test_petersen_is_four(self, petersen_graph):
        assert treewidth_exact(petersen_graph)[0] == 4

    def test_grid_2x4(self):
        g = Graph()
        for r in range(2):
            for c in range(4):
                if c + 1 < 4:
                    g.add_edge((r, c), (r, c + 1))
                if r + 1 < 2:
                    g.add_edge((r, c), (r + 1, c))
        assert treewidth_exact(g)[0] == 2

    def test_complete_bipartite(self):
        # tw(K_{t,n}) = min(t, n).
        g = Graph()
        for i in range(2):
            for j in range(5):
                g.add_edge(("L", i), ("R", j))
        assert treewidth_exact(g)[0] == 2

    def test_disconnected(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (3, 4)])
        width, dec = treewidth_exact(g)
        assert width == 2
        dec.validate(g)


class TestAgainstHeuristic:
    def test_exact_never_exceeds_heuristic(self, rng):
        for _ in range(15):
            g = make_random_graph(rng.randrange(2, 9), 0.4, rng)
            exact_width, dec = treewidth_exact(g)
            heuristic_width, __ = treewidth_min_fill(g)
            assert exact_width <= heuristic_width
            dec.validate(g)
            assert dec.width == exact_width

    def test_size_limit(self):
        big = Graph(vertices=range(MAX_EXACT_VERTICES + 1))
        with pytest.raises(InvalidInstanceError):
            treewidth_exact(big)

    def test_matches_networkx_bounds(self, rng):
        nx = pytest.importorskip("networkx")
        from networkx.algorithms.approximation import treewidth_min_fill_in

        for _ in range(10):
            g = make_random_graph(rng.randrange(3, 9), 0.45, rng)
            theirs = nx.Graph()
            theirs.add_nodes_from(g.vertices)
            theirs.add_edges_from(g.edges())
            upper, __ = treewidth_min_fill_in(theirs)
            exact, __ = treewidth_exact(g)
            assert exact <= upper
