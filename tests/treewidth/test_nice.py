"""Tests for nice tree decompositions."""

import pytest

from repro.errors import InvalidDecompositionError
from repro.graphs.graph import Graph
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import treewidth_min_fill
from repro.treewidth.nice import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    NiceNode,
    NiceTreeDecomposition,
    make_nice,
)

from ..conftest import make_random_graph


class TestMakeNice:
    def test_empty(self):
        nice = make_nice(TreeDecomposition(bags={}))
        assert nice.nodes[nice.root].kind == LEAF

    def test_single_bag(self):
        dec = TreeDecomposition(bags={0: [1, 2]})
        nice = make_nice(dec)
        nice.validate()
        assert nice.width == dec.width

    def test_width_preserved(self, rng):
        for _ in range(10):
            g = make_random_graph(rng.randrange(2, 10), 0.4, rng)
            __, dec = treewidth_min_fill(g)
            nice = make_nice(dec)
            nice.validate()
            assert nice.width == dec.width

    def test_root_bag_empty(self, rng):
        g = make_random_graph(6, 0.5, rng)
        __, dec = treewidth_min_fill(g)
        nice = make_nice(dec)
        assert nice.nodes[nice.root].bag == frozenset()

    def test_children_precede_parents(self, rng):
        g = make_random_graph(7, 0.4, rng)
        __, dec = treewidth_min_fill(g)
        nice = make_nice(dec)
        for i, node in enumerate(nice.nodes):
            assert all(c < i for c in node.children)

    def test_introduce_forget_bookkeeping(self, rng):
        """Live copies of a vertex merge at joins: #introduces equals
        #forgets plus #joins whose bag contains the vertex, and every
        vertex is introduced and forgotten at least once."""
        g = make_random_graph(8, 0.4, rng)
        __, dec = treewidth_min_fill(g)
        nice = make_nice(dec)
        from collections import Counter

        introduced: Counter = Counter()
        forgotten: Counter = Counter()
        joined: Counter = Counter()
        for node in nice.nodes:
            if node.kind == INTRODUCE:
                introduced[node.vertex] += 1
            elif node.kind == FORGET:
                forgotten[node.vertex] += 1
            elif node.kind == JOIN:
                for v in node.bag:
                    joined[v] += 1
        for v in g.vertices:
            assert introduced[v] >= 1
            assert forgotten[v] >= 1
            assert introduced[v] == forgotten[v] + joined[v]


class TestValidation:
    def test_bad_leaf(self):
        nice = NiceTreeDecomposition(
            nodes=[NiceNode(LEAF, frozenset({1}))], root=0
        )
        with pytest.raises(InvalidDecompositionError):
            nice.validate()

    def test_bad_introduce(self):
        nodes = [
            NiceNode(LEAF, frozenset()),
            NiceNode(INTRODUCE, frozenset({1, 2}), [0], vertex=1),  # adds 2 vertices
        ]
        with pytest.raises(InvalidDecompositionError):
            NiceTreeDecomposition(nodes=nodes, root=1).validate()

    def test_bad_forget(self):
        nodes = [
            NiceNode(LEAF, frozenset()),
            NiceNode(INTRODUCE, frozenset({1}), [0], vertex=1),
            NiceNode(FORGET, frozenset({1}), [1], vertex=2),  # forgets absent vertex
        ]
        with pytest.raises(InvalidDecompositionError):
            NiceTreeDecomposition(nodes=nodes, root=2).validate()

    def test_bad_join(self):
        nodes = [
            NiceNode(LEAF, frozenset()),
            NiceNode(INTRODUCE, frozenset({1}), [0], vertex=1),
            NiceNode(LEAF, frozenset()),
            NiceNode(JOIN, frozenset({1}), [1, 2]),  # children bags differ
        ]
        with pytest.raises(InvalidDecompositionError):
            NiceTreeDecomposition(nodes=nodes, root=3).validate()

    def test_forward_child_reference(self):
        nodes = [NiceNode(JOIN, frozenset(), [1, 1]), NiceNode(LEAF, frozenset())]
        with pytest.raises(InvalidDecompositionError):
            NiceTreeDecomposition(nodes=nodes, root=0).validate()

    def test_unknown_kind(self):
        nodes = [NiceNode("mystery", frozenset())]
        with pytest.raises(InvalidDecompositionError):
            NiceTreeDecomposition(nodes=nodes, root=0).validate()
