"""Tests for the DPLL solver, cross-checked against enumeration."""

from itertools import product

import pytest

from repro.counting import CostCounter
from repro.errors import BudgetExceededError
from repro.generators.sat_gen import planted_ksat, random_ksat
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLStats, solve_dpll


def satisfiable_by_enumeration(formula: CNF) -> bool:
    variables = sorted(formula.variables())
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        for var in range(1, formula.num_variables + 1):
            assignment.setdefault(var, False)
        if formula.evaluate(assignment):
            return True
    return not formula.clauses


class TestBasics:
    def test_empty_formula(self):
        assert solve_dpll(CNF(0)) == {}

    def test_single_unit(self):
        model = solve_dpll(CNF.from_clauses([[3]]))
        assert model is not None
        assert model[3] is True

    def test_contradiction(self):
        assert solve_dpll(CNF.from_clauses([[1], [-1]])) is None

    def test_model_is_total(self):
        model = solve_dpll(CNF(5, [[1, 2]]))
        assert model is not None
        assert set(model) == {1, 2, 3, 4, 5}

    def test_model_satisfies(self):
        f = CNF.from_clauses([[1, -2, 3], [-1, 2], [-3, -1], [2, 3]])
        model = solve_dpll(f)
        assert model is not None
        assert f.evaluate(model)

    def test_unsat_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1 and p2 both true, but not together.
        f = CNF.from_clauses([[1], [2], [-1, -2]])
        assert solve_dpll(f) is None


class TestAgainstEnumeration:
    def test_random_formulas(self, rng):
        for _ in range(30):
            n = rng.randrange(2, 6)
            m = rng.randrange(1, 10)
            clauses = []
            for _ in range(m):
                width = rng.randrange(1, min(3, n) + 1)
                variables = rng.sample(range(1, n + 1), width)
                clauses.append([v if rng.random() < 0.5 else -v for v in variables])
            f = CNF(n, clauses)
            expected = satisfiable_by_enumeration(f)
            model = solve_dpll(f)
            assert (model is not None) == expected
            if model is not None:
                assert f.evaluate(model)

    @pytest.mark.parametrize("use_up", [True, False])
    @pytest.mark.parametrize("use_pure", [True, False])
    def test_inference_toggles_preserve_correctness(self, rng, use_up, use_pure):
        for _ in range(10):
            f = random_ksat(5, 12, 3, seed=rng.randrange(10**6))
            expected = satisfiable_by_enumeration(f)
            model = solve_dpll(f, use_unit_propagation=use_up, use_pure_literals=use_pure)
            assert (model is not None) == expected


class TestPlanted:
    def test_planted_always_sat(self):
        for seed in range(5):
            f, planted = planted_ksat(8, 30, 3, seed=seed)
            assert f.evaluate(planted)
            model = solve_dpll(f)
            assert model is not None
            assert f.evaluate(model)


class TestStatsAndBudget:
    def test_stats_populated(self):
        f = random_ksat(8, 34, 3, seed=42)
        stats = DPLLStats()
        solve_dpll(f, stats=stats)
        assert stats.decisions + stats.unit_propagations + stats.pure_eliminations > 0

    def test_budget_aborts(self):
        f = random_ksat(12, 51, 3, seed=7)
        counter = CostCounter(budget=3)
        with pytest.raises(BudgetExceededError):
            solve_dpll(f, counter=counter)

    def test_unit_propagation_reduces_decisions(self):
        f = random_ksat(10, 42, 3, seed=11)
        with_up, without_up = DPLLStats(), DPLLStats()
        solve_dpll(f, stats=with_up, use_unit_propagation=True)
        solve_dpll(f, stats=without_up, use_unit_propagation=False)
        assert with_up.decisions <= without_up.decisions
