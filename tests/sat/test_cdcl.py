"""Tests for the CDCL solver, fuzzed against DPLL and enumeration."""

from itertools import product

import pytest

from repro.counting import CostCounter
from repro.errors import BudgetExceededError
from repro.generators.sat_gen import planted_ksat, random_ksat
from repro.sat.cdcl import CDCLStats, solve_cdcl
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll


class TestBasics:
    def test_empty_formula(self):
        assert solve_cdcl(CNF(0)) == {}

    def test_no_clauses(self):
        model = solve_cdcl(CNF(3))
        assert set(model) == {1, 2, 3}

    def test_unit(self):
        model = solve_cdcl(CNF.from_clauses([[2]]))
        assert model[2] is True

    def test_contradiction(self):
        assert solve_cdcl(CNF.from_clauses([[1], [-1]])) is None

    def test_unsat_needs_learning(self):
        # The standard 8-clause unsatisfiable 3-CNF over 3 variables.
        clauses = [
            [a, b, c]
            for a in (1, -1)
            for b in (2, -2)
            for c in (3, -3)
        ]
        assert solve_cdcl(CNF(3, clauses)) is None

    def test_model_is_total_and_satisfying(self):
        f = random_ksat(12, 40, 3, seed=1)
        model = solve_cdcl(f)
        if model is not None:
            assert set(model) == set(range(1, 13))
            assert f.evaluate(model)


class TestAgainstDPLL:
    def test_fuzz(self, rng):
        for __ in range(60):
            n = rng.randrange(1, 8)
            m = rng.randrange(0, 18)
            clauses = []
            for __ in range(m):
                width = rng.randrange(1, min(3, n) + 1)
                variables = rng.sample(range(1, n + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
            f = CNF(n, clauses)
            cdcl = solve_cdcl(f)
            dpll = solve_dpll(f)
            assert (cdcl is None) == (dpll is None), clauses
            if cdcl is not None:
                assert f.evaluate(cdcl)

    def test_planted_large(self):
        f, __ = planted_ksat(40, 160, 3, seed=9)
        model = solve_cdcl(f)
        assert model is not None
        assert f.evaluate(model)

    def test_unsat_at_high_ratio(self):
        # m/n = 8 is far above the threshold: almost surely UNSAT, and
        # DPLL confirms.
        f = random_ksat(14, 112, 3, seed=4)
        assert (solve_cdcl(f) is None) == (solve_dpll(f) is None)


class TestStats:
    def test_stats_populated(self):
        f = random_ksat(20, 85, 3, seed=2)
        stats = CDCLStats()
        solve_cdcl(f, stats=stats)
        assert stats.decisions > 0

    def test_learning_happens_on_hard_unsat(self):
        clauses = [
            [a, b, c] for a in (1, -1) for b in (2, -2) for c in (3, -3)
        ]
        # Pad with extra variables so learning has room.
        f = CNF(6, clauses + [[4, 5, 6]])
        stats = CDCLStats()
        assert solve_cdcl(f, stats=stats) is None
        assert stats.conflicts > 0

    def test_budget(self):
        f = random_ksat(20, 85, 3, seed=3)
        with pytest.raises(BudgetExceededError):
            solve_cdcl(f, counter=CostCounter(budget=2))


class TestColoringWorkload:
    def test_gadget_graph_scales(self):
        """The workload that motivated CDCL here: 3-coloring encodings
        of the Corollary 6.2 reduction solve in well under a second."""
        from repro.reductions.sat_to_coloring import sat_to_3coloring, solve_coloring

        formula, __ = planted_ksat(20, 70, 3, seed=0)
        red = sat_to_3coloring(formula)
        coloring = solve_coloring(red.target)
        assert coloring is not None
        assert formula.evaluate(red.pull_back(coloring))
