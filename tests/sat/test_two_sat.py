"""Tests for the linear-time 2SAT solver (§4)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.generators.sat_gen import random_ksat
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.two_sat import solve_2sat


class TestBasics:
    def test_width_check(self):
        with pytest.raises(InvalidInstanceError):
            solve_2sat(CNF.from_clauses([[1, 2, 3]]))

    def test_empty(self):
        assert solve_2sat(CNF(3)) == {1: False, 2: False, 3: False} or solve_2sat(
            CNF(3)
        ) is not None

    def test_unit_clauses(self):
        model = solve_2sat(CNF.from_clauses([[1], [-2]]))
        assert model is not None
        assert model[1] is True and model[2] is False

    def test_contradiction(self):
        assert solve_2sat(CNF.from_clauses([[1], [-1]])) is None

    def test_implication_chain(self):
        # x1 -> x2 -> x3, x1 true forces all true.
        f = CNF.from_clauses([[1], [-1, 2], [-2, 3]])
        model = solve_2sat(f)
        assert model == {1: True, 2: True, 3: True}

    def test_classic_unsat(self):
        # (x1 ∨ x2) ∧ (x1 ∨ ¬x2) ∧ (¬x1 ∨ x2) ∧ (¬x1 ∨ ¬x2)
        f = CNF.from_clauses([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert solve_2sat(f) is None

    def test_model_satisfies(self):
        f = CNF.from_clauses([[1, 2], [-1, 3], [-3, -2], [2, 3]])
        model = solve_2sat(f)
        assert model is not None
        assert f.evaluate(model)


class TestAgainstDPLL:
    def test_random_2sat(self, rng):
        for _ in range(40):
            n = rng.randrange(2, 9)
            m = rng.randrange(1, 3 * n)
            f = random_ksat(n, m, 2, seed=rng.randrange(10**6))
            fast = solve_2sat(f)
            slow = solve_dpll(f)
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert f.evaluate(fast)
