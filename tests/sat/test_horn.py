"""Tests for Horn satisfiability (minimal-model unit propagation)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.horn import is_horn, solve_horn


class TestRecognition:
    def test_horn_examples(self):
        assert is_horn(CNF.from_clauses([[-1, -2, 3], [-3], [1]]))
        assert is_horn(CNF.from_clauses([[-1, -2]]))
        assert is_horn(CNF(2))

    def test_non_horn(self):
        assert not is_horn(CNF.from_clauses([[1, 2]]))


class TestSolve:
    def test_rejects_non_horn(self):
        with pytest.raises(InvalidInstanceError):
            solve_horn(CNF.from_clauses([[1, 2]]))

    def test_facts_propagate(self):
        # 1, 1->2, 2->3.
        f = CNF.from_clauses([[1], [-1, 2], [-2, 3]])
        model = solve_horn(f)
        assert model == {1: True, 2: True, 3: True}

    def test_minimal_model(self):
        # x3 unconstrained positively: stays False in the minimal model.
        f = CNF.from_clauses([[1], [-1, 2]])
        model = solve_horn(CNF(3, [[1], [-1, 2]]))
        assert model == {1: True, 2: True, 3: False}

    def test_unsat_detected(self):
        # 1, 1->2, and ¬1∨¬2 cannot hold together.
        f = CNF.from_clauses([[1], [-1, 2], [-1, -2]])
        assert solve_horn(f) is None

    def test_all_negative_clause_satisfied_by_default(self):
        f = CNF.from_clauses([[-1, -2]])
        model = solve_horn(f)
        assert model == {1: False, 2: False}

    def test_agrees_with_dpll(self, rng):
        for _ in range(30):
            n = rng.randrange(2, 7)
            clauses = []
            for _ in range(rng.randrange(1, 10)):
                width = rng.randrange(1, min(3, n) + 1)
                variables = rng.sample(range(1, n + 1), width)
                # At most one positive literal.
                lits = [-v for v in variables]
                if rng.random() < 0.6:
                    lits[0] = -lits[0]
                clauses.append(lits)
            f = CNF(n, clauses)
            assert is_horn(f)
            fast = solve_horn(f)
            slow = solve_dpll(f)
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert f.evaluate(fast)

    def test_minimality_property(self, rng):
        """No model can have fewer true variables than the Horn minimal
        model (checked by enumeration on small instances)."""
        from itertools import product

        for _ in range(10):
            n = 4
            clauses = []
            for _ in range(rng.randrange(1, 7)):
                variables = rng.sample(range(1, n + 1), 2)
                lits = [-variables[0], variables[1]] if rng.random() < 0.7 else [-variables[0], -variables[1]]
                clauses.append(lits)
            f = CNF(n, clauses)
            model = solve_horn(f)
            if model is None:
                continue
            for values in product((False, True), repeat=n):
                assignment = dict(zip(range(1, n + 1), values))
                if f.evaluate(assignment):
                    # The minimal model is pointwise below every model.
                    assert all(
                        assignment[v] for v in range(1, n + 1) if model[v]
                    )
