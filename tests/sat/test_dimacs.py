"""Tests for DIMACS CNF parsing and writing."""

import pytest

from repro.errors import InvalidInstanceError
from repro.generators.sat_gen import random_ksat
from repro.sat.cnf import CNF
from repro.sat.dimacs import parse_dimacs, write_dimacs


class TestParse:
    def test_basic(self):
        text = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""
        f = parse_dimacs(text)
        assert f.num_variables == 3
        assert f.num_clauses == 2
        assert frozenset({1, -2}) in f.clauses

    def test_multiline_clause(self):
        f = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
        assert f.clauses == [frozenset({1, -2, 3})]

    def test_multiple_clauses_one_line(self):
        f = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert f.num_clauses == 2

    def test_missing_trailing_zero_tolerated(self):
        f = parse_dimacs("p cnf 2 1\n1 2")
        assert f.num_clauses == 1

    def test_no_problem_line(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("1 2 0\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("p cnf 1 0\np cnf 1 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("p cnf 2 5\n1 0\n")

    def test_bad_token(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_literal_out_of_range(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_malformed_problem_line(self):
        with pytest.raises(InvalidInstanceError):
            parse_dimacs("p sat 2 1\n1 0\n")


class TestWrite:
    def test_round_trip(self):
        for seed in range(5):
            original = random_ksat(8, 20, 3, seed=seed)
            parsed = parse_dimacs(write_dimacs(original))
            assert parsed.num_variables == original.num_variables
            assert sorted(map(sorted, parsed.clauses)) == sorted(
                map(sorted, original.clauses)
            )

    def test_comments_emitted(self):
        text = write_dimacs(CNF(1, [[1]]), comments=["hello"])
        assert text.startswith("c hello\n")

    def test_empty_formula(self):
        text = write_dimacs(CNF(0))
        assert "p cnf 0 0" in text
        assert parse_dimacs(text).num_clauses == 0
