"""Tests for the CNF representation."""

import pytest

from repro.errors import InvalidInstanceError
from repro.sat.cnf import CNF


class TestConstruction:
    def test_empty_formula(self):
        f = CNF(0)
        assert f.num_variables == 0 and f.num_clauses == 0

    def test_negative_variable_count(self):
        with pytest.raises(InvalidInstanceError):
            CNF(-1)

    def test_from_clauses_infers_n(self):
        f = CNF.from_clauses([[1, -5], [2]])
        assert f.num_variables == 5
        assert f.num_clauses == 2

    def test_empty_clause_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CNF(2, [[]])

    def test_zero_literal_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CNF(2, [[0, 1]])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CNF(2, [[3]])

    def test_duplicate_literals_collapse(self):
        f = CNF(1, [[1, 1]])
        assert len(f.clauses[0]) == 1


class TestProperties:
    def test_max_clause_width(self):
        f = CNF.from_clauses([[1], [1, 2], [1, 2, 3]])
        assert f.max_clause_width == 3
        assert f.is_k_sat(3)
        assert not f.is_k_sat(2)

    def test_variables_occurring(self):
        f = CNF(5, [[1, -3]])
        assert f.variables() == {1, 3}


class TestEvaluate:
    def test_satisfying(self):
        f = CNF.from_clauses([[1, 2], [-1, 2]])
        assert f.evaluate({1: True, 2: True})
        assert f.evaluate({1: False, 2: True})

    def test_falsifying(self):
        f = CNF.from_clauses([[1, 2]])
        assert not f.evaluate({1: False, 2: False})

    def test_missing_variable_rejected(self):
        f = CNF.from_clauses([[1, 2]])
        with pytest.raises(InvalidInstanceError):
            f.evaluate({1: False})

    def test_empty_formula_is_true(self):
        assert CNF(3).evaluate({})


class TestSimplified:
    def test_satisfied_clauses_dropped(self):
        f = CNF.from_clauses([[1, 2], [-1, 3]])
        g = f.simplified({1: True})
        assert g is not None
        assert g.num_clauses == 1
        assert g.clauses[0] == frozenset({3})

    def test_conflict_returns_none(self):
        f = CNF.from_clauses([[1]])
        assert f.simplified({1: False}) is None

    def test_untouched_clauses_kept(self):
        f = CNF.from_clauses([[1, 2], [3, 4]])
        g = f.simplified({1: False})
        assert g is not None
        assert g.num_clauses == 2
