"""Stress tests for CDCL: learning-heavy UNSAT families and restarts."""

from itertools import combinations

import pytest

from repro.sat.cdcl import CDCLStats, solve_cdcl
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll


def pigeonhole(pigeons: int, holes: int) -> CNF:
    """PHP(p, h): p pigeons into h holes, no sharing — UNSAT iff p > h.

    Variable (i, j) := pigeon i sits in hole j, numbered i*h + j + 1.
    The classic resolution-hard family; solving it exercises clause
    learning far more than random instances do.
    """
    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses = []
    for i in range(pigeons):
        clauses.append([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1, i2 in combinations(range(pigeons), 2):
            clauses.append([-var(i1, j), -var(i2, j)])
    return CNF(pigeons * holes, clauses)


class TestPigeonhole:
    @pytest.mark.parametrize("pigeons,holes", [(2, 1), (3, 2), (4, 3), (5, 4)])
    def test_unsat_when_too_many_pigeons(self, pigeons, holes):
        stats = CDCLStats()
        assert solve_cdcl(pigeonhole(pigeons, holes), stats=stats) is None
        if pigeons >= 4:
            assert stats.learned_clauses > 0

    @pytest.mark.parametrize("pigeons,holes", [(1, 1), (2, 2), (3, 4)])
    def test_sat_when_enough_holes(self, pigeons, holes):
        formula = pigeonhole(pigeons, holes)
        model = solve_cdcl(formula)
        assert model is not None
        assert formula.evaluate(model)

    def test_agrees_with_dpll_on_php43(self):
        formula = pigeonhole(4, 3)
        assert solve_cdcl(formula) is None
        assert solve_dpll(formula) is None


class TestRestarts:
    def test_restart_path_exercised(self):
        """PHP(6,5) generates enough conflicts to trigger at least one
        restart (threshold 100), and stays correct."""
        stats = CDCLStats()
        assert solve_cdcl(pigeonhole(6, 5), stats=stats) is None
        assert stats.conflicts > 100
        assert stats.restarts >= 1

    def test_backjumps_are_nonchronological(self):
        stats = CDCLStats()
        solve_cdcl(pigeonhole(5, 4), stats=stats)
        # At least one conflict jumped back more than one level.
        assert stats.max_backjump >= 2


class TestWideClauses:
    def test_wide_clause_instances(self, rng):
        """CDCL handles clause widths beyond 3 (general CNF-SAT, the
        SETH's own problem)."""
        for __ in range(10):
            n = rng.randrange(4, 9)
            clauses = []
            for __ in range(rng.randrange(2, 12)):
                width = rng.randrange(1, n + 1)
                variables = rng.sample(range(1, n + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
            formula = CNF(n, clauses)
            cdcl = solve_cdcl(formula)
            dpll = solve_dpll(formula)
            assert (cdcl is None) == (dpll is None)
            if cdcl is not None:
                assert formula.evaluate(cdcl)
