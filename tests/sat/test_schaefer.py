"""Tests for the Schaefer dichotomy classifier (§4)."""

from itertools import product

import pytest

from repro.errors import InvalidInstanceError
from repro.sat.schaefer import (
    BooleanRelation,
    SchaeferClass,
    classify_relation_set,
    is_affine_relation,
    is_bijunctive_relation,
    is_dual_horn_relation,
    is_horn_relation,
    is_one_valid,
    is_zero_valid,
)


def rel(*tuples):
    return BooleanRelation(len(tuples[0]), tuples)


XOR = rel((0, 1), (1, 0))
EQ = rel((0, 0), (1, 1))
OR2 = BooleanRelation.from_clause([1, 2])
IMPL = BooleanRelation.from_clause([-1, 2])
ONE_IN_THREE = rel((1, 0, 0), (0, 1, 0), (0, 0, 1))
NAE = BooleanRelation(
    3, [t for t in product((0, 1), repeat=3) if len(set(t)) > 1]
)
OR3 = BooleanRelation.from_clause([1, 2, 3])


class TestRelationBasics:
    def test_bad_arity(self):
        with pytest.raises(InvalidInstanceError):
            BooleanRelation(0, [])

    def test_bad_tuple_values(self):
        with pytest.raises(InvalidInstanceError):
            BooleanRelation(2, [(0, 2)])

    def test_bad_tuple_length(self):
        with pytest.raises(InvalidInstanceError):
            BooleanRelation(2, [(0, 1, 1)])

    def test_from_clause(self):
        assert len(OR2.tuples) == 3
        assert (0, 0) not in OR2.tuples

    def test_equality_and_hash(self):
        assert XOR == rel((1, 0), (0, 1))
        assert hash(XOR) == hash(rel((1, 0), (0, 1)))
        assert XOR != EQ


class TestClosureTests:
    def test_zero_one_valid(self):
        assert is_zero_valid(EQ) and is_one_valid(EQ)
        assert not is_zero_valid(OR2) and is_one_valid(OR2)
        assert not is_zero_valid(XOR) and not is_one_valid(XOR)

    def test_horn(self):
        assert is_horn_relation(EQ)
        assert is_horn_relation(IMPL)
        assert not is_horn_relation(OR2)  # (1,0) AND (0,1) = (0,0) missing

    def test_dual_horn(self):
        assert is_dual_horn_relation(EQ)
        assert is_dual_horn_relation(OR2)
        assert not is_dual_horn_relation(ONE_IN_THREE)

    def test_bijunctive(self):
        assert is_bijunctive_relation(OR2)
        assert is_bijunctive_relation(XOR)
        assert not is_bijunctive_relation(OR3)

    def test_affine(self):
        assert is_affine_relation(XOR)
        assert is_affine_relation(EQ)
        assert not is_affine_relation(OR2)

    def test_nae_in_no_class(self):
        assert not any(
            test(NAE)
            for test in (
                is_zero_valid,
                is_one_valid,
                is_horn_relation,
                is_dual_horn_relation,
                is_bijunctive_relation,
                is_affine_relation,
            )
        )


class TestClassifier:
    def test_empty_set_tractable(self):
        verdict = classify_relation_set([])
        assert verdict.tractable
        assert len(verdict.witnesses) == 6

    def test_2sat_clauses(self):
        verdict = classify_relation_set([OR2, IMPL, BooleanRelation.from_clause([-1, -2])])
        assert verdict.tractable
        assert SchaeferClass.BIJUNCTIVE in verdict.witnesses

    def test_xor_affine(self):
        verdict = classify_relation_set([XOR, EQ])
        assert verdict.tractable
        assert SchaeferClass.AFFINE in verdict.witnesses

    def test_one_in_three_hard(self):
        assert classify_relation_set([ONE_IN_THREE]).np_hard

    def test_nae_hard(self):
        assert classify_relation_set([NAE]).np_hard

    def test_3sat_hard(self):
        negative3 = BooleanRelation.from_clause([-1, -2, -3])
        assert classify_relation_set([OR3, negative3]).np_hard

    def test_mixed_set_needs_common_class(self):
        # OR2 is dual-Horn/bijunctive/1-valid; XOR is affine/bijunctive:
        # together bijunctive witnesses tractability.
        verdict = classify_relation_set([OR2, XOR])
        assert verdict.tractable
        assert verdict.witnesses == (SchaeferClass.BIJUNCTIVE,)

    def test_incompatible_tractables_hard(self):
        # ONE_IN_THREE alone is hard, so any superset is too.
        verdict = classify_relation_set([XOR, ONE_IN_THREE])
        assert verdict.np_hard


class TestClassifierMatchesSolvers:
    """Relations classified tractable really are solvable by the
    corresponding polynomial algorithm (spot checks)."""

    def test_bijunctive_solved_by_2sat(self):
        from repro.sat.cnf import CNF
        from repro.sat.two_sat import solve_2sat

        f = CNF.from_clauses([[1, 2], [-1, 2], [-2, 3]])
        assert classify_relation_set(
            [BooleanRelation.from_clause(sorted(c)) for c in ([1, 2], [-1, 2], [-2, 3])]
        ).tractable
        assert solve_2sat(f) is not None

    def test_affine_solved_by_gauss(self):
        from repro.sat.affine import solve_affine_system

        assert classify_relation_set([XOR]).tractable
        assert solve_affine_system([([1, 2], 1)], 2) is not None
