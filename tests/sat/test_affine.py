"""Tests for GF(2) affine systems (Schaefer's affine class)."""

from itertools import product

import pytest

from repro.errors import InvalidInstanceError
from repro.sat.affine import solve_affine_system


def check_by_enumeration(equations, n):
    for values in product((False, True), repeat=n):
        assignment = dict(zip(range(1, n + 1), values))
        if all(
            sum(assignment[v] for v in vars_) % 2 == rhs
            for vars_, rhs in equations
        ):
            return assignment
    return None


class TestValidation:
    def test_bad_rhs(self):
        with pytest.raises(InvalidInstanceError):
            solve_affine_system([([1], 2)], 1)

    def test_variable_out_of_range(self):
        with pytest.raises(InvalidInstanceError):
            solve_affine_system([([5], 1)], 2)

    def test_negative_variable_count(self):
        with pytest.raises(InvalidInstanceError):
            solve_affine_system([], -1)


class TestSolve:
    def test_empty_system(self):
        assert solve_affine_system([], 2) == {1: False, 2: False}

    def test_single_forced(self):
        model = solve_affine_system([([1], 1)], 1)
        assert model == {1: True}

    def test_xor_pair(self):
        model = solve_affine_system([([1, 2], 1)], 2)
        assert model is not None
        assert model[1] ^ model[2]

    def test_inconsistent(self):
        assert solve_affine_system([([1, 2], 0), ([1, 2], 1)], 2) is None

    def test_zero_equals_one_inconsistent(self):
        # x1 ⊕ x1 = 1 collapses to 0 = 1.
        assert solve_affine_system([([1, 1], 1)], 1) is None

    def test_chain(self):
        equations = [([1, 2], 1), ([2, 3], 1), ([3, 4], 1), ([1], 1)]
        model = solve_affine_system(equations, 4)
        assert model == {1: True, 2: False, 3: True, 4: False}

    def test_agrees_with_enumeration(self, rng):
        for _ in range(30):
            n = rng.randrange(1, 6)
            equations = []
            for _ in range(rng.randrange(0, 6)):
                width = rng.randrange(1, n + 1)
                variables = rng.sample(range(1, n + 1), width)
                equations.append((variables, rng.randrange(2)))
            model = solve_affine_system(equations, n)
            expected = check_by_enumeration(equations, n)
            assert (model is None) == (expected is None)
            if model is not None:
                assert all(
                    sum(model[v] for v in vars_) % 2 == rhs
                    for vars_, rhs in equations
                )
