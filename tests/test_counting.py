"""Tests for the operation counter and budgets."""

import pytest

from repro.counting import CostCounter, charge
from repro.errors import BudgetExceededError


class TestCostCounter:
    def test_starts_at_zero(self):
        assert CostCounter().total == 0

    def test_charge_accumulates(self):
        c = CostCounter()
        c.charge()
        c.charge(5)
        assert c.total == 6

    def test_budget_enforced(self):
        c = CostCounter(budget=3)
        c.charge(3)
        with pytest.raises(BudgetExceededError):
            c.charge()

    def test_reset_keeps_budget(self):
        c = CostCounter(budget=2)
        c.charge(2)
        c.reset()
        assert c.total == 0
        c.charge(2)  # still fine
        with pytest.raises(BudgetExceededError):
            c.charge()

    def test_module_level_charge_none_is_noop(self):
        charge(None, 100)  # must not raise

    def test_module_level_charge(self):
        c = CostCounter()
        charge(c, 7)
        assert c.total == 7

    def test_repr(self):
        assert "total=0" in repr(CostCounter())
