"""Shared helpers: build synthetic package trees from fixture snippets."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import analyze_project, load_project

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def make_project(tmp_path):
    """Install fixture snippets at chosen tree locations and parse them.

    Usage: ``make_project({"reductions/fixture.py": "rep001_fail.py"})``
    builds ``<tmp>/repro/reductions/fixture.py`` from the named fixture
    (plus the ``__init__.py`` chain) and returns the loaded project.
    """

    def build(layout: dict[str, str]):
        root = tmp_path / "repro"
        root.mkdir(exist_ok=True)
        (root / "__init__.py").write_text("")
        for destination, fixture_name in layout.items():
            target = root / destination
            package_dir = target.parent
            package_dir.mkdir(parents=True, exist_ok=True)
            current = package_dir
            while current != root:
                init = current / "__init__.py"
                if not init.exists():
                    init.write_text("")
                current = current.parent
            shutil.copyfile(FIXTURES / fixture_name, target)
        return load_project(root)

    return build


@pytest.fixture
def findings_for(make_project):
    """Build a tree, run one rule, and return its findings."""

    def run(layout: dict[str, str], rule_code: str):
        project = make_project(layout)
        return analyze_project(project, [rule_code])

    return run
