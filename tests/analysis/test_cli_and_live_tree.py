"""CLI behavior and the tier-1 contract: the live tree stays clean.

The live-tree test is the enforcement point ISSUE 1 asks for — if a
reduction loses its certificates or a registry path dangles, this test
fails even before CI runs the linter directly.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import repro
from repro.analysis import load_project, run_analysis
from repro.analysis.__main__ import main
from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.rules.rep002_registry import discover_experiment_ids

PACKAGE_ROOT = Path(repro.__file__).parent
FIXTURES = Path(__file__).parent / "fixtures"


class TestLiveTree:
    def test_source_tree_clean_modulo_baseline(self):
        report = run_analysis(baseline=Baseline.load(DEFAULT_BASELINE))
        assert report.modules_checked > 100
        locations = [f"{f.location} {f.message}" for f in report.new_findings]
        assert report.new_findings == [], "\n".join(locations)
        assert report.stale_baseline == [], (
            "baseline lists violations that no longer exist; prune it: "
            f"{report.stale_baseline}"
        )

    def test_every_lower_bound_path_resolves(self):
        # The REP002 acceptance criterion, asserted directly: every
        # reduction_module/experiment in complexity/bounds.py resolves.
        from repro.complexity.bounds import all_lower_bounds

        project = load_project()
        known_ids = discover_experiment_ids(project)
        for bound in all_lower_bounds():
            if bound.reduction_module:
                assert project.has_module(bound.reduction_module), bound.key
            if bound.experiment:
                assert bound.experiment in known_ids, bound.key

    def test_experiment_ids_discovered_statically(self):
        ids = discover_experiment_ids(load_project())
        assert "E2-agm-tight" in ids
        assert "E13-hypotheses" in ids
        assert len(ids) >= 18


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        assert main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out

    def test_unknown_rule_is_a_clean_cli_error(self, capsys):
        assert main(["--rule", "REP999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule 'REP999'" in err
        assert "Traceback" not in err

    def test_bad_root_is_a_clean_cli_error(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path / "missing")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_violation_makes_exit_nonzero(self, tmp_path, capsys):
        root = tmp_path / "repro"
        shutil.copytree(PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__"))
        bad = root / "reductions" / "freshly_broken.py"
        bad.write_text(FIXTURES.joinpath("rep001_fail.py").read_text())
        code = main(["--root", str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "freshly_broken" in out

    def test_rule_selection_limits_scope(self, tmp_path, capsys):
        root = tmp_path / "repro"
        shutil.copytree(PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__"))
        bad = root / "reductions" / "freshly_broken.py"
        bad.write_text(FIXTURES.joinpath("rep001_fail.py").read_text())
        # only REP002 runs: the REP001 violation is invisible
        assert main(["--root", str(root), "--rule", "REP002"]) == 0
        capsys.readouterr()

    def test_update_baseline_grandfathers_violations(self, tmp_path, capsys):
        root = tmp_path / "repro"
        shutil.copytree(PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__"))
        bad = root / "reductions" / "freshly_broken.py"
        bad.write_text(FIXTURES.joinpath("rep001_fail.py").read_text())
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                ["--root", str(root), "--baseline", str(baseline_path), "--update-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["--root", str(root), "--baseline", str(baseline_path)]) == 0
        )
        capsys.readouterr()
        # without the baseline the same tree fails again
        assert main(["--root", str(root), "--no-baseline"]) == 1
        capsys.readouterr()


class TestSemanticCli:
    def test_semantic_flag_runs_only_semantic_rules(self, capsys):
        assert main(["--semantic", "--no-semantic-cache"]) == 0
        out = capsys.readouterr().out
        assert "rules: REP008, REP009, REP010, REP011" in out

    def test_graph_dump_is_json(self, capsys):
        assert main(["--graph", "--no-semantic-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "call_graph" in payload
        assert "taint" in payload
        assert "import_graph" in payload
        assert payload["claim_failures"] == {}

    def test_sarif_format_matches_file_output(self, tmp_path, capsys):
        target = tmp_path / "lint.sarif"
        args = ["--format", "sarif", "--sarif", str(target), "--no-semantic-cache"]
        assert main(args) == 0
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(target.read_text())
        assert printed == on_disk
        assert on_disk["version"] == "2.1.0"
        run = on_disk["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["tool"]["driver"]["rules"]) == 12
        # clean tree: baselined findings are deliberately omitted
        assert run["results"] == []

    def test_sarif_results_carry_fingerprints(self, tmp_path, capsys):
        root = tmp_path / "repro"
        shutil.copytree(PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__"))
        bad = root / "reductions" / "freshly_broken.py"
        bad.write_text(FIXTURES.joinpath("rep001_fail.py").read_text())
        target = tmp_path / "lint.sarif"
        args = [
            "--root", str(root),
            "--format", "sarif",
            "--sarif", str(target),
            "--no-semantic-cache",
        ]
        assert main(args) == 1
        capsys.readouterr()
        results = json.loads(target.read_text())["runs"][0]["results"]
        assert results
        for result in results:
            assert result["partialFingerprints"]["reproLintFingerprint/v1"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"

    def test_warm_cache_reanalyzes_nothing(self, tmp_path, capsys):
        cache = tmp_path / "semantic-cache.json"
        assert main(["--semantic-cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["--semantic-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "0 computed, 0 module(s) re-analyzed" in out
