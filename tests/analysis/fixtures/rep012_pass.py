"""Fixture: a well-formed semiring registration (REP012 passes)."""


class Semiring:
    def __init__(self, **kwargs):
        pass


def register_semiring(instance):
    return instance


TROPICAL = register_semiring(
    Semiring(
        name="tropical",
        zero=float("inf"),
        one=0.0,
        add=min,
        mul=lambda a, b: a + b,
        idempotent_add=True,
        absorptive=True,
        laws="repro/fixture_laws.py",
    )
)
