"""REP005 passing fixture: the entry point documents its cost."""


def solve_fixture(instance):
    """Decide the fixture problem.

    Complexity: O(n) — one pass over the instance.
    """
    return list(instance)


def _solve_helper(instance):
    # private helpers are exempt, with or without docstrings
    return instance
