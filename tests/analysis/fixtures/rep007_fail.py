"""REP007 failing fixture: four broken transform registrations.

A dynamic name, a duplicate name, missing domain endpoints, and an
empty guarantee schema.
"""


def transform(**kwargs):
    def decorate(fn):
        return fn

    return decorate


SAT = "sat"
CSP = "csp"
DYNAMIC = "computed→name"


@transform(
    name=DYNAMIC,  # not a literal
    source=SAT,
    target=CSP,
    guarantees=("|V| == n",),
)
def dynamic_name(formula):
    return formula


@transform(
    name="fixture→csp",
    source=SAT,
    target=CSP,
    guarantees=("|V| == n",),
)
def first_registration(formula):
    return formula


@transform(
    name="fixture→csp",  # duplicate of the one above
    source=SAT,
    target=CSP,
    guarantees=("|V| == n",),
)
def second_registration(formula):
    return formula


@transform(
    name="no→endpoints",  # missing source= and target=
    guarantees=("|V| == n",),
)
def no_endpoints(formula):
    return formula


@transform(
    name="no→schema",
    source=SAT,
    target=CSP,
    guarantees=(),  # empty schema
)
def no_schema(formula):
    return formula
