"""Fixture: broken semiring registrations (REP012 fires).

Three violations: a computed name with no declared zero/one and no law
fixture; a literal name whose laws= path does not exist.
"""


class Semiring:
    def __init__(self, **kwargs):
        pass


def register_semiring(instance):
    return instance


def _make_name():
    return "dyn" + "amic"


DYNAMIC = register_semiring(
    Semiring(
        name=_make_name(),
        add=min,
        mul=lambda a, b: a + b,
        laws="repro/fixture_laws.py",
    )
)

DANGLING = register_semiring(
    Semiring(
        name="dangling",
        zero=0,
        one=1,
        add=lambda a, b: a + b,
        mul=lambda a, b: a * b,
        laws="tests/never/exists.py",
    )
)
