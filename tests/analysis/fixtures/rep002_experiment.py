"""Companion fixture: declares the experiment id the pass case cites.

Installed as ``repro/experiments/exp_fixture.py``.
"""


def run(result_cls=dict):
    return result_cls(experiment_id="E1-fixture")
