"""REP003 passing fixture: narrow handlers, ReproError-derived class."""

from repro.errors import ReproError


class FixtureError(ReproError):
    """Derives from the library root, as the contract requires."""


def careful(work):
    try:
        return work()
    except FixtureError:
        raise FixtureError("fixture failed") from None
