"""Fixture: stands in for a semiring law-check property suite."""
