"""REP002 derivation fixture: one resolving chain, one dangling name.

Installed as ``repro/complexity/bounds.py``; the companion transform
module registers ``fixture→csp``, so the first ``derived`` call
resolves and the second does not.
"""


class LowerBound:
    def __init__(self, **kwargs):
        pass


def derived(hypothesis, *chain):
    return (hypothesis, chain)


GOOD = LowerBound(
    key="fixture-good",
    derivation=derived("eth", "fixture→csp"),
)

BAD = LowerBound(
    key="fixture-bad",
    derivation=derived("eth", "never→registered"),
)
