"""REP004 failing fixture: module-global and unseeded RNG use."""

import random

import numpy as np

NOISE = random.random()


def shuffled(items):
    result = list(items)
    random.shuffle(result)
    return result


def noisy_matrix(n):
    return np.random.rand(n, n)


def unseeded_generator():
    return np.random.default_rng()
