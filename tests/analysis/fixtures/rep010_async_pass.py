"""Async handlers that keep blocking work in sync helpers."""

import asyncio
from pathlib import Path


async def handle(request):
    await asyncio.sleep(0.01)
    return snapshot()


def snapshot():
    return Path("snapshot.json").read_text()


async def drain(queue):
    while not queue.empty():
        item = await queue.get()
        record(item)


def record(item):
    return repr(item)
