"""REP001 failing fixture: no certificate, no solution back-map."""

from repro.reductions.base import CertifiedReduction


def bad_reduction(source):
    return CertifiedReduction(
        name="fixture-bad",
        source=source,
        target=[source],
    )
