"""REP005 failing fixture: verb-named entry point, no Complexity field."""


def count_fixture(instance):
    """Count the fixture's answers (cost deliberately undocumented)."""
    return len(instance)


def hash_join_fixture(left, right):
    """Not an entry point: 'hash' is not the verb 'has' (word boundary)."""
    return [(l, r) for l in left for r in right]
