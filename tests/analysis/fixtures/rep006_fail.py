"""REP006 failing fixture: index construction inside solver loops."""


def solve_fixture(query, database):
    answers = []
    for row in query:
        index = build_hash_trie(database, (0, 1))  # rebuilt per row
        answers.append(index.get(row))
    while answers:
        trie = SortedTrieIndex(database.relation("R"), (0,))
        answers.pop()
        if trie:
            break
    return answers
