"""REP004 passing fixture: randomness flows through an injected seed."""

import random


def shuffled(items, seed: int | random.Random = 0):
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    result = list(items)
    rng.shuffle(result)
    return result
