"""REP001 passing fixture: certificates attached, back-map provided."""

from repro.reductions.base import CertifiedReduction


def good_reduction(source):
    target = [source]

    def back(solution):
        return solution

    reduction = CertifiedReduction(
        name="fixture-good",
        source=source,
        target=target,
        map_solution_back=back,
    )
    reduction.add_certificate("size is linear", len(target) == 1, "")
    return reduction
