"""REP007 passing fixture: a fully declared transform registration."""


def transform(**kwargs):
    def decorate(fn):
        return fn

    return decorate


SAT = "sat"
CSP = "csp"


@transform(
    name="fixture→csp",
    source=SAT,
    target=CSP,
    guarantees=("|V| == n",),
)
def fixture_to_csp(formula):
    return formula
