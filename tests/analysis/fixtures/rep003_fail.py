"""REP003 failing fixture: bare except, broad except, rogue class,
builtin raise."""


class RogueError(ValueError):
    """Named like a library error but outside the ReproError tree."""


def swallow_everything(work):
    try:
        return work()
    except:  # noqa: E722 - deliberately bare, the rule must flag it
        return None


def swallow_most(work):
    try:
        return work()
    except Exception:
        return None


def blow_up():
    raise Exception("untyped failure")
