"""REP006 passing fixture: indexes built once, outside the loops."""


def solve_fixture(query, database):
    index = build_hash_trie(database, (0, 1))  # hoisted: built once
    answers = []
    for row in query:
        answers.append(index.get(row))
    return answers


def solve_cached(query, database):
    for row in query:
        # memoized accessor, not a build — allowed inside the loop
        trie = database.kernels.hash_trie(row, (0,))
        if trie:
            return True
    return False


def build_hash_trie(database, positions):
    # the builder's own definition is never flagged, only looped calls
    return {}
