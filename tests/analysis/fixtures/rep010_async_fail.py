"""Async request handlers that block the event loop (every pattern)."""

import subprocess
import time
from pathlib import Path


async def handle(request):
    time.sleep(0.1)
    handle_file = open("payload.json")
    snapshot_path = Path("snapshot.json")
    snapshot = snapshot_path.read_text()
    return handle_file, snapshot


async def launch(pool, item):
    future = pool.submit(item)
    return future.result()


async def shell():
    return subprocess.run(["ls"])
