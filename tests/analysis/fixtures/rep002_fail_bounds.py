"""REP002 failing fixture: dangling module path and unknown experiment."""


class LowerBound:
    def __init__(self, **kwargs):
        pass


BOUND = LowerBound(
    key="fixture",
    reduction_module="repro.reductions.does_not_exist",
    experiment="E99-never-declared",
)
