"""REP002 passing fixture: paths resolve, experiment id is declared.

Installed as ``repro/complexity/bounds.py`` in the synthetic tree; the
matching experiment module declares ``experiment_id="E1-fixture"``.
"""


class LowerBound:
    def __init__(self, **kwargs):
        pass


BOUND = LowerBound(
    key="fixture",
    reduction_module="repro.experiments.exp_fixture",
    experiment="E1-fixture",
)
