"""Fingerprints, ordinals, baseline round-trips, and renderers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    Severity,
    assign_ordinals,
    render_human,
    render_json,
)


def finding(code="REP001", path="repro/x.py", line=10, context="f", message="msg"):
    return Finding(
        code=code,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message=message,
        context=context,
    )


class TestFingerprints:
    def test_fingerprint_excludes_line_number(self):
        a = finding(line=10)
        b = finding(line=99)
        assert a.fingerprint == b.fingerprint

    def test_duplicate_contexts_get_ordinals(self):
        first = finding(line=5)
        second = finding(line=8)
        unique = assign_ordinals([first, second])
        assert len({f.fingerprint for f in unique}) == 2
        assert [f.ordinal for f in unique] == [0, 1]

    def test_ordinals_follow_source_order(self):
        late, early = finding(line=50), finding(line=2)
        unique = assign_ordinals([late, early])
        assert [(f.line, f.ordinal) for f in unique] == [(2, 0), (50, 1)]


class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_round_trip(self, tmp_path):
        findings = [finding(), finding(code="REP003", context="g")]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert set(loaded.entries) == {f.fingerprint for f in findings}

    def test_split_new_baselined_stale(self):
        known = finding(context="known")
        fresh = finding(context="fresh")
        baseline = Baseline.from_findings([known, finding(context="gone")])
        new, baselined, stale = baseline.split([known, fresh])
        assert [f.context for f in new] == ["fresh"]
        assert [f.context for f in baselined] == ["known"]
        assert stale == [finding(context="gone").fingerprint]

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)


class TestRenderers:
    def report(self):
        return AnalysisReport(
            new_findings=[finding(message="something rotted")],
            baselined=[finding(context="old")],
            stale_baseline=["REP009:gone.py:x"],
            modules_checked=7,
            rules_run=("REP001",),
        )

    def test_human_includes_location_and_summary(self):
        text = render_human(self.report())
        assert "repro/x.py:10" in text
        assert "something rotted" in text
        assert "1 new finding(s), 1 baselined" in text
        assert "stale baseline" in text

    def test_human_clean_run_says_ok(self):
        text = render_human(
            AnalysisReport(modules_checked=3, rules_run=("REP001",))
        )
        assert text.endswith("OK")

    def test_json_is_parseable_and_complete(self):
        payload = json.loads(render_json(self.report()))
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["exit_code"] == 1
        assert payload["findings"][0]["fingerprint"] == finding().fingerprint
        assert payload["stale_baseline"] == ["REP009:gone.py:x"]

    def test_exit_code_gates_on_new_findings_only(self):
        clean = AnalysisReport(baselined=[finding()])
        assert clean.exit_code == 0
        dirty = AnalysisReport(new_findings=[finding()])
        assert dirty.exit_code == 1
