"""Inline-source project builder for the semantic test suite.

Unlike the per-rule fixtures (which copy named snippet files), the
semantic tests build whole multi-module trees whose *shape* is the
point — import chains, class hierarchies, registries — so sources are
written inline where the assertions can see them.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_project, load_project
from repro.analysis.semantic import semantic_analysis


@pytest.fixture
def semantic_project(tmp_path):
    """Build ``<tmp>/repro/...`` from ``{relative path: source}`` and
    return the loaded project. ``__init__.py`` chains are created
    automatically; sources are dedented."""

    def build(files: dict[str, str]):
        root = tmp_path / "repro"
        root.mkdir(exist_ok=True)
        init = root / "__init__.py"
        if not init.exists():
            init.write_text("")
        for relative, source in files.items():
            target = root / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            current = target.parent
            while current != root:
                chain_init = current / "__init__.py"
                if not chain_init.exists():
                    chain_init.write_text("")
                current = current.parent
            target.write_text(textwrap.dedent(source))
        return load_project(root)

    return build


@pytest.fixture
def analysis_for(semantic_project):
    """Build a tree and return its :class:`SemanticAnalysis` (no disk
    cache — each test tree is fresh)."""

    def run(files: dict[str, str]):
        return semantic_analysis(semantic_project(files))

    return run


@pytest.fixture
def semantic_findings(semantic_project):
    """Build a tree, run one semantic rule, and return its findings."""

    def run(files: dict[str, str], rule_code: str):
        return analyze_project(semantic_project(files), [rule_code])

    return run
