"""The semantic acceptance criteria, asserted against the live tree:
REP008–REP011 are clean, every E1–E20 runner resolves and is
deterministic, and ≥90% of Complexity: claims parse."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_project, load_project
from repro.analysis.rules import SEMANTIC_RULES
from repro.analysis.semantic import semantic_analysis


@pytest.fixture(scope="module")
def live():
    project = load_project()
    return project, semantic_analysis(project)


class TestLiveTree:
    def test_semantic_rules_clean(self, live):
        project, _ = live
        findings = analyze_project(project, list(SEMANTIC_RULES))
        locations = [f"{f.location} {f.message}" for f in findings]
        assert findings == [], "\n".join(locations)

    def test_all_twenty_two_experiment_entry_points_resolve_and_are_clean(
        self, live
    ):
        _, analysis = live
        entries = analysis.experiment_entry_points()
        assert sorted(entries) == sorted(f"E{i}" for i in range(1, 23))
        for key, (_module, runners) in sorted(entries.items()):
            assert runners, f"{key} has no resolvable runner"
            for node_id in runners:
                assert not analysis.taint.is_tainted(node_id), (
                    f"{key} runner {node_id}: "
                    f"{analysis.taint.describe(node_id)}"
                )

    def test_complexity_claims_parse_ratio(self, live):
        _, analysis = live
        assert analysis.claims.failures == {}
        assert len(analysis.claims.parsed) >= 40
        assert analysis.claims.parse_ratio >= 0.90  # the ISSUE floor

    def test_pool_entry_families_are_runner_and_service_executor(self, live):
        # Two sanctioned process-pool families: the parallel experiment
        # runner and the sharded service executor's worker protocol.
        _, analysis = live
        entries = analysis.call_graph.pool_entry_points
        assert entries
        for node_id in entries:
            assert node_id.startswith(
                ("repro.observability.", "repro.service.executor:")
            ), node_id
        assert any(
            node_id.startswith("repro.service.executor:") for node_id in entries
        ), "run_in_executor dispatch targets should register as pool entries"

    def test_graph_payload_is_json_ready(self, live):
        import json

        from repro.analysis.semantic.engine import graph_payload

        _, analysis = live
        payload = json.loads(json.dumps(graph_payload(analysis)))
        assert payload["modules"]
        assert payload["cache"]["modules_total"] == len(payload["modules"])
        assert payload["claim_failures"] == {}
