"""REP008: transitive determinism taint over the call graph."""

from __future__ import annotations


class TestSolverEntryPoints:
    def test_direct_rng_call_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "graphs/solve.py": """
                    import random

                    def solve_all(g):
                        random.shuffle(g)
                        return g
                """,
            },
            "REP008",
        )
        assert [f.code for f in findings] == ["REP008"]
        assert "rng" in findings[0].message
        assert findings[0].context == "solve_all"

    def test_transitive_taint_carries_witness_chain(self, semantic_findings):
        findings = semantic_findings(
            {
                "util/jitter.py": """
                    import random

                    def jitter(xs):
                        random.shuffle(xs)
                        return xs
                """,
                "graphs/solve.py": """
                    from repro.util.jitter import jitter

                    def solve_all(g):
                        return jitter(g)
                """,
            },
            "REP008",
        )
        # Only the solver entry point is flagged (jitter lives outside
        # the algorithm subpackages) and the witness names the source.
        assert [f.context for f in findings] == ["solve_all"]
        assert "->" in findings[0].message
        assert "jitter" in findings[0].message

    def test_set_order_iteration_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "graphs/solve.py": """
                    def solve_all(edges):
                        out = []
                        for v in set(edges):
                            out.append(v)
                        return out
                """,
            },
            "REP008",
        )
        assert [f.code for f in findings] == ["REP008"]
        assert "set-order" in findings[0].message

    def test_seeded_local_rng_is_clean(self, semantic_findings):
        findings = semantic_findings(
            {
                "graphs/solve.py": """
                    import random

                    def solve_all(g, seed):
                        rng = random.Random(seed)
                        order = sorted(g)
                        rng.shuffle(order)
                        return order
                """,
            },
            "REP008",
        )
        assert findings == []

    def test_private_helpers_are_not_entry_points(self, semantic_findings):
        findings = semantic_findings(
            {
                "graphs/solve.py": """
                    import random

                    def _unused_helper(g):
                        random.shuffle(g)
                        return g
                """,
            },
            "REP008",
        )
        assert findings == []


class TestTimingBarriers:
    def test_sanctioned_module_absorbs_wall_clock(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/tracing.py": """
                    import time

                    def span_start():
                        return time.perf_counter()
                """,
                "graphs/solve.py": """
                    from repro.observability.tracing import span_start

                    def solve_all(g):
                        span_start()
                        return sorted(g)
                """,
            },
            "REP008",
        )
        assert findings == []

    def test_unsanctioned_wall_clock_still_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "util/clock.py": """
                    import time

                    def stamp():
                        return time.perf_counter()
                """,
                "graphs/solve.py": """
                    from repro.util.clock import stamp

                    def solve_all(g):
                        stamp()
                        return sorted(g)
                """,
            },
            "REP008",
        )
        assert [f.context for f in findings] == ["solve_all"]
        assert "wall-clock" in findings[0].message

    def test_barrier_does_not_launder_rng(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/tracing.py": """
                    import random

                    def span_id():
                        return random.random()
                """,
                "graphs/solve.py": """
                    from repro.observability.tracing import span_id

                    def solve_all(g):
                        span_id()
                        return sorted(g)
                """,
            },
            "REP008",
        )
        assert [f.context for f in findings] == ["solve_all"]
        assert "rng" in findings[0].message


class TestExperimentRunners:
    def test_tainted_runner_flagged_with_experiment_key(self, semantic_findings):
        findings = semantic_findings(
            {
                "experiments/exp_demo.py": """
                    import random

                    def run(spec):
                        return {"noise": random.random()}
                """,
                "experiments/__main__.py": """
                    from . import exp_demo

                    class ExperimentSpec:
                        def __init__(self, key, runners):
                            self.key = key
                            self.runners = runners

                    SPECS = (
                        ExperimentSpec("E1", (exp_demo.run,)),
                    )
                """,
            },
            "REP008",
        )
        assert [f.code for f in findings] == ["REP008"]
        assert "experiment E1 runner" in findings[0].message
        assert findings[0].context == "run"

    def test_clean_runner_passes(self, semantic_findings):
        findings = semantic_findings(
            {
                "experiments/exp_demo.py": """
                    def run(spec):
                        return {"value": len(spec)}
                """,
                "experiments/__main__.py": """
                    from . import exp_demo

                    class ExperimentSpec:
                        def __init__(self, key, runners):
                            self.key = key
                            self.runners = runners

                    SPECS = (
                        ExperimentSpec("E1", (exp_demo.run,)),
                    )
                """,
            },
            "REP008",
        )
        assert findings == []
