"""Complexity-claim parsing (budgets) and the REP009 skeleton check."""

from __future__ import annotations

import math

import pytest

from repro.analysis.semantic.claims import (
    SKELETON_SLACK,
    UNBOUNDED,
    ClaimParseError,
    parse_claim,
)


class TestParseClaim:
    @pytest.mark.parametrize(
        ("text", "budget"),
        [
            ("O(1)", 0.0),
            ("O(n)", 1.0),
            ("O(n log n)", 2.0),
            ("O(n · m)", 2.0),
            ("O(n²)", 2.0),
            ("O(n^3)", 3.0),
            ("O(m^{3/2})", 2.0),
            ("O(n^ω)", 3.0),
            ("O(|V| + |E|)", 1.0),
            ("O(‖F‖)", 2.0),
            ("O((|L| + |R|) log |R|)", 2.0),
        ],
    )
    def test_finite_budgets(self, text, budget):
        claim = parse_claim(text)
        assert claim.bounded
        assert claim.budget == budget

    @pytest.mark.parametrize(
        "text",
        [
            "O(n^k · k²)",  # symbolic exponent: parameterized blow-up
            "O(2^n · ‖F‖)",  # exponential base
            "O(k!)",  # factorial
            "exponential worst case",  # prose escape hatch
            "O(n) delay per answer",  # output-sensitive: depth-exempt
            "O(n²) amortized",  # amortized: depth-exempt
        ],
    )
    def test_unbounded_budgets(self, text):
        claim = parse_claim(text)
        assert not claim.bounded
        assert claim.budget == UNBOUNDED

    def test_sum_takes_max_product_takes_sum(self):
        assert parse_claim("O(n·m + log n)").budget == 2.0
        assert parse_claim("O(n + n·m·k)").budget == 3.0

    @pytest.mark.parametrize(
        "text",
        [
            "roughly quadratic, probably",  # no O(...), no escape
            "O(n",  # unbalanced
            "O()",  # empty body
        ],
    )
    def test_rejects_off_grammar_claims(self, text):
        with pytest.raises(ClaimParseError):
            parse_claim(text)

    def test_claim_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(ClaimParseError, ReproError)


SOLVER_TEMPLATE = '''
def solve_fixture(items):
    """Demo solver.

    Complexity: {claim}
    """
{body}
'''

TRIPLE_LOOP = """\
    out = []
    for a in items:
        for b in items:
            for c in items:
                out.append((a, b, c))
    return out
"""


class TestRep009:
    def test_gross_mismatch_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "sat/fixture.py": SOLVER_TEMPLATE.format(
                    claim="O(n)", body=TRIPLE_LOOP
                )
            },
            "REP009",
        )
        assert [f.code for f in findings] == ["REP009"]
        assert "skeleton" in findings[0].message
        assert findings[0].context == "solve_fixture"

    def test_matching_claim_passes(self, semantic_findings):
        findings = semantic_findings(
            {
                "sat/fixture.py": SOLVER_TEMPLATE.format(
                    claim="O(n^3)", body=TRIPLE_LOOP
                )
            },
            "REP009",
        )
        assert findings == []

    def test_one_level_slack_absorbs_partition_iteration(self, semantic_findings):
        source = SOLVER_TEMPLATE.format(
            claim="O(n)",
            body=(
                "    for comp in items:\n"
                "        for v in comp:\n"
                "            print(v)\n"
            ),
        )
        assert math.isfinite(SKELETON_SLACK)
        findings = semantic_findings({"sat/fixture.py": source}, "REP009")
        assert findings == []

    def test_unparseable_claim_is_its_own_finding(self, semantic_findings):
        findings = semantic_findings(
            {
                "sat/fixture.py": SOLVER_TEMPLATE.format(
                    claim="pretty fast in practice", body="    return items\n"
                )
            },
            "REP009",
        )
        assert [f.code for f in findings] == ["REP009"]
        assert "does not parse" in findings[0].message

    def test_callee_budget_charged_at_call_site_depth(self, semantic_findings):
        files = {
            "sat/inner.py": SOLVER_TEMPLATE.format(
                claim="O(n²)",
                body=(
                    "    for a in items:\n"
                    "        for b in items:\n"
                    "            print(a, b)\n"
                ),
            ),
            "sat/outer.py": '''
                from repro.sat.inner import solve_fixture

                def solve_outer(groups):
                    """Calls a quadratic helper once per group.

                    Complexity: O(n)
                    """
                    for group in groups:
                        solve_fixture(group)
                ''',
        }
        findings = semantic_findings(files, "REP009")
        assert [f.context for f in findings] == ["solve_outer"]
        # depth 1 (the loop) + callee budget 2 = 3 > budget 1 + slack 1
        assert "skeleton reaches depth 3" in findings[0].message

    def test_recursive_functions_exempt(self, semantic_findings):
        source = '''
            def solve_tree(node):
                """Recursive descent; depth is not nesting.

                Complexity: O(n)
                """
                for child in node.children:
                    for grandchild in child.children:
                        for great in grandchild.children:
                            solve_tree(great)
            '''
        findings = semantic_findings({"sat/fixture.py": source}, "REP009")
        assert findings == []
