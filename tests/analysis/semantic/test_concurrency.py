"""REP010: pool-worker global mutation, ContextVar defaults, ad-hoc caches."""

from __future__ import annotations

POOL_MODULE = """
    RESULTS = {}

    def worker(item):
        RESULTS[item] = item * 2
        return item

    def launch(pool, items):
        return [pool.submit(worker, item) for item in items]
"""


class TestPoolGlobalMutation:
    def test_worker_mutating_module_global_flagged(self, semantic_findings):
        findings = semantic_findings(
            {"observability/parallel.py": POOL_MODULE}, "REP010"
        )
        assert [f.code for f in findings] == ["REP010"]
        assert "pool workers" in findings[0].message
        assert "RESULTS" in findings[0].message
        assert findings[0].context == "worker"

    def test_mutation_reached_through_helper_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/parallel.py": """
                    SEEN = {}

                    def record(item):
                        SEEN[item] = True

                    def worker(item):
                        record(item)
                        return item

                    def launch(pool, items):
                        return [pool.submit(worker, item) for item in items]
                """,
            },
            "REP010",
        )
        assert [f.context for f in findings] == ["record"]

    def test_same_mutation_without_pool_is_not_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/serial.py": """
                    RESULTS = {}

                    def worker(item):
                        RESULTS[item] = item * 2
                        return item
                """,
            },
            "REP010",
        )
        assert findings == []


class TestWorkerDispatchEntryPoints:
    """run_in_executor-dispatched functions are pool entry points too."""

    def test_run_in_executor_target_mutating_global_flagged(
        self, semantic_findings
    ):
        findings = semantic_findings(
            {
                "service/dispatcher.py": """
                    REPLICAS = {}

                    def apply_register(name, payload):
                        REPLICAS[name] = payload
                        return name

                    async def replicate(loop, pool, name, payload):
                        return await loop.run_in_executor(
                            pool, apply_register, name, payload
                        )
                """,
            },
            "REP010",
        )
        assert [f.code for f in findings] == ["REP010"]
        assert "pool workers" in findings[0].message
        assert "REPLICAS" in findings[0].message
        assert findings[0].context == "apply_register"

    def test_mutation_reached_through_dispatch_helper_flagged(
        self, semantic_findings
    ):
        findings = semantic_findings(
            {
                "service/dispatcher.py": """
                    SEEN = {}

                    def record(name):
                        SEEN[name] = True

                    def run_query(spec):
                        record(spec)
                        return spec

                    async def dispatch(loop, pool, spec):
                        return await loop.run_in_executor(pool, run_query, spec)
                """,
            },
            "REP010",
        )
        assert [f.context for f in findings] == ["record"]

    def test_state_class_instance_pattern_passes(self, semantic_findings):
        # The sanctioned WorkerShard pattern: worker state behind a
        # dedicated class instance, applied via the dispatch protocol.
        findings = semantic_findings(
            {
                "service/dispatcher.py": """
                    class WorkerState:
                        def __init__(self):
                            self.replicas = {}

                    _STATE = WorkerState()

                    def apply_register(name, payload):
                        _STATE.replicas[name] = payload
                        return name

                    async def replicate(loop, pool, name, payload):
                        return await loop.run_in_executor(
                            pool, apply_register, name, payload
                        )
                """,
            },
            "REP010",
        )
        assert findings == []

    def test_rebind_through_state_global_still_flagged(self, semantic_findings):
        # Rebinding the state global itself is never sanctioned.
        findings = semantic_findings(
            {
                "service/dispatcher.py": """
                    class WorkerState:
                        def __init__(self):
                            self.replicas = {}

                    _STATE = WorkerState()

                    def reset():
                        global _STATE
                        _STATE = WorkerState()

                    async def dispatch(loop, pool):
                        return await loop.run_in_executor(pool, reset)
                """,
            },
            "REP010",
        )
        assert [f.code for f in findings] == ["REP010"]
        assert "rebind" in findings[0].message


CONTEXTVAR_DEF = """
    from contextvars import ContextVar

    CURRENT = ContextVar("current")
"""

CONTEXTVAR_DEF_WITH_DEFAULT = """
    from contextvars import ContextVar

    CURRENT = ContextVar("current", default=None)
"""


class TestContextVars:
    def test_get_without_set_or_default_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/state.py": CONTEXTVAR_DEF,
                "observability/reader.py": """
                    from repro.observability.state import CURRENT

                    def active():
                        return CURRENT.get()
                """,
            },
            "REP010",
        )
        assert [f.code for f in findings] == ["REP010"]
        assert "LookupError" in findings[0].message
        assert findings[0].context == "active"

    def test_default_silences_the_finding(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/state.py": CONTEXTVAR_DEF_WITH_DEFAULT,
                "observability/reader.py": """
                    from repro.observability.state import CURRENT

                    def active():
                        return CURRENT.get()
                """,
            },
            "REP010",
        )
        assert findings == []

    def test_a_set_anywhere_silences_the_finding(self, semantic_findings):
        findings = semantic_findings(
            {
                "observability/state.py": CONTEXTVAR_DEF,
                "observability/reader.py": """
                    from repro.observability.state import CURRENT

                    def active():
                        return CURRENT.get()
                """,
                "observability/writer.py": """
                    from repro.observability.state import CURRENT

                    def activate(run):
                        CURRENT.set(run)
                """,
            },
            "REP010",
        )
        assert findings == []


class TestAdHocCaches:
    def test_module_cache_mutation_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "relational/memo.py": """
                    _PLAN_CACHE = {}

                    def plan(query):
                        if query not in _PLAN_CACHE:
                            _PLAN_CACHE[query] = len(query)
                        return _PLAN_CACHE[query]
                """,
            },
            "REP010",
        )
        assert [f.code for f in findings] == ["REP010"]
        assert "KernelState" in findings[0].message
        assert "_PLAN_CACHE" in findings[0].message

    def test_non_cache_named_global_is_not_a_cache_finding(self, semantic_findings):
        findings = semantic_findings(
            {
                "relational/registry_table.py": """
                    _TABLE = {}

                    def register(name, value):
                        _TABLE[name] = value
                """,
            },
            "REP010",
        )
        assert findings == []
