"""Call-graph construction: resolution across modules, aliases,
re-exports, class hierarchies, decorators, and recursion detection."""

from __future__ import annotations


def edges(analysis) -> set[tuple[str, str]]:
    return {
        (caller, callee)
        for caller, callees in analysis.call_graph.edges.items()
        for callee in callees
    }


class TestCrossModuleResolution:
    def test_from_import_resolves_to_defining_module(self, analysis_for):
        analysis = analysis_for(
            {
                "util/helpers.py": """
                    def helper(g):
                        return g
                """,
                "graphs/solve.py": """
                    from repro.util.helpers import helper

                    def solve_all(g):
                        return helper(g)
                """,
            }
        )
        assert (
            "repro.graphs.solve:solve_all",
            "repro.util.helpers:helper",
        ) in edges(analysis)

    def test_module_alias_attribute_call(self, analysis_for):
        analysis = analysis_for(
            {
                "util/helpers.py": """
                    def helper(g):
                        return g
                """,
                "graphs/solve.py": """
                    import repro.util.helpers as h

                    def solve_all(g):
                        return h.helper(g)
                """,
            }
        )
        assert (
            "repro.graphs.solve:solve_all",
            "repro.util.helpers:helper",
        ) in edges(analysis)

    def test_reexport_chased_through_package_init(self, analysis_for):
        analysis = analysis_for(
            {
                "util/helpers.py": """
                    def helper(g):
                        return g
                """,
                "util/__init__.py": """
                    from .helpers import helper
                """,
                "graphs/solve.py": """
                    from repro.util import helper

                    def solve_all(g):
                        return helper(g)
                """,
            }
        )
        assert (
            "repro.graphs.solve:solve_all",
            "repro.util.helpers:helper",
        ) in edges(analysis)

    def test_local_name_shadows_module_function(self, analysis_for):
        analysis = analysis_for(
            {
                "graphs/solve.py": """
                    def helper(g):
                        return g

                    def solve_all(g, helper):
                        return helper(g)
                """,
            }
        )
        assert (
            "repro.graphs.solve:solve_all",
            "repro.graphs.solve:helper",
        ) not in edges(analysis)


class TestClassesAndDecorators:
    def test_self_method_resolved_through_base_class(self, analysis_for):
        analysis = analysis_for(
            {
                "structures/base.py": """
                    class Walker:
                        def step(self):
                            return 1
                """,
                "structures/derived.py": """
                    from repro.structures.base import Walker

                    class FastWalker(Walker):
                        def run(self):
                            return self.step()
                """,
            }
        )
        assert (
            "repro.structures.derived:FastWalker.run",
            "repro.structures.base:Walker.step",
        ) in edges(analysis)

    def test_constructor_call_maps_to_init(self, analysis_for):
        analysis = analysis_for(
            {
                "structures/base.py": """
                    class Walker:
                        def __init__(self, start):
                            self.start = start
                """,
                "graphs/solve.py": """
                    from repro.structures.base import Walker

                    def solve_all(g):
                        return Walker(g)
                """,
            }
        )
        assert (
            "repro.graphs.solve:solve_all",
            "repro.structures.base:Walker.__init__",
        ) in edges(analysis)

    def test_decorator_application_is_a_module_scope_call(self, analysis_for):
        analysis = analysis_for(
            {
                "transforms/registry.py": """
                    def transform(**kwargs):
                        def wrap(fn):
                            return fn
                        return wrap
                """,
                "reductions/fixture.py": """
                    from repro.transforms.registry import transform

                    @transform(name="a-to-b", source="a", target="b")
                    def reduce_a(instance):
                        return instance
                """,
            }
        )
        assert (
            "repro.reductions.fixture:<module>",
            "repro.transforms.registry:transform",
        ) in edges(analysis)


class TestRecursion:
    def test_mutual_recursion_detected(self, analysis_for):
        analysis = analysis_for(
            {
                "graphs/solve.py": """
                    def even(n):
                        return n == 0 or odd(n - 1)

                    def odd(n):
                        return n != 0 and even(n - 1)

                    def plain(n):
                        return even(n)
                """,
            }
        )
        graph = analysis.call_graph
        assert graph.is_recursive("repro.graphs.solve:even")
        assert graph.is_recursive("repro.graphs.solve:odd")
        assert not graph.is_recursive("repro.graphs.solve:plain")

    def test_self_recursion_detected(self, analysis_for):
        analysis = analysis_for(
            {
                "graphs/solve.py": """
                    def descend(t):
                        return [descend(c) for c in t]
                """,
            }
        )
        assert analysis.call_graph.is_recursive("repro.graphs.solve:descend")


class TestPoolEntryPoints:
    def test_submit_target_recorded(self, analysis_for):
        analysis = analysis_for(
            {
                "observability/parallel.py": """
                    def worker(item):
                        return item

                    def launch(pool, items):
                        return [pool.submit(worker, item) for item in items]
                """,
            }
        )
        assert (
            "repro.observability.parallel:worker"
            in analysis.call_graph.pool_entry_points
        )


class TestExperimentEntryPoints:
    def test_spec_runners_resolve_to_nodes(self, analysis_for):
        analysis = analysis_for(
            {
                "experiments/exp_demo.py": """
                    def run(spec):
                        return {"ok": True}
                """,
                "experiments/__main__.py": """
                    from . import exp_demo

                    class ExperimentSpec:
                        def __init__(self, key, runners):
                            self.key = key
                            self.runners = runners

                    SPECS = (
                        ExperimentSpec("E1", (exp_demo.run,)),
                    )
                """,
            }
        )
        entries = analysis.experiment_entry_points()
        assert entries["E1"][0] == "repro.experiments.__main__"
        assert entries["E1"][1] == ["repro.experiments.exp_demo:run"]
