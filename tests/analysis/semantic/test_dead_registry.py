"""REP011: registered must mean reachable from the registry's loader."""

from __future__ import annotations

TRANSFORM_MODULE = """
    from repro.transforms.registry import transform

    @transform(name="a-to-b", source="a", target="b")
    def reduce_a(instance):
        return instance
"""

REGISTRY_STUB = """
    def transform(**kwargs):
        def wrap(fn):
            return fn
        return wrap
"""


class TestTransforms:
    def test_unreachable_registration_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "transforms/registry.py": REGISTRY_STUB,
                "reductions/extra.py": TRANSFORM_MODULE,
            },
            "REP011",
        )
        flagged = [f for f in findings if f.context == "transform:a-to-b"]
        assert len(flagged) == 1
        assert "never runs" in flagged[0].message

    def test_loader_import_makes_it_live(self, semantic_findings):
        findings = semantic_findings(
            {
                "transforms/registry.py": REGISTRY_STUB,
                "transforms/__init__.py": """
                    from ..reductions import extra
                """,
                "reductions/extra.py": TRANSFORM_MODULE,
            },
            "REP011",
        )
        assert [f for f in findings if f.context == "transform:a-to-b"] == []

    def test_function_local_import_counts(self, semantic_findings):
        # The real loader imports lazily inside load_builtin_transforms().
        findings = semantic_findings(
            {
                "transforms/registry.py": REGISTRY_STUB,
                "transforms/__init__.py": """
                    def load_builtin_transforms():
                        from ..reductions import extra
                        return [extra]
                """,
                "reductions/extra.py": TRANSFORM_MODULE,
            },
            "REP011",
        )
        assert [f for f in findings if f.context == "transform:a-to-b"] == []


SPEC_MAIN = """
    from . import exp_demo

    class ExperimentSpec:
        def __init__(self, key, runners):
            self.key = key
            self.runners = runners

    SPECS = (
        ExperimentSpec("E1", (exp_demo.run,)),
        ExperimentSpec("E2", (exp_demo.missing,)),
    )
"""


class TestExperiments:
    def test_unresolvable_runner_and_orphan_module_flagged(self, semantic_findings):
        findings = semantic_findings(
            {
                "experiments/__main__.py": SPEC_MAIN,
                "experiments/exp_demo.py": """
                    def run(spec):
                        return {}
                """,
                "experiments/exp_orphan.py": """
                    def run(spec):
                        return {}
                """,
            },
            "REP011",
        )
        contexts = sorted(f.context for f in findings)
        assert contexts == [
            "experiment:E2",
            "module:repro.experiments.exp_orphan",
        ]
        messages = " ".join(f.message for f in findings)
        assert "does not resolve" in messages
        assert "not imported by the experiments CLI" in messages


BOUNDS_MODULE = """
    class LowerBound:
        def __init__(self, **kwargs):
            self.__dict__.update(kwargs)

    _BOUNDS = (
        LowerBound(key="lb.live", statement="s", experiment="E1-demo"),
        LowerBound(key="lb.dead", statement="s"),
    )
"""


class TestBounds:
    def test_witnessless_uncited_bound_is_a_warning(self, semantic_findings):
        from repro.analysis.report import Severity

        findings = semantic_findings(
            {"complexity/bounds.py": BOUNDS_MODULE}, "REP011"
        )
        assert [f.context for f in findings] == ["bound:lb.dead"]
        assert findings[0].severity is Severity.WARNING

    def test_citation_elsewhere_keeps_the_bound_alive(self, semantic_findings):
        findings = semantic_findings(
            {
                "complexity/bounds.py": BOUNDS_MODULE,
                "docs_tables.py": """
                    CITED = ("lb.dead",)
                """,
            },
            "REP011",
        )
        assert findings == []
