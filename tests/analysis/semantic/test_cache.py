"""Incremental cache: hash-keyed summary reuse and reverse-closure
re-analysis. These assert the ISSUE acceptance criteria directly: an
unchanged tree re-analyzes zero modules; editing a leaf re-analyzes
exactly the leaf plus its reverse-dependency closure."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import load_project
from repro.analysis.semantic.cache import SemanticCache, summarize_project
from repro.analysis.semantic.engine import SemanticAnalysis

TREE = {
    "base.py": """
        def base_fn(x):
            return x + 1
    """,
    "mid.py": """
        from repro.base import base_fn

        def mid_fn(x):
            return base_fn(x) * 2
    """,
    "top.py": """
        from repro.mid import mid_fn

        def top_fn(x):
            return mid_fn(x) - 1
    """,
    "unrelated.py": """
        def lonely(x):
            return x
    """,
}


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, source in TREE.items():
        (root / name).write_text(textwrap.dedent(source))
    return root


class TestIncrementalCache:
    def test_unchanged_tree_reanalyzes_zero_modules(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"

        cache = SemanticCache.load(cache_path)
        _, cold = summarize_project(load_project(tree), cache)
        cache.save()
        assert cold.summaries_computed == cold.modules_total == 5
        assert cold.summaries_reused == 0

        cache = SemanticCache.load(cache_path)
        _, warm = summarize_project(load_project(tree), cache)
        assert warm.summaries_reused == warm.modules_total == 5
        assert warm.summaries_computed == 0
        assert warm.reanalyzed == ()

    def test_leaf_edit_reanalyzes_exactly_the_reverse_closure(
        self, tree, tmp_path
    ):
        cache_path = tmp_path / "cache.json"
        cache = SemanticCache.load(cache_path)
        summarize_project(load_project(tree), cache)
        cache.save()

        base = tree / "base.py"
        base.write_text(base.read_text() + "\n\ndef base_extra(x):\n    return x\n")

        cache = SemanticCache.load(cache_path)
        _, stats = summarize_project(load_project(tree), cache)
        # Only the edited file is re-summarized...
        assert stats.summaries_computed == 1
        assert stats.summaries_reused == 4
        # ...but whole-program verdicts are stale for its reverse
        # import closure — and for nothing else.
        assert stats.reanalyzed == ("repro.base", "repro.mid", "repro.top")

    def test_corrupt_cache_degrades_to_cold_run(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = SemanticCache.load(cache_path)
        _, stats = summarize_project(load_project(tree), cache)
        assert stats.summaries_computed == stats.modules_total
        assert cache.path == cache_path

    def test_cached_summaries_reproduce_the_analysis(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        cold = SemanticAnalysis.build(load_project(tree), cache_path)
        warm = SemanticAnalysis.build(load_project(tree), cache_path)
        assert warm.stats.reanalyzed == ()
        # Replayed summaries drive the same graphs as fresh ones.
        assert warm.call_graph.edges == cold.call_graph.edges
        assert warm.import_graph == cold.import_graph
        assert sorted(warm.taint.verdicts) == sorted(cold.taint.verdicts)
        assert warm.claims.skeletons == cold.claims.skeletons

    def test_no_cache_path_runs_cold_without_writing(self, tree):
        analysis = SemanticAnalysis.build(load_project(tree), None)
        assert analysis.stats.summaries_computed == analysis.stats.modules_total
