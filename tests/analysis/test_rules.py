"""Per-rule fixture tests: one passing and one failing tree per family."""

from __future__ import annotations

import pytest

from repro.analysis import all_rules
from repro.analysis.report import Severity
from repro.analysis.rules.rep005_complexity import is_entry_point_name


def codes(findings):
    return [f.code for f in findings]


class TestRegistry:
    def test_twelve_families_registered(self):
        assert [r.code for r in all_rules()] == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
            "REP012",
        ]

    def test_unknown_rule_rejected(self):
        from repro.analysis import get_rule
        from repro.analysis.walker import AnalysisError

        with pytest.raises(AnalysisError):
            get_rule("REP999")


class TestRep001CertificateDiscipline:
    def test_pass(self, findings_for):
        findings = findings_for(
            {"reductions/fixture.py": "rep001_pass.py"}, "REP001"
        )
        assert findings == []

    def test_fail_reports_both_contract_halves(self, findings_for):
        findings = findings_for(
            {"reductions/fixture.py": "rep001_fail.py"}, "REP001"
        )
        assert codes(findings) == ["REP001", "REP001"]
        messages = " ".join(f.message for f in findings)
        assert "certificate" in messages
        assert "map_solution_back" in messages
        assert all(f.context == "bad_reduction" for f in findings)


class TestRep002RegistryIntegrity:
    def test_pass_when_paths_and_ids_resolve(self, findings_for):
        findings = findings_for(
            {
                "complexity/bounds.py": "rep002_pass_bounds.py",
                "experiments/exp_fixture.py": "rep002_experiment.py",
            },
            "REP002",
        )
        assert findings == []

    def test_fail_on_dangling_path_and_unknown_id(self, findings_for):
        findings = findings_for(
            {
                "complexity/bounds.py": "rep002_fail_bounds.py",
                "experiments/exp_fixture.py": "rep002_experiment.py",
            },
            "REP002",
        )
        assert codes(findings) == ["REP002", "REP002"]
        contexts = {f.context for f in findings}
        assert contexts == {"repro.reductions.does_not_exist", "E99-never-declared"}

    def test_derivation_chain_names_must_be_registered(self, findings_for):
        findings = findings_for(
            {
                "complexity/bounds.py": "rep002_derivations.py",
                "reductions/fixture.py": "rep007_pass.py",
            },
            "REP002",
        )
        assert codes(findings) == ["REP002"]
        assert findings[0].context == "never→registered"
        assert "no @transform" in findings[0].message


class TestRep003ExceptionHygiene:
    def test_pass(self, findings_for):
        findings = findings_for({"util/fixture.py": "rep003_pass.py"}, "REP003")
        assert findings == []

    def test_fail_flags_all_four_patterns(self, findings_for):
        findings = findings_for({"util/fixture.py": "rep003_fail.py"}, "REP003")
        assert codes(findings) == ["REP003"] * 4
        messages = [f.message for f in findings]
        assert any("bare" in m for m in messages)
        assert any("broad" in m for m in messages)
        assert any("RogueError" in m for m in messages)
        assert any("builtin Exception" in m for m in messages)
        assert all(f.severity is Severity.ERROR for f in findings)


class TestRep004Determinism:
    def test_pass_with_injected_seed(self, findings_for):
        findings = findings_for(
            {"generators/fixture.py": "rep004_pass.py"}, "REP004"
        )
        assert findings == []

    def test_fail_flags_global_and_unseeded_rng(self, findings_for):
        findings = findings_for(
            {"generators/fixture.py": "rep004_fail.py"}, "REP004"
        )
        assert codes(findings) == ["REP004"] * 4
        contexts = [f.context for f in findings]
        assert "<module>" in contexts  # the module-level random.random()
        messages = " ".join(f.message for f in findings)
        assert "random.random" in messages
        assert "random.shuffle" in messages
        assert "np.random.rand" in messages
        assert "without a seed" in messages


class TestRep005ComplexityAnnotations:
    def test_pass_with_field(self, findings_for):
        findings = findings_for({"sat/fixture.py": "rep005_pass.py"}, "REP005")
        assert findings == []

    def test_fail_without_field(self, findings_for):
        findings = findings_for({"sat/fixture.py": "rep005_fail.py"}, "REP005")
        assert codes(findings) == ["REP005"]
        assert findings[0].context == "count_fixture"

    def test_outside_algorithm_packages_exempt(self, findings_for):
        findings = findings_for(
            {"experiments/fixture.py": "rep005_fail.py"}, "REP005"
        )
        assert findings == []

    def test_verb_word_boundaries(self):
        assert is_entry_point_name("has_clique")
        assert is_entry_point_name("solve")
        assert is_entry_point_name("enumerate_acyclic")
        assert not is_entry_point_name("hash_join")
        assert not is_entry_point_name("_solve_private")
        assert not is_entry_point_name("solver_config")


class TestRep006IndexDiscipline:
    def test_pass_with_hoisted_and_cached_indexes(self, findings_for):
        findings = findings_for(
            {"relational/fixture.py": "rep006_pass.py"}, "REP006"
        )
        assert findings == []

    def test_fail_flags_builds_inside_for_and_while(self, findings_for):
        findings = findings_for(
            {"relational/fixture.py": "rep006_fail.py"}, "REP006"
        )
        assert codes(findings) == ["REP006"] * 2
        messages = " ".join(f.message for f in findings)
        assert "build_hash_trie" in messages
        assert "SortedTrieIndex" in messages
        assert all(f.context == "solve_fixture" for f in findings)

    def test_outside_algorithm_packages_exempt(self, findings_for):
        findings = findings_for(
            {"experiments/fixture.py": "rep006_fail.py"}, "REP006"
        )
        assert findings == []


class TestRep007TransformRegistration:
    def test_pass(self, findings_for):
        findings = findings_for(
            {"reductions/fixture.py": "rep007_pass.py"}, "REP007"
        )
        assert findings == []

    def test_fail_flags_all_four_defects(self, findings_for):
        findings = findings_for(
            {"reductions/fixture.py": "rep007_fail.py"}, "REP007"
        )
        assert codes(findings) == ["REP007"] * 5
        messages = " ".join(f.message for f in findings)
        assert "literal name=" in messages
        assert "also registered" in messages
        assert "omits source=" in messages
        assert "omits target=" in messages
        assert "no guarantee schema" in messages
        assert all(f.severity is Severity.ERROR for f in findings)


class TestRep012SemiringRegistration:
    def test_pass_with_literal_name_elements_and_laws(self, findings_for):
        findings = findings_for(
            {
                "relational/fixture.py": "rep012_pass.py",
                "fixture_laws.py": "rep012_laws.py",
            },
            "REP012",
        )
        assert findings == []

    def test_fail_flags_every_defect(self, findings_for):
        findings = findings_for(
            {
                "relational/fixture.py": "rep012_fail.py",
                "fixture_laws.py": "rep012_laws.py",
            },
            "REP012",
        )
        assert codes(findings) == ["REP012"] * 4
        messages = " ".join(f.message for f in findings)
        assert "string literal" in messages
        assert "zero=" in messages
        assert "one=" in messages
        assert "does not exist" in messages
        assert all(f.severity is Severity.ERROR for f in findings)
        contexts = {f.context for f in findings}
        assert contexts == {"<unnamed>", "dangling"}

    def test_repo_registrations_are_clean(self):
        from pathlib import Path

        from repro.analysis import analyze_project, load_project

        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        project = load_project(root)
        assert analyze_project(project, ["REP012"]) == []


class TestRep010AsyncBlocking:
    def test_pass_when_blocking_work_stays_in_sync_helpers(self, findings_for):
        findings = findings_for(
            {"service/handlers.py": "rep010_async_pass.py"}, "REP010"
        )
        assert findings == []

    def test_fail_flags_every_blocking_pattern(self, findings_for):
        findings = findings_for(
            {"service/handlers.py": "rep010_async_fail.py"}, "REP010"
        )
        assert codes(findings) == ["REP010"] * 5
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "open()" in messages
        assert "read_text" in messages
        assert "blocks on a future" in messages
        assert "subprocess" in messages
        assert all(f.severity is Severity.ERROR for f in findings)
        assert {f.context for f in findings} == {"handle", "launch", "shell"}


class TestParseFailures:
    def test_unparseable_file_is_a_finding(self, tmp_path):
        from repro.analysis import analyze_project, load_project

        root = tmp_path / "repro"
        root.mkdir()
        (root / "__init__.py").write_text("")
        (root / "broken.py").write_text("def broken(:\n")
        project = load_project(root)
        findings = analyze_project(project)
        assert [f.code for f in findings] == ["REP000"]
        assert "parsed" in findings[0].message
