"""Derivation chains: every bound validates, every failure mode is loud."""

import dataclasses

import pytest

from repro.complexity.bounds import all_lower_bounds, get_lower_bound
from repro.complexity.derivations import (
    Derivation,
    axiom,
    check_all_derivations,
    check_derivation,
    derived,
    resolve_chain,
)
from repro.errors import DerivationError


class TestDerivationConstructors:
    def test_axiom_requires_note(self):
        with pytest.raises(DerivationError, match="explanatory note"):
            axiom("")
        assert axiom("paper-stated").is_axiom

    def test_derived_requires_chain(self):
        with pytest.raises(DerivationError, match="at least one transform"):
            derived("eth")
        derivation = derived("eth", "3sat→csp")
        assert not derivation.is_axiom
        assert derivation.render() == "eth ⊢ 3sat→csp"

    def test_axiom_render(self):
        assert axiom("counting argument").render() == "axiom — counting argument"


class TestEveryRegisteredBound:
    def test_all_bounds_carry_a_derivation(self):
        for bound in all_lower_bounds():
            assert bound.derivation is not None, bound.key

    def test_every_derivation_validates(self):
        results = check_all_derivations()
        assert len(results) == len(all_lower_bounds())
        derived_count = sum(1 for _, replay in results if replay is not None)
        axiom_count = sum(1 for _, replay in results if replay is None)
        assert derived_count == 9
        assert axiom_count == 12

    def test_replayed_chains_recertify(self):
        for bound, replay in check_all_derivations():
            if replay is None:
                continue
            assert replay.certificates, bound.key
            assert all(c.holds for c in replay.certificates), bound.key

    def test_two_step_chain_bound(self):
        bound = get_lower_bound("csp-subexp-size")
        assert bound.derivation.chain == ("3sat→3coloring", "3coloring→csp")
        replay = check_derivation(bound)
        names = {c.name for c in replay.certificates}
        assert any(name.startswith("1/3sat→3coloring/") for name in names)
        assert any(name.startswith("2/3coloring→csp/") for name in names)


class TestFailureModes:
    def _tamper(self, key, **overrides):
        return dataclasses.replace(get_lower_bound(key), **overrides)

    def test_missing_derivation_rejected(self):
        bad = self._tamper("csp-subexp-vars", derivation=None)
        with pytest.raises(DerivationError, match="no derivation"):
            check_derivation(bad)

    def test_unknown_hypothesis_rejected(self):
        bad = self._tamper(
            "csp-subexp-vars",
            derivation=Derivation(hypothesis="not-a-hypothesis", chain=("3sat→csp",)),
        )
        with pytest.raises(DerivationError, match="csp-subexp-vars"):
            check_derivation(bad)

    def test_dangling_transform_name_rejected(self):
        bad = self._tamper(
            "csp-subexp-vars",
            derivation=derived("eth", "never→registered"),
        )
        with pytest.raises(DerivationError, match="unknown transform"):
            check_derivation(bad)
        with pytest.raises(DerivationError, match="never→registered"):
            resolve_chain(bad.derivation)

    def test_non_composable_chain_rejected(self):
        bad = self._tamper(
            "csp-subexp-vars",
            derivation=derived("eth", "3sat→3coloring", "clique→csp"),
        )
        with pytest.raises(DerivationError, match="do not line up"):
            check_derivation(bad)

    def test_missing_implication_edge_rejected(self):
        # ETH does not imply SETH, so a bound conditioned on ETH cannot
        # ride a chain whose hardness starts at SETH.
        bad = self._tamper(
            "csp-subexp-vars",
            derivation=derived("seth", "3sat→csp"),
        )
        with pytest.raises(DerivationError, match="implication-graph edge"):
            check_derivation(bad)

    def test_hypothesis_key_must_match_registry(self):
        bad = self._tamper("csp-subexp-vars", hypothesis="eth", derivation=axiom("x"))
        # Axioms skip the implication check entirely.
        assert check_derivation(bad) is None
