"""Composition: certificate fusion, back-maps, bounds, chain search."""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.errors import ReductionError
from repro.transforms import (
    CSP,
    GRAPH,
    SAT,
    chain_name,
    compose,
    compose_chain,
    find_chain,
    get_transform,
    make_bound,
)
from repro.transforms.params import IDENTITY_BOUND, compose_bounds


class TestParamBounds:
    def test_identity(self):
        assert IDENTITY_BOUND(7) == 7
        assert IDENTITY_BOUND.expr == "k"

    def test_substitution_composition(self):
        double = make_bound("2·k", lambda k: 2 * k)
        blowup = make_bound("k + 2^k", lambda k: k + 2**k)
        composed = double.then(blowup)
        assert composed.expr == "(2·k) + 2^(2·k)"
        assert composed(3) == 6 + 2**6

    def test_expr_must_mention_k(self):
        with pytest.raises(ReductionError, match="does not mention"):
            make_bound("n + 1", lambda n: n + 1)

    def test_none_poisons_composition(self):
        assert compose_bounds([IDENTITY_BOUND, None]) is None
        assert compose_bounds([]) is None


class TestComposeChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(ReductionError, match="empty chain"):
            compose_chain([])

    def test_singleton_chain_is_the_transform(self):
        entry = get_transform("3sat→csp")
        assert compose_chain([entry]) is entry

    def test_misaligned_formats_rejected(self):
        coloring = get_transform("3sat→3coloring")  # lands in "coloring"
        clique_csp = get_transform("clique→csp")  # departs "clique"
        with pytest.raises(ReductionError, match="do not line up"):
            compose(coloring, clique_csp)

    def test_two_step_chain_fuses_certificates(self):
        chain = compose(
            get_transform("3sat→3coloring"), get_transform("3coloring→csp")
        )
        assert chain.name == "3sat→3coloring » 3coloring→csp"
        assert chain.source == SAT and chain.target == CSP
        reduction = chain.apply(*chain.witness_args())
        reduction.certify()
        names = [c.name for c in reduction.certificates]
        # Namespaced per stage, both stages present.
        assert "1/3sat→3coloring/|V| <= 3 + 2n + 6m" in names
        assert "2/3coloring→csp/|D| == 3" in names

    def test_composed_back_map_round_trips(self):
        chain = compose(
            get_transform("3sat→3coloring"), get_transform("3coloring→csp")
        )
        formula = chain.witness_args()[0]
        reduction = chain.apply(formula)
        coloring_solution = solve_backtracking(reduction.target)
        assert coloring_solution is not None
        assignment = reduction.pull_back(coloring_solution)
        assert formula.evaluate(assignment)
        assert reduction.pull_back(None) is None

    def test_composed_parameter_bound_certificate(self):
        chain = compose(
            get_transform("clique→independent-set"),
            get_transform("independent-set→vertex-cover"),
        )
        # Second stage has no bound, so no end-to-end bound either.
        assert chain.parameter_bound is None
        single = compose_chain([get_transform("clique→csp")])
        assert single.parameter_bound is not None

    def test_parameterized_chain_carries_bound(self):
        chain_entry = get_transform("clique→special-csp")
        reduction = chain_entry.apply(*chain_entry.witness_args())
        assert reduction.parameter_target == 3 + 2**3


class TestFindChain:
    def test_direct_hop_wins(self):
        chain = find_chain(SAT, CSP)
        assert chain_name(chain) == "3sat→csp"

    def test_format_constrained_search(self):
        # No transform lands a CSP with the "coloring" tag, so tagging
        # the target prunes the otherwise-reachable SAT → CSP chains.
        with pytest.raises(ReductionError, match="no transform chain"):
            find_chain(SAT, CSP, target_format="coloring")

    def test_multi_hop_via_formats(self):
        chain = find_chain(
            GRAPH, GRAPH, source_format="clique", target_format="vertex-cover"
        )
        assert chain_name(chain) == (
            "clique→independent-set » independent-set→vertex-cover"
        )

    def test_no_chain_raises(self):
        from repro.transforms import VECTORS

        with pytest.raises(ReductionError, match="no transform chain"):
            find_chain(VECTORS, SAT)

    def test_search_skips_unchainable(self):
        # group-variables (csp → grouped-csp) is chainable=False, so a
        # grouped-csp target is unreachable from plain csp.
        with pytest.raises(ReductionError, match="no transform chain"):
            find_chain(CSP, CSP, target_format="grouped-csp")
