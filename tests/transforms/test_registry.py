"""The transform registry: loading, lookup, schemas, witnesses."""

import pytest

from repro.errors import ReductionError
from repro.transforms import (
    CSP,
    SAT,
    Transform,
    all_transforms,
    get_transform,
    has_transform,
    transforms_from,
)
from repro.transforms.certified import CertifiedReduction
from repro.transforms.domains import all_domains, get_domain
from repro.transforms.registry import register


class TestDomains:
    def test_six_domains(self):
        assert [d.key for d in all_domains()] == [
            "sat",
            "csp",
            "graph",
            "structure",
            "query",
            "vectors",
        ]

    def test_lookup_roundtrip(self):
        for domain in all_domains():
            assert get_domain(domain.key) is domain

    def test_unknown_domain_rejected(self):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            get_domain("no-such-domain")


class TestRegistry:
    def test_builtins_load_lazily(self):
        names = [t.name for t in all_transforms()]
        assert "3sat→csp" in names
        assert "3coloring→csp" in names
        assert "cnfsat→orthogonal-vectors" in names
        assert len(names) == len(set(names))
        assert names == sorted(names)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ReductionError, match="unknown transform"):
            get_transform("never→registered")
        assert not has_transform("never→registered")

    def test_decorator_returns_plain_function(self):
        from repro.reductions.sat_to_csp import sat_to_csp

        # Old call sites go through the raw function...
        assert not isinstance(sat_to_csp, Transform)
        # ...while the registered entry hangs off it for new code.
        assert sat_to_csp.transform is get_transform("3sat→csp")

    def test_duplicate_registration_rejected(self):
        entry = get_transform("3sat→csp")
        with pytest.raises(ReductionError, match="twice"):
            register(entry)

    def test_empty_guarantees_rejected(self):
        bare = Transform(
            name="test-no-schema",
            source=SAT,
            target=CSP,
            guarantees=(),
            apply_fn=lambda x: x,
        )
        with pytest.raises(ReductionError, match="guarantee schema"):
            register(bare)

    def test_transforms_from_respects_chainability(self):
        for entry in transforms_from("csp"):
            assert entry.chainable
            assert entry.source_tag == "csp"
        # group-variables departs csp but is not chainable.
        departing = {t.name for t in transforms_from("csp")}
        assert "group-variables" not in departing


class TestTransformApply:
    def test_every_builtin_witness_certifies(self):
        for entry in all_transforms():
            reduction = entry.apply(*entry.witness_args())
            reduction.certify()
            produced = {c.name for c in reduction.certificates}
            assert set(entry.guarantees) <= produced

    def test_schema_violation_fails_loudly(self):
        def bad_apply(value):
            return CertifiedReduction(
                name="test-lying",
                source=value,
                target=value,
                certificates=[],
            )

        lying = Transform(
            name="test-lying",
            source=SAT,
            target=SAT,
            guarantees=("a guarantee it never certifies",),
            apply_fn=bad_apply,
        )
        with pytest.raises(ReductionError, match="did not certify"):
            lying.apply(object())

    def test_stage_args_arity_mismatch(self):
        clique = get_transform("clique→csp")
        with pytest.raises(ReductionError, match="takes 2 arguments"):
            clique.stage_args("not-a-pair")
