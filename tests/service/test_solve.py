"""End-to-end `/solve`: CSP workloads through the service envelope."""

import asyncio

from repro.service import QueryService
from repro.service.client import ServiceClient

#: x≠y over {0,1} as an allowed-tuples constraint.
NEQ = [[0, 1], [1, 0]]

#: 2-colorable path x—y—z.
PATH_CONSTRAINTS = [
    {"scope": ["x", "y"], "allowed": NEQ},
    {"scope": ["y", "z"], "allowed": NEQ},
]

#: Odd cycle x—y—z—x: not 2-colorable.
TRIANGLE_CONSTRAINTS = PATH_CONSTRAINTS + [
    {"scope": ["z", "x"], "allowed": NEQ},
]


def run_service(test_coroutine, **service_kwargs):
    async def main():
        service = QueryService(**service_kwargs)
        host, port = await service.start()
        try:
            async with ServiceClient(host, port) as client:
                return await test_coroutine(service, client)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestSolveEndpoint:
    def test_satisfiable_instance_returns_a_checked_assignment(self):
        async def body(service, client):
            status, payload = await client.solve([0, 1], PATH_CONSTRAINTS)
            assert status == 200
            assert payload["satisfiable"] is True
            assert payload["method"] == "auto"
            assert payload["variables"] == ["x", "y", "z"]
            assert payload["ops"] > 0
            assignment = dict(
                (var, value) for var, value in payload["assignment"]
            )
            assert set(assignment) == {"x", "y", "z"}
            assert assignment["x"] != assignment["y"]
            assert assignment["y"] != assignment["z"]
            return None

        run_service(body)

    def test_unsatisfiable_instance_and_explicit_method(self):
        async def body(service, client):
            status, payload = await client.solve(
                [0, 1], TRIANGLE_CONSTRAINTS, method="backtracking"
            )
            assert status == 200
            assert payload["satisfiable"] is False
            assert payload["assignment"] is None
            assert payload["method"] == "backtracking"
            return None

        run_service(body)

    def test_explicit_variable_order_is_respected(self):
        async def body(service, client):
            status, payload = await client.solve(
                [0, 1], PATH_CONSTRAINTS, variables=["z", "y", "x"]
            )
            assert status == 200
            assert payload["variables"] == ["z", "y", "x"]
            return None

        run_service(body)

    def test_bad_requests_are_400(self):
        async def body(service, client):
            status, payload = await client.solve(
                [0, 1], PATH_CONSTRAINTS, method="oracle"
            )
            assert status == 400 and "oracle" in payload["error"]
            status, payload = await client.request(
                "POST", "/solve", {"domain": [0, 1]}
            )
            assert status == 400 and "constraints" in payload["error"]
            status, payload = await client.request(
                "POST", "/solve", {"constraints": PATH_CONSTRAINTS}
            )
            assert status == 400 and "domain" in payload["error"]
            return None

        run_service(body)

    def test_solve_shares_admission_and_observability(self):
        async def body(service, client):
            await client.solve([0, 1], PATH_CONSTRAINTS)
            await client.solve([0, 1], TRIANGLE_CONSTRAINTS, method="sat")
            metrics = await client.get_json("/metrics")
            route_mix = metrics["telemetry"]["route_mix"]
            assert route_mix.get("csp-auto") == 1
            assert route_mix.get("csp-sat") == 1
            summary = metrics["telemetry"]["endpoints"]["solve"]
            assert summary["count"] == 2
            # slow_ms=0 ⇒ solves land in the slow log like queries do.
            slowlog = await client.get_json("/slowlog")
            routes = {s["route"] for s in slowlog["slow_queries"]}
            assert {"csp-auto", "csp-sat"} <= routes
            return None

        run_service(body, slow_ms=0.0)
