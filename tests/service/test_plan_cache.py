"""Plan-cache keying: hits on repeats, invalidation on content change."""

import pytest

from repro.errors import InvalidInstanceError
from repro.relational.query import JoinQuery
from repro.service.plan_cache import PlanCache, plan_key


TRIANGLE = JoinQuery.triangle()
PATH = JoinQuery.path(3)


class TestPlanCache:
    def test_repeat_lookup_hits(self):
        cache = PlanCache(capacity=8)
        plan, hit = cache.get_or_build(
            TRIANGLE, None, "enumerate", "demo", "f1", "columnar"
        )
        assert not hit
        again, hit = cache.get_or_build(
            TRIANGLE, None, "enumerate", "demo", "f1", "columnar"
        )
        assert hit
        assert again is plan
        assert cache.hit_ratio() == 0.5

    def test_fingerprint_change_misses(self):
        cache = PlanCache(capacity=8)
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f1", "columnar")
        __, hit = cache.get_or_build(
            TRIANGLE, None, "enumerate", "demo", "f2", "columnar"
        )
        assert not hit
        assert cache.misses == 2

    def test_mode_free_and_backend_all_key(self):
        cache = PlanCache(capacity=16)
        cache.get_or_build(PATH, None, "enumerate", "demo", "f1", "columnar")
        variants = [
            (PATH, None, "boolean", "demo", "f1", "columnar"),
            (PATH, ("a1",), "enumerate", "demo", "f1", "columnar"),
            (PATH, None, "enumerate", "demo", "f1", "naive"),
            (PATH, None, "enumerate", "other", "f1", "columnar"),
        ]
        for args in variants:
            __, hit = cache.get_or_build(*args)
            assert not hit
        assert cache.misses == 1 + len(variants)
        assert cache.hits == 0

    def test_eviction_counts_and_respects_capacity(self):
        cache = PlanCache(capacity=2)
        for fingerprint in ("f1", "f2", "f3"):
            cache.get_or_build(
                TRIANGLE, None, "enumerate", "demo", fingerprint, "columnar"
            )
        assert len(cache) == 2
        assert cache.evictions == 1
        # The oldest entry is the evicted one.
        __, hit = cache.get_or_build(
            TRIANGLE, None, "enumerate", "demo", "f1", "columnar"
        )
        assert not hit

    def test_lru_touch_on_hit(self):
        cache = PlanCache(capacity=2)
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f1", "columnar")
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f2", "columnar")
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f1", "columnar")
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f3", "columnar")
        # f2 was least recently used and must be the evicted entry.
        __, hit = cache.get_or_build(
            TRIANGLE, None, "enumerate", "demo", "f1", "columnar"
        )
        assert hit

    def test_invalidate_database_drops_only_its_plans(self):
        cache = PlanCache(capacity=8)
        cache.get_or_build(TRIANGLE, None, "enumerate", "demo", "f1", "columnar")
        cache.get_or_build(PATH, None, "enumerate", "demo", "f1", "columnar")
        cache.get_or_build(PATH, None, "enumerate", "other", "f1", "columnar")
        assert cache.invalidate_database("demo") == 2
        assert len(cache) == 1

    def test_invalid_instances_raise_and_are_not_cached(self):
        cache = PlanCache(capacity=8)
        with pytest.raises(InvalidInstanceError):
            cache.get_or_build(
                TRIANGLE, ("a1",), "count", "demo", "f1", "columnar"
            )
        assert len(cache) == 0
        assert cache.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidInstanceError):
            PlanCache(capacity=0)

    def test_plan_key_is_stable_and_content_addressed(self):
        key_a = plan_key(TRIANGLE, TRIANGLE.attributes, "enumerate", "d", "f", "columnar")
        key_b = plan_key(TRIANGLE, TRIANGLE.attributes, "enumerate", "d", "f", "columnar")
        key_c = plan_key(TRIANGLE, TRIANGLE.attributes, "enumerate", "d", "g", "columnar")
        assert key_a == key_b
        assert key_a != key_c
        assert len(key_a) == 64
