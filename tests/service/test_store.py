"""DatabaseStore: fingerprints, persistence, validation."""

import pytest

from repro.errors import SchemaError
from repro.service.store import DatabaseStore, fingerprint_payload


EDGES = [[1, 2], [2, 3], [1, 3]]


def relations(tuples=EDGES):
    return [
        {"name": "R1", "attributes": ["a1", "a2"], "tuples": tuples},
        {"name": "R2", "attributes": ["a2", "a3"], "tuples": tuples},
    ]


class TestDatabaseStore:
    def test_register_and_get(self):
        store = DatabaseStore()
        fingerprint = store.register("demo", relations())
        assert len(fingerprint) == 64
        database = store.get("demo")
        assert sorted(r.name for r in database.relations()) == ["R1", "R2"]
        assert store.names() == ["demo"]

    def test_fingerprint_ignores_tuple_order(self):
        store_a, store_b = DatabaseStore(), DatabaseStore()
        fp_a = store_a.register("d", relations([[1, 2], [3, 4]]))
        fp_b = store_b.register("d", relations([[3, 4], [1, 2]]))
        assert fp_a == fp_b

    def test_reregistration_changes_fingerprint(self):
        store = DatabaseStore()
        before = store.register("demo", relations())
        after = store.register("demo", relations([[5, 6]]))
        assert before != after
        assert store.fingerprint("demo") == after

    def test_mutation_rehashes_fingerprint(self):
        store = DatabaseStore()
        before = store.register("demo", relations())
        database = store.get("demo")
        relation = next(iter(database.relations()))
        relation.add((9, 9))
        after = store.fingerprint("demo")
        assert after != before

    def test_unknown_database_raises(self):
        store = DatabaseStore()
        with pytest.raises(SchemaError):
            store.get("missing")
        with pytest.raises(SchemaError):
            store.fingerprint("missing")

    def test_bad_names_and_payloads_rejected(self):
        store = DatabaseStore()
        with pytest.raises(SchemaError):
            store.register("", relations())
        with pytest.raises(SchemaError):
            store.register("a/b", relations())
        with pytest.raises(SchemaError):
            store.register("demo", [])
        with pytest.raises(SchemaError):
            store.register("demo", [{"name": "R"}])
        with pytest.raises(SchemaError):
            DatabaseStore(backend="sqlite")

    def test_persistence_roundtrip(self, tmp_path):
        directory = tmp_path / "catalog"
        store = DatabaseStore(directory=directory)
        fingerprint = store.register("demo", relations())
        reloaded = DatabaseStore(directory=directory)
        assert reloaded.names() == ["demo"]
        assert reloaded.fingerprint("demo") == fingerprint
        assert sorted(
            reloaded.get("demo").relation("R1").tuples
        ) == sorted(store.get("demo").relation("R1").tuples)

    def test_describe_lists_sizes_and_fingerprints(self):
        store = DatabaseStore()
        store.register("demo", relations())
        described = store.describe()
        assert described["demo"]["relations"] == {"R1": 3, "R2": 3}
        assert described["demo"]["backend"] == "columnar"
        assert len(described["demo"]["fingerprint"]) == 64
