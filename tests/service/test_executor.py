"""Units for the sharded executor: shard math, the worker replica
protocol (driven in-process), and real spawned-pool dispatch."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.relational.query import Atom, JoinQuery
from repro.relational.router import execute_route
from repro.service.executor import (
    _SHARD,
    ShardedExecutor,
    _apply_drop,
    _apply_register,
    _worker_run_query,
    canonical_answers,
    evaluate_core,
    shard_for_fingerprint,
)
from repro.service.plan_cache import PlanCache
from repro.service.store import DatabaseStore, database_from_payload

EDGES = [[1, 2], [2, 3], [1, 3], [3, 4], [4, 1]]

RELATIONS = [
    {"name": name, "attributes": list(attrs), "tuples": EDGES}
    for name, attrs in (
        ("R1", ("a1", "a2")),
        ("R2", ("a1", "a3")),
        ("R3", ("a2", "a3")),
    )
]

TRIANGLE_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R2", "attributes": ["a1", "a3"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]


def build_spec(store, name, atoms, mode="enumerate", free=None):
    """The same evaluation spec ``_handle_query`` builds, minus HTTP."""
    query = JoinQuery(
        Atom(a["relation"], tuple(a["attributes"])) for a in atoms
    )
    fingerprint = store.fingerprint(name)
    plan, __ = PlanCache().get_or_build(
        query, free, mode, name, fingerprint, store.backend
    )
    return {
        "atoms": atoms,
        "free": list(plan.free),
        "mode": mode,
        "route": plan.decision.route,
        "reason": plan.decision.reason,
        "database": name,
        "fingerprint": fingerprint,
    }


class TestShardPlacement:
    def test_deterministic_and_in_range(self):
        fingerprints = [f"{value:064x}" for value in (0, 1, 7, 2**63, 2**255)]
        for workers in (1, 2, 4, 7):
            for fingerprint in fingerprints:
                shard = shard_for_fingerprint(fingerprint, workers)
                assert 0 <= shard < workers
                assert shard == shard_for_fingerprint(fingerprint, workers)

    def test_one_worker_owns_everything(self):
        assert shard_for_fingerprint("ab" * 32, 1) == 0

    def test_nonpositive_worker_count_rejected(self):
        with pytest.raises(ReproError):
            shard_for_fingerprint("00" * 32, 0)
        with pytest.raises(ReproError):
            ShardedExecutor(DatabaseStore(), workers=0)


class TestEvaluateCore:
    def test_matches_direct_execution(self):
        store = DatabaseStore()
        store.register("demo", RELATIONS)
        spec = build_spec(store, "demo", TRIANGLE_ATOMS)
        core = evaluate_core(store.get("demo"), spec, track="t1")
        direct = execute_route(
            JoinQuery(
                Atom(a["relation"], tuple(a["attributes"]))
                for a in TRIANGLE_ATOMS
            ),
            database_from_payload(RELATIONS),
        )
        assert core["route"] == direct.decision.route == spec["route"]
        assert core["ops"] == direct.ops
        assert core["answers"] == canonical_answers(direct.relation.tuples)
        assert core["metrics"]["counters"]["route.wcoj"] == 1
        assert core["spans"]

    def test_count_and_boolean_modes_fill_their_fields(self):
        store = DatabaseStore()
        store.register("demo", RELATIONS)
        count_core = evaluate_core(
            store.get("demo"),
            build_spec(store, "demo", TRIANGLE_ATOMS, mode="count"),
            track="t2",
        )
        bool_core = evaluate_core(
            store.get("demo"),
            build_spec(store, "demo", TRIANGLE_ATOMS, mode="boolean"),
            track="t3",
        )
        assert isinstance(count_core["count"], int)
        assert "answers" not in count_core
        assert bool_core["nonempty"] is True


class TestWorkerProtocolInProcess:
    """Drive the worker-side functions directly — no pool needed to
    cover the replica/staleness state machine."""

    def teardown_method(self):
        _SHARD.databases.clear()

    def test_register_query_and_drop_cycle(self):
        store = DatabaseStore()
        store.register("demo", RELATIONS)
        # dispatch() stamps the worker track onto the spec it ships.
        spec = dict(build_spec(store, "demo", TRIANGLE_ATOMS), track="r1@w0")
        payload = store.canonical_payload("demo")
        assert _apply_register("demo", payload, spec["fingerprint"], "columnar") == (
            spec["fingerprint"]
        )
        result = _worker_run_query(spec)
        assert "stale" not in result
        assert result["route"] == spec["route"]
        assert result["answers"] == evaluate_core(
            store.get("demo"), spec, track="x"
        )["answers"]
        assert _apply_drop("demo") is True
        assert _apply_drop("demo") is False

    def test_missing_or_mismatched_replica_reports_stale(self):
        store = DatabaseStore()
        store.register("demo", RELATIONS)
        spec = dict(build_spec(store, "demo", TRIANGLE_ATOMS), track="r2@w0")
        assert _worker_run_query(spec) == {"stale": True}
        _apply_register(
            "demo", store.canonical_payload("demo"), "0" * 64, "columnar"
        )
        assert _worker_run_query(spec) == {"stale": True}


class TestShardedDispatch:
    """One spawned-pool lifecycle test: start, replicate, dispatch,
    re-register (fingerprint change), forget, shutdown."""

    def test_dispatch_lifecycle(self):
        async def main():
            store = DatabaseStore()
            store.register("demo", RELATIONS)
            executor = ShardedExecutor(store, workers=2)
            spec = build_spec(store, "demo", TRIANGLE_ATOMS)
            # Not started: dispatch degrades to None (inline fallback).
            assert executor.started is False
            assert await executor.dispatch(spec, "r0") is None
            await executor.start()
            try:
                assert executor.started is True
                owner = executor.shard_for(spec["fingerprint"])
                payload = executor.to_payload()
                assert payload["shards"][str(owner)]["databases"] == ["demo"]

                inline = evaluate_core(store.get("demo"), spec, track="r1")
                core = await executor.dispatch(spec, "r1")
                assert core is not None
                assert core["shard"] == owner
                assert core["answers"] == inline["answers"]
                assert core["ops"] == inline["ops"]

                # Re-registration changes the fingerprint; a spec built
                # against the new content replicates on demand and the
                # old assignment is replaced.
                store.register(
                    "demo", [dict(r, tuples=EDGES + [[9, 9]]) for r in RELATIONS]
                )
                fresh = build_spec(store, "demo", TRIANGLE_ATOMS)
                assert fresh["fingerprint"] != spec["fingerprint"]
                fresh_core = await executor.dispatch(fresh, "r2")
                assert fresh_core is not None
                assert fresh_core["answers"] != core["answers"]
                new_owner = executor.shard_for(fresh["fingerprint"])
                payload = executor.to_payload()
                owners = [
                    shard
                    for shard, view in payload["shards"].items()
                    if view["databases"]
                ]
                assert owners == [str(new_owner)]

                await executor.forget("demo")
                assert all(
                    view["databases"] == []
                    for view in executor.to_payload()["shards"].values()
                )
                counters = executor.registry.to_payload()["counters"]
                assert counters["executor.dispatched"] == 2
                assert counters["executor.replications"] >= 2
            finally:
                executor.shutdown()
            assert executor.started is False
            # After shutdown dispatch is a clean inline fallback again.
            assert await executor.dispatch(spec, "r3") is None

        asyncio.run(main())
