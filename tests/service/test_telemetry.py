"""Windowed latency histograms, the slow-query log, the request ring."""

import pytest

from repro.errors import InvalidInstanceError
from repro.service.telemetry import (
    LATENCY_BUCKETS_MS,
    RequestRecord,
    ServiceTelemetry,
    WindowedHistogram,
)


def record(rid, *, endpoint="query", route="wcoj", status=200, ops=10, ms=1.0):
    return RequestRecord(
        request_id=rid,
        endpoint=endpoint,
        route=route,
        status=status,
        ops=ops,
        elapsed_ms=ms,
        detail=f"detail-{rid}",
    )


class TestWindowedHistogram:
    def test_empty_percentile_is_zero(self):
        hist = WindowedHistogram("lat", window=4)
        assert hist.percentile(0.99) == 0.0
        assert hist.count == 0

    def test_invalid_quantile_rejected(self):
        hist = WindowedHistogram("lat", window=4)
        with pytest.raises(InvalidInstanceError):
            hist.percentile(0.0)

    def test_rotation_keeps_between_one_and_two_windows(self):
        hist = WindowedHistogram("lat", window=4)
        for i in range(10):
            hist.observe(float(i))
            assert hist.count <= 8
        # 10 observations with window 4: previous holds 4, current 2.
        assert hist.count == 6

    def test_old_traffic_ages_out_of_percentiles(self):
        hist = WindowedHistogram("lat", window=4)
        for _ in range(8):
            hist.observe(2000.0)  # overflow bucket
        for _ in range(8):
            hist.observe(0.1)
        # Two full rotations of fast traffic: the slow epoch is gone.
        assert hist.percentile(0.99) <= LATENCY_BUCKETS_MS[0]

    def test_payload_counts_match_window(self):
        hist = WindowedHistogram("lat", window=8)
        for value in (0.1, 3.0, 700.0):
            hist.observe(value)
        payload = hist.to_payload()
        assert payload["count"] == 3
        assert payload["window"] == 8
        assert sum(payload["counts"]) == 3
        assert len(payload["counts"]) == len(payload["buckets"]) + 1


class TestServiceTelemetry:
    def test_counters_latency_and_route_mix(self):
        telemetry = ServiceTelemetry(slow_ms=50.0)
        telemetry.observe_request(record("r1", route="wcoj", ms=1.0))
        telemetry.observe_request(record("r2", route="factorized", ms=2.0))
        telemetry.observe_request(
            record("r3", endpoint="metrics", route="", ms=0.1)
        )
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["requests.total"] == 3
        assert snapshot["counters"]["requests.endpoint.query"] == 2
        assert snapshot["route_mix"] == {"factorized": 1, "wcoj": 1}
        assert snapshot["endpoints"]["query"]["count"] == 2
        assert snapshot["routes"]["wcoj"]["count"] == 1
        assert set(snapshot["endpoints"]["query"]) == {
            "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
        }

    def test_slow_log_only_for_slow_queries(self):
        telemetry = ServiceTelemetry(slow_ms=10.0)
        telemetry.observe_request(record("fast", ms=1.0))
        telemetry.observe_request(record("slow", ms=25.0, ops=999))
        telemetry.observe_request(
            record("slow-metrics", endpoint="metrics", route="", ms=500.0)
        )
        entries = [s.to_payload() for s in telemetry.slow_log]
        assert [e["request_id"] for e in entries] == ["slow"]
        assert entries[0]["ops"] == 999

    def test_error_and_rejected_counters(self):
        telemetry = ServiceTelemetry()
        telemetry.observe_request(record("bad", status=400, route=""))
        telemetry.observe_request(record("boom", status=503, route=""))
        counters = telemetry.snapshot()["counters"]
        assert counters["requests.rejected"] == 1
        assert counters["requests.errors"] == 1

    def test_request_ring_evicts_oldest(self):
        telemetry = ServiceTelemetry(ring_size=2)
        for rid in ("r1", "r2", "r3"):
            telemetry.observe_request(record(rid))
        assert telemetry.request("r1") is None
        assert telemetry.request("r3") is not None
        assert [r.request_id for r in telemetry.recent_requests()] == ["r2", "r3"]
