"""The semiring field end to end: keying, caching, invalidation.

Satellite regression suite: the plan cache and the result cache key on
the requested semiring (two semirings over the same query never share
an entry), repeats are served from cache with the right aggregate
value, and re-registering the database eagerly invalidates both caches
so a stale aggregate can never be replayed.
"""

import asyncio

from repro.relational.query import JoinQuery
from repro.service import QueryService
from repro.service.client import ServiceClient
from repro.service.plan_cache import plan_key

EDGES = [[1, 2], [2, 3], [1, 3], [3, 4], [4, 1]]

RELATIONS = [
    {"name": name, "attributes": list(attrs), "tuples": EDGES}
    for name, attrs in (
        ("R1", ("a1", "a2")),
        ("R2", ("a1", "a3")),
        ("R3", ("a2", "a3")),
    )
]

TRIANGLE_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R2", "attributes": ["a1", "a3"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]


def run_service(test_coroutine, **service_kwargs):
    async def main():
        service = QueryService(**service_kwargs)
        host, port = await service.start()
        try:
            async with ServiceClient(host, port) as client:
                await client.register("demo", RELATIONS)
                return await test_coroutine(service, host, port, client)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestPlanKeySemiring:
    def test_semiring_distinguishes_keys(self):
        query = JoinQuery.triangle()
        args = (query, query.attributes, "aggregate", "demo", "f1", "columnar")
        keys = {plan_key(*args, semiring=name) for name in (
            None, "boolean", "counting", "minplus", "provenance"
        )}
        assert len(keys) == 5

    def test_semiring_keys_are_stable(self):
        query = JoinQuery.triangle()
        args = (query, query.attributes, "aggregate", "demo", "f1", "columnar")
        assert plan_key(*args, semiring="minplus") == plan_key(
            *args, semiring="minplus"
        )


class TestServiceSemiringCaching:
    def test_per_semiring_cache_entries_and_eager_invalidation(self):
        async def body(service, host, port, client):
            # Distinct plan-cache keys per semiring over the same query.
            payloads = {}
            for name in ("counting", "minplus", "provenance"):
                __, payload = await client.query(
                    "demo", TRIANGLE_ATOMS, mode="aggregate", semiring=name
                )
                assert payload["semiring"] == name
                assert payload["plan_cache"]["hit"] is False
                assert payload["result_cache"]["hit"] is False
                payloads[name] = payload
            keys = {p["plan_cache"]["key"] for p in payloads.values()}
            assert len(keys) == 3

            # Repeats hit both caches and replay the correct value.
            __, again = await client.query(
                "demo", TRIANGLE_ATOMS, mode="aggregate", semiring="minplus"
            )
            assert again["plan_cache"]["hit"] is True
            assert again["result_cache"]["hit"] is True
            assert again["aggregate"] == payloads["minplus"]["aggregate"]
            assert again["aggregate"]["cost"] == 3.0

            # Re-registration eagerly invalidates every semiring's entry;
            # the replayed value reflects the new data, not the old cache.
            await client.register(
                "demo",
                [dict(r, tuples=[[1, 2], [2, 3], [1, 3]]) for r in RELATIONS],
            )
            for name, old in payloads.items():
                __, fresh = await client.query(
                    "demo", TRIANGLE_ATOMS, mode="aggregate", semiring=name
                )
                assert fresh["plan_cache"]["hit"] is False
                assert fresh["result_cache"]["hit"] is False
                assert fresh["plan_cache"]["key"] != old["plan_cache"]["key"]
            __, count = await client.query(
                "demo", TRIANGLE_ATOMS, mode="aggregate", semiring="counting"
            )
            assert count["aggregate"] == 1
            return None

        run_service(body, result_cache_capacity=16)

    def test_default_semiring_is_counting_and_mix_is_tracked(self):
        async def body(service, host, port, client):
            __, payload = await client.query(
                "demo", TRIANGLE_ATOMS, mode="aggregate"
            )
            assert payload["semiring"] == "counting"
            assert payload["aggregate"] == 1
            await client.query(
                "demo", TRIANGLE_ATOMS, mode="aggregate", semiring="boolean"
            )
            metrics = await client.get_json("/metrics")
            assert metrics["telemetry"]["semiring_mix"] == {
                "boolean": 1,
                "counting": 1,
            }
            return None

        run_service(body)

    def test_semiring_errors_are_400(self):
        async def body(service, host, port, client):
            status, payload = await client.query(
                "demo", TRIANGLE_ATOMS, semiring="counting"
            )
            assert status == 400 and "aggregate" in payload["error"]
            status, payload = await client.query(
                "demo", TRIANGLE_ATOMS, mode="aggregate", semiring="nope"
            )
            assert status == 400 and "unknown semiring" in payload["error"]
            status, payload = await client.query(
                "demo",
                TRIANGLE_ATOMS,
                mode="aggregate",
                free=["a1"],
                semiring="counting",
            )
            assert status == 400 and "projections" in payload["error"]
            return None

        run_service(body)
