"""The dichotomy router: decisions, answers, and route instrumentation."""

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError
from repro.generators.agm import uniform_random_database
from repro.observability.metrics import MetricsRegistry, activate_metrics
from repro.observability.tracing import TraceContext, activate
from repro.relational.algebra import project
from repro.relational.factorized import factorize
from repro.relational.query import JoinQuery
from repro.relational.router import decide_route, execute_route, run_route
from repro.relational.wcoj import generic_join


def db_for(query, seed=3, size=20, domain=5):
    return uniform_random_database(query, size, domain, seed=seed)


class TestDecideRoute:
    def test_enumerate_dichotomy(self):
        path = JoinQuery.path(3)
        assert decide_route(path).route == "factorized"
        # a2 alone is connected but not free-connex for the 3-path.
        assert decide_route(path, free=("a2",)).route in ("factorized", "yannakakis")
        assert decide_route(JoinQuery.triangle()).route == "wcoj"

    def test_star_projection_routes_yannakakis(self):
        star = JoinQuery.star(3)
        leaves = tuple(a for a in star.attributes if a != "c")
        decision = decide_route(star, free=leaves)
        assert decision.route == "yannakakis"
        assert "not free-connex" in decision.reason

    def test_count_dichotomy(self):
        assert decide_route(JoinQuery.path(3), mode="count").route == "factorized"
        assert (
            decide_route(JoinQuery.triangle(), mode="count").route == "treewidth-dp"
        )

    def test_boolean_dichotomy(self):
        assert decide_route(JoinQuery.path(3), mode="boolean").route == "yannakakis"
        assert decide_route(JoinQuery.triangle(), mode="boolean").route == "wcoj"

    def test_count_with_projection_rejected(self):
        with pytest.raises(InvalidInstanceError):
            decide_route(JoinQuery.triangle(), free=("a1",), mode="count")

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidInstanceError):
            decide_route(JoinQuery.triangle(), mode="explain")


class TestExecuteRoute:
    @pytest.mark.parametrize("shape", ["triangle", "path", "star"])
    def test_enumerate_matches_flat_reference(self, shape):
        query = {
            "triangle": JoinQuery.triangle,
            "path": lambda: JoinQuery.path(3),
            "star": lambda: JoinQuery.star(3),
        }[shape]()
        database = db_for(query)
        answer = execute_route(query, database)
        reference = generic_join(query, database)
        assert sorted(answer.relation.tuples) == sorted(reference.tuples)
        assert answer.ops > 0
        assert answer.count is None and answer.nonempty is None

    def test_projection_matches_flat_reference(self):
        star = JoinQuery.star(3)
        database = db_for(star)
        free = tuple(a for a in star.attributes if a != "c")
        answer = execute_route(star, database, free=free)
        reference = project(generic_join(star, database), free)
        assert sorted(answer.relation.tuples) == sorted(reference.tuples)
        assert answer.decision.route == "yannakakis"

    def test_count_routes_agree_with_enumeration(self):
        for query in (JoinQuery.path(3), JoinQuery.triangle()):
            database = db_for(query)
            answer = execute_route(query, database, mode="count")
            assert answer.count == len(generic_join(query, database).tuples)

    def test_boolean_routes_agree_with_enumeration(self):
        for query in (JoinQuery.path(3), JoinQuery.triangle()):
            database = db_for(query)
            answer = execute_route(query, database, mode="boolean")
            assert answer.nonempty == bool(generic_join(query, database).tuples)

    def test_cached_decision_replay_is_identical(self):
        query = JoinQuery.path(4)
        database = db_for(query)
        decision = decide_route(query)
        cold = execute_route(query, database)
        warm = run_route(query, database, decision)
        assert sorted(cold.relation.tuples) == sorted(warm.relation.tuples)
        assert cold.decision == warm.decision


class TestRouteInstrumentation:
    def test_route_counter_and_span_on_ambient_scopes(self):
        query = JoinQuery.triangle()
        database = db_for(query)
        registry = MetricsRegistry()
        trace = TraceContext(track="r1")
        with activate(trace), activate_metrics(registry):
            answer = execute_route(query, database)
        counters = registry.to_payload()["counters"]
        route_counts = {k: v for k, v in counters.items() if k.startswith("route.")}
        assert route_counts == {"route.wcoj": 1}
        spans = trace.to_payload()
        route_spans = [s for s in spans if s["name"] == "route"]
        assert len(route_spans) == 1
        assert route_spans[0]["attributes"]["route"] == "wcoj"
        assert route_spans[0]["track"] == "r1"
        assert answer.ops > 0

    def test_no_ambient_scope_is_a_no_op(self):
        query = JoinQuery.path(3)
        database = db_for(query)
        answer = execute_route(query, database)
        assert answer.decision.route == "factorized"

    def test_ops_match_engine_charges(self):
        query = JoinQuery.path(3)
        database = db_for(query)
        counter = CostCounter()
        answer = execute_route(query, database, counter=counter)
        direct = CostCounter()
        factorize(query, database, counter=direct).materialize()
        assert answer.ops == counter.total
        assert answer.ops >= direct.total
