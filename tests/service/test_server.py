"""End-to-end service tests over a real asyncio server on port 0."""

import asyncio
import json

from repro.counting import CostCounter
from repro.relational.query import Atom, JoinQuery
from repro.relational.router import execute_route
from repro.service import QueryService
from repro.service.client import ServiceClient
from repro.service.server import canonical_answers, strip_volatile
from repro.service.store import database_from_payload

EDGES = [[1, 2], [2, 3], [1, 3], [3, 4], [4, 1]]

RELATIONS = [
    {"name": name, "attributes": list(attrs), "tuples": EDGES}
    for name, attrs in (
        ("R1", ("a1", "a2")),
        ("R2", ("a1", "a3")),
        ("R3", ("a2", "a3")),
    )
]

TRIANGLE_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R2", "attributes": ["a1", "a3"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]

PATH_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]


def route_counts(payload):
    """The route.* counters of one response's request-scoped metrics."""
    return {
        name: value
        for name, value in payload["metrics"]["counters"].items()
        if name.startswith("route.")
    }


def run_service(test_coroutine, **service_kwargs):
    """Boot a service on port 0, run the test body, tear down."""

    async def main():
        service = QueryService(**service_kwargs)
        host, port = await service.start()
        try:
            async with ServiceClient(host, port) as client:
                await client.register("demo", RELATIONS)
                return await test_coroutine(service, host, port, client)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestQueryEndpoint:
    def test_response_carries_route_ops_and_identical_answers(self):
        async def body(service, host, port, client):
            status, payload = await client.query("demo", TRIANGLE_ATOMS)
            assert status == 200
            assert payload["route"] == "wcoj"
            assert "cyclic" in payload["reason"]
            assert payload["ops"] > 0
            database = database_from_payload(RELATIONS)
            direct = execute_route(
                JoinQuery(
                    Atom(a["relation"], tuple(a["attributes"]))
                    for a in TRIANGLE_ATOMS
                ),
                database,
            )
            assert payload["answers"] == canonical_answers(direct.relation.tuples)
            # The response's request-scoped metrics show exactly this
            # request's route decision (plus the engine's own counters).
            assert route_counts(payload) == {"route.wcoj": 1}
            return payload

        payload = run_service(body)
        assert payload["request_id"].startswith("r")

    def test_count_and_boolean_modes(self):
        async def body(service, host, port, client):
            __, count_payload = await client.query(
                "demo", TRIANGLE_ATOMS, mode="count"
            )
            __, bool_payload = await client.query(
                "demo", PATH_ATOMS, mode="boolean"
            )
            assert count_payload["route"] == "treewidth-dp"
            assert bool_payload["route"] == "yannakakis"
            assert isinstance(count_payload["count"], int)
            assert bool_payload["nonempty"] is True
            return None

        run_service(body)

    def test_plan_cache_hit_on_repeat_and_invalidation_on_reregister(self):
        async def body(service, host, port, client):
            __, first = await client.query("demo", PATH_ATOMS)
            __, second = await client.query("demo", PATH_ATOMS)
            assert first["plan_cache"]["hit"] is False
            assert second["plan_cache"]["hit"] is True
            assert first["plan_cache"]["key"] == second["plan_cache"]["key"]
            assert first["answers"] == second["answers"]
            await client.register(
                "demo",
                [dict(r, tuples=EDGES + [[9, 9]]) for r in RELATIONS],
            )
            __, third = await client.query("demo", PATH_ATOMS)
            assert third["plan_cache"]["hit"] is False
            assert third["answers"] != second["answers"]
            return None

        run_service(body)

    def test_errors_are_400_and_unknown_endpoint_404(self):
        async def body(service, host, port, client):
            status, payload = await client.query("missing", PATH_ATOMS)
            assert status == 400 and "missing" in payload["error"]
            status, payload = await client.query("demo", PATH_ATOMS, mode="nope")
            assert status == 400
            status, payload = await client.query(
                "demo", TRIANGLE_ATOMS, free=["a1"], mode="count"
            )
            assert status == 400 and "projections" in payload["error"]
            status, __ = await client.request("GET", "/nope")
            assert status == 404
            metrics = await client.get_json("/metrics")
            # Three 400s plus the 404 all count as rejected.
            assert metrics["telemetry"]["counters"]["requests.rejected"] == 4
            return None

        run_service(body)


class TestRequestScopedIsolation:
    def test_concurrent_requests_never_observe_each_other(self):
        async def body(service, host, port, client):
            # Solo run establishes each query's op cost.
            __, solo_tri = await client.query("demo", TRIANGLE_ATOMS)
            __, solo_path = await client.query("demo", PATH_ATOMS)

            async def one(atoms):
                async with ServiceClient(host, port) as mine:
                    return await mine.query("demo", atoms)

            # debug_hold_ms keeps both requests in flight simultaneously.
            results = await asyncio.gather(
                *(one(TRIANGLE_ATOMS) for _ in range(2)),
                *(one(PATH_ATOMS) for _ in range(2)),
            )
            for status, payload in results[:2]:
                assert status == 200
                assert route_counts(payload) == {"route.wcoj": 1}
                assert payload["ops"] == solo_tri["ops"]
            for status, payload in results[2:]:
                assert status == 200
                assert route_counts(payload) == {"route.factorized": 1}
                assert payload["ops"] == solo_path["ops"]
            return None

        run_service(body, max_concurrent=4, debug_hold_ms=30.0)

    def test_trace_export_keeps_concurrent_requests_on_distinct_tracks(self):
        async def body(service, host, port, client):
            async def one(atoms):
                async with ServiceClient(host, port) as mine:
                    return await mine.query("demo", atoms)

            results = await asyncio.gather(
                one(TRIANGLE_ATOMS), one(PATH_ATOMS)
            )
            rids = [payload["request_id"] for __, payload in results]
            # Per-request export: one thread, named after the request.
            status, document = await client.request("GET", f"/trace/{rids[0]}")
            assert status == 200
            names = [
                e["args"]["name"]
                for e in document["traceEvents"]
                if e["name"] == "thread_name"
            ]
            assert names == [f"{rids[0]} (ok) · {rids[0]}"]
            # Merged export: one tid per request, span trees intact.
            status, merged = await client.request("GET", "/trace")
            assert status == 200
            tids_by_track = {}
            for event in merged["traceEvents"]:
                if event["name"] == "thread_name" and "·" in event["args"]["name"]:
                    track = event["args"]["name"].split("·")[-1].strip()
                    tids_by_track[track] = event["tid"]
            assert set(rids) <= set(tids_by_track)
            assert len({tids_by_track[r] for r in rids}) == 2
            route_events = [
                e for e in merged["traceEvents"] if e.get("name") == "route"
            ]
            assert {e["tid"] for e in route_events} >= {
                tids_by_track[r] for r in rids
            }
            status, __ = await client.request("GET", "/trace/r999999")
            assert status == 404
            return None

        run_service(body, max_concurrent=4, debug_hold_ms=20.0)


class TestAdmissionControl:
    def test_saturated_service_sheds_with_503(self):
        # Six *distinct* queries: identical ones would coalesce onto a
        # single admission slot instead of contending for it.
        variants = [
            {"atoms": PATH_ATOMS},
            {"atoms": PATH_ATOMS, "free": ["a1"]},
            {"atoms": PATH_ATOMS, "free": ["a2"]},
            {"atoms": PATH_ATOMS, "free": ["a3"]},
            {"atoms": PATH_ATOMS, "free": ["a1", "a2"]},
            {"atoms": PATH_ATOMS, "free": ["a2", "a3"]},
        ]

        async def body(service, host, port, client):
            async def one(spec):
                async with ServiceClient(host, port) as mine:
                    return await mine.query(
                        "demo", spec["atoms"], free=spec.get("free")
                    )

            results = await asyncio.gather(*(one(v) for v in variants))
            statuses = sorted(status for status, __ in results)
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1
            shed_payloads = [p for s, p in results if s == 503]
            assert all(p["shed"] for p in shed_payloads)
            metrics = await client.get_json("/metrics")
            counters = metrics["telemetry"]["counters"]
            assert counters["admission.shed"] == statuses.count(503)
            assert metrics["admission"]["max_concurrent"] == 1
            return None

        run_service(body, max_concurrent=1, queue_limit=0, debug_hold_ms=80.0)

    def test_identical_saturating_requests_coalesce_instead_of_shedding(self):
        async def body(service, host, port, client):
            async def one():
                async with ServiceClient(host, port) as mine:
                    return await mine.query("demo", PATH_ATOMS)

            results = await asyncio.gather(*(one() for _ in range(6)))
            assert [status for status, __ in results] == [200] * 6
            bodies = {
                json.dumps(strip_volatile(payload), sort_keys=True)
                for __, payload in results
            }
            assert len(bodies) == 1
            assert sum(p["coalesced"] for __, p in results) == 5
            metrics = await client.get_json("/metrics")
            counters = metrics["telemetry"]["counters"]
            assert counters["evaluations.total"] == 1
            assert counters["coalesce.followers"] == 5
            assert counters.get("admission.shed", 0) == 0
            return None

        run_service(body, max_concurrent=1, queue_limit=0, debug_hold_ms=80.0)


class TestObservabilityEndpoints:
    def test_healthz_metrics_slowlog_dashboard(self):
        async def body(service, host, port, client):
            await client.query("demo", TRIANGLE_ATOMS)
            await client.query("demo", PATH_ATOMS)
            health = await client.get_json("/healthz")
            assert health["status"] == "ok" and health["databases"] == 1
            metrics = await client.get_json("/metrics")
            assert metrics["plan_cache"]["misses"] == 2
            assert metrics["telemetry"]["route_mix"] == {
                "factorized": 1,
                "wcoj": 1,
            }
            summary = metrics["telemetry"]["endpoints"]["query"]
            assert summary["count"] == 2
            assert summary["p99_ms"] >= summary["p50_ms"] >= 0.0
            # slow_ms=0 ⇒ every query lands in the slow log.
            slowlog = await client.get_json("/slowlog")
            assert len(slowlog["slow_queries"]) == 2
            assert {s["route"] for s in slowlog["slow_queries"]} == {
                "factorized",
                "wcoj",
            }
            status, text = await client.request("GET", "/dashboard?format=text")
            assert status == 200
            assert "p99" in text and "route mix" in text and "wcoj" in text
            status, html_doc = await client.request("GET", "/dashboard")
            assert status == 200
            assert "<table>" in html_doc and "p99" in html_doc
            assert "factorized" in html_doc
            return None

        run_service(body, slow_ms=0.0)
