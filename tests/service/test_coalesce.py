"""Units for single-flight coalescing and the bounded result cache."""

import asyncio

import pytest

from repro.errors import InvalidInstanceError
from repro.service.coalesce import ResultCache, SingleFlight
from repro.service.plan_cache import BoundedLruCache


def counters(flight):
    return flight.registry.to_payload().get("counters", {})


class TestSingleFlight:
    def test_concurrent_identical_keys_share_one_evaluation(self):
        async def main():
            flight = SingleFlight()
            calls = []
            release = asyncio.Event()

            async def thunk():
                calls.append(1)
                await release.wait()
                return {"answer": 42}

            async def one():
                return await flight.run("k", thunk)

            tasks = [asyncio.ensure_future(one()) for _ in range(5)]
            await asyncio.sleep(0)  # let the leader start and register
            assert flight.inflight == 1
            release.set()
            results = await asyncio.gather(*tasks)
            assert calls == [1]
            values = [value for value, __ in results]
            assert all(value is values[0] for value in values)
            assert sorted(coalesced for __, coalesced in results) == [
                False, True, True, True, True,
            ]
            assert counters(flight)["coalesce.leaders"] == 1
            assert counters(flight)["coalesce.followers"] == 4
            assert flight.inflight == 0

        asyncio.run(main())

    def test_sequential_runs_never_coalesce(self):
        async def main():
            flight = SingleFlight()

            async def thunk():
                return object()

            first, first_coalesced = await flight.run("k", thunk)
            second, second_coalesced = await flight.run("k", thunk)
            assert first_coalesced is False and second_coalesced is False
            assert first is not second
            assert counters(flight)["coalesce.leaders"] == 2
            assert "coalesce.followers" not in counters(flight)

        asyncio.run(main())

    def test_distinct_keys_run_independently(self):
        async def main():
            flight = SingleFlight()
            release = asyncio.Event()

            async def thunk_for(key):
                await release.wait()
                return key

            a = asyncio.ensure_future(flight.run("a", lambda: thunk_for("a")))
            b = asyncio.ensure_future(flight.run("b", lambda: thunk_for("b")))
            await asyncio.sleep(0)
            assert flight.inflight == 2
            release.set()
            assert (await a)[0] == "a"
            assert (await b)[0] == "b"
            assert counters(flight)["coalesce.leaders"] == 2

        asyncio.run(main())

    def test_leader_exception_reaches_every_follower(self):
        async def main():
            flight = SingleFlight()
            release = asyncio.Event()

            async def failing():
                await release.wait()
                raise InvalidInstanceError("shed")

            async def one():
                with pytest.raises(InvalidInstanceError):
                    await flight.run("k", failing)

            tasks = [asyncio.ensure_future(one()) for _ in range(3)]
            await asyncio.sleep(0)
            release.set()
            await asyncio.gather(*tasks)
            # The failed flight is gone; a retry starts fresh.
            assert flight.inflight == 0
            assert counters(flight)["coalesce.followers"] == 2

        asyncio.run(main())

    def test_payload_shape(self):
        async def main():
            flight = SingleFlight()

            async def thunk():
                return 1

            await flight.run("k", thunk)
            assert flight.to_payload() == {
                "inflight": 0,
                "leaders": 1,
                "followers": 0,
            }

        asyncio.run(main())


class TestResultCache:
    def test_get_put_and_hit_accounting(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", "demo", {"route": "wcoj", "ops": 7})
        assert cache.get("k1") == {"route": "wcoj", "ops": 7}
        payload = cache.to_payload()
        assert payload["hits"] == 1 and payload["misses"] == 1
        assert payload["size"] == 1 and payload["capacity"] == 4

    def test_invalidate_database_drops_only_that_name(self):
        cache = ResultCache(capacity=4)
        cache.put("k1", "demo", {"ops": 1})
        cache.put("k2", "demo", {"ops": 2})
        cache.put("k3", "other", {"ops": 3})
        assert cache.invalidate_database("demo") == 2
        assert cache.get("k1") is None and cache.get("k2") is None
        assert cache.get("k3") == {"ops": 3}

    def test_lru_eviction_prefers_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("k1", "demo", {"ops": 1})
        cache.put("k2", "demo", {"ops": 2})
        assert cache.get("k1") is not None  # refresh k1
        cache.put("k3", "demo", {"ops": 3})  # evicts k2, the LRU entry
        assert cache.get("k2") is None
        assert cache.get("k1") is not None and cache.get("k3") is not None
        assert cache.to_payload()["evictions"] == 1


class TestBoundedLruCacheBase:
    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidInstanceError):
            BoundedLruCache(capacity=0)

    def test_none_values_are_rejected(self):
        cache = BoundedLruCache(capacity=2)
        with pytest.raises(InvalidInstanceError):
            cache.insert("k", None)

    def test_drop_where_counts_removals(self):
        cache = BoundedLruCache(capacity=8)
        for index in range(4):
            cache.insert(f"k{index}", index)
        removed = cache.drop_where(lambda __, value: value % 2 == 0)
        assert removed == 2
        assert cache.lookup("k1") == 1 and cache.lookup("k3") == 3
