"""Tests for relational algebra primitives and pairwise join plans."""

import pytest

from repro.counting import CostCounter
from repro.errors import SchemaError
from repro.relational.algebra import project, select_equal, semijoin
from repro.relational.database import Database
from repro.relational.joins import (
    best_left_deep_peak,
    evaluate_left_deep,
    hash_join,
)
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation


class TestProject:
    def test_dedup(self):
        r = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
        p = project(r, ["a"])
        assert p.tuples == {(1,)}

    def test_reorder(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        p = project(r, ["b", "a"])
        assert p.tuples == {(2, 1)}


class TestSelect:
    def test_select_equal(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 2), (1, 4)])
        s = select_equal(r, "a", 1)
        assert s.tuples == {(1, 2), (1, 4)}


class TestSemijoin:
    def test_basic(self):
        left = Relation("L", ("a", "b"), [(1, 2), (3, 4)])
        right = Relation("R", ("b", "c"), [(2, 9)])
        out = semijoin(left, right)
        assert out.tuples == {(1, 2)}

    def test_no_shared_attributes_nonempty_right(self):
        left = Relation("L", ("a",), [(1,)])
        right = Relation("R", ("b",), [(9,)])
        assert semijoin(left, right).tuples == {(1,)}

    def test_no_shared_attributes_empty_right(self):
        left = Relation("L", ("a",), [(1,)])
        right = Relation("R", ("b",))
        assert semijoin(left, right).tuples == set()


class TestHashJoin:
    def test_natural_join(self):
        r = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
        s = Relation("S", ("b", "c"), [(2, 7), (3, 8), (9, 9)])
        out = hash_join(r, s)
        assert out.attributes == ("a", "b", "c")
        assert out.tuples == {(1, 2, 7), (1, 3, 8)}

    def test_cross_product_when_disjoint(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(8,), (9,)])
        out = hash_join(r, s)
        assert len(out) == 4

    def test_join_on_all_attributes_is_intersection(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        s = Relation("S", ("a", "b"), [(1, 2), (5, 6)])
        out = hash_join(r, s)
        assert out.tuples == {(1, 2)}

    def test_counter_charged(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("a",), [(1,)])
        counter = CostCounter()
        hash_join(r, s, counter)
        assert counter.total >= 2


def triangle_db(tuples1, tuples2, tuples3) -> Database:
    return Database(
        [
            Relation("R1", ("x", "y"), tuples1),
            Relation("R2", ("x", "y"), tuples2),
            Relation("R3", ("x", "y"), tuples3),
        ]
    )


class TestLeftDeepPlans:
    def test_single_atom(self):
        q = JoinQuery([Atom("R1", ("a", "b"))])
        db = Database([Relation("R1", ("a", "b"), [(1, 2)])])
        res = evaluate_left_deep(q, db)
        assert res.answer.tuples == {(1, 2)}

    def test_bad_order_rejected(self):
        q = JoinQuery.triangle()
        db = triangle_db([(0, 0)], [(0, 0)], [(0, 0)])
        with pytest.raises(SchemaError):
            evaluate_left_deep(q, db, order=[0, 0, 1])

    def test_triangle_answer(self):
        db = triangle_db(
            [(0, 1), (0, 2)],
            [(0, 5)],
            [(1, 5), (2, 5)],
        )
        q = JoinQuery.triangle()
        res = evaluate_left_deep(q, db)
        assert len(res.answer) == 2
        assert res.peak_intermediate_size >= len(res.answer)

    def test_all_orders_same_answer(self):
        from itertools import permutations

        db = triangle_db(
            [(0, 1), (1, 2), (2, 0)],
            [(0, 1), (1, 0), (2, 2)],
            [(1, 1), (2, 0), (0, 2)],
        )
        q = JoinQuery.triangle()
        answers = set()
        for perm in permutations(range(3)):
            res = evaluate_left_deep(q, db, perm)
            normalized = frozenset(
                tuple(t[res.answer.attributes.index(a)] for a in ("a1", "a2", "a3"))
                for t in res.answer.tuples
            )
            answers.add(normalized)
        assert len(answers) == 1

    def test_best_plan_minimizes_peak(self):
        db = triangle_db(
            [(0, i) for i in range(10)],
            [(0, 5)],
            [(i, 5) for i in range(10)],
        )
        q = JoinQuery.triangle()
        order, peak = best_left_deep_peak(q, db)
        assert peak <= evaluate_left_deep(q, db).peak_intermediate_size
        assert sorted(order) == [0, 1, 2]
