"""Unit tests for the semiring layer: registry, reference fold, the
engines' error paths, and the shared reduced-forest helper's op parity."""

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError, SchemaError
from repro.generators.agm import uniform_random_database
from repro.hypergraph.acyclicity import join_tree
from repro.relational.database import Database
from repro.relational.factorized import evaluate, factorize
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.semiring import (
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    PROVENANCE,
    Semiring,
    aggregate_relation,
    all_semirings,
    annotation_positions,
    fold_tuple,
    get_semiring,
    register_semiring,
)
from repro.relational.wcoj import generic_join, generic_join_aggregate
from repro.relational.yannakakis import (
    backend_relations,
    reduced_join_forest,
    semijoin_reduce,
    semiring_yannakakis,
    tree_links,
)


def triangle_db():
    edges = [(1, 2), (2, 3), (1, 3), (4, 5)]
    return Database(
        [
            Relation("R1", ("x", "y"), edges),
            Relation("R2", ("x", "y"), edges),
            Relation("R3", ("x", "y"), edges),
        ]
    )


class TestRegistry:
    def test_known_instances(self):
        names = [s.name for s in all_semirings()]
        assert names == ["boolean", "counting", "minplus", "provenance"]
        assert get_semiring("counting") is COUNTING

    def test_unknown_name_is_invalid_instance(self):
        with pytest.raises(InvalidInstanceError, match="unknown semiring"):
            get_semiring("tropical-typo")

    def test_duplicate_registration_rejected(self):
        clone = Semiring(
            name="boolean",
            zero=False,
            one=True,
            add=lambda a, b: a or b,
            mul=lambda a, b: a and b,
            idempotent_add=True,
            absorptive=True,
        )
        with pytest.raises(InvalidInstanceError, match="registered twice"):
            register_semiring(clone)

    def test_broken_identities_rejected_at_registration(self):
        broken = Semiring(
            name="broken-zero",
            zero=1,
            one=1,
            add=lambda a, b: a + b,
            mul=lambda a, b: a * b,
            idempotent_add=False,
            absorptive=False,
        )
        with pytest.raises(InvalidInstanceError, match="⊕-identity"):
            register_semiring(broken)
        assert "broken-zero" not in [s.name for s in all_semirings()]

    def test_repeat_add_guards(self):
        with pytest.raises(InvalidInstanceError, match="n >= 0"):
            COUNTING.repeat_add(1, -1)
        assert COUNTING.repeat_add(3, 0) == 0
        assert COUNTING.repeat_add(3, 4) == 12
        assert MIN_PLUS.repeat_add((2.0, ("e",)), 5) == (2.0, ("e",))


class TestReferenceFold:
    def test_annotation_positions_follow_atom_order(self):
        query = JoinQuery.triangle()
        plan = annotation_positions(query, query.attributes)
        assert plan == [("R1", (0, 1)), ("R2", (0, 2)), ("R3", (1, 2))]

    def test_fold_tuple_counting_is_one(self):
        query = JoinQuery.triangle()
        plan = annotation_positions(query, query.attributes)
        assert fold_tuple(COUNTING, plan, (1, 2, 3)) == 1

    def test_fold_tuple_minplus_builds_sorted_witness(self):
        query = JoinQuery.triangle()
        plan = annotation_positions(query, query.attributes)
        cost, witness = fold_tuple(MIN_PLUS, plan, (1, 2, 3))
        assert cost == 3.0
        assert witness == tuple(sorted(witness))
        assert witness == ("R1(1, 2)", "R2(1, 3)", "R3(2, 3)")

    def test_aggregate_relation_requires_full_answers(self):
        query = JoinQuery.triangle()
        partial = Relation("ans", ("a1", "a2"), [(1, 2)])
        with pytest.raises(InvalidInstanceError, match="full answers"):
            aggregate_relation(COUNTING, query, partial)

    def test_aggregate_relation_counting_counts(self):
        query = JoinQuery.triangle()
        full = generic_join(query, triangle_db())
        assert aggregate_relation(COUNTING, query, full) == len(full)

    def test_custom_annotation_threads_through(self):
        query = JoinQuery.triangle()
        database = triangle_db()

        def cost(relation_name, tup):
            return (float(sum(tup)), (f"{relation_name}{tup}",))

        expected = aggregate_relation(
            MIN_PLUS, query, generic_join(query, database), annotate=cost
        )
        got = generic_join_aggregate(query, database, MIN_PLUS, annotate=cost)
        assert got == expected


class TestEngines:
    def test_wcoj_aggregate_matches_fold_on_triangles(self):
        query = JoinQuery.triangle()
        database = triangle_db()
        full = generic_join(query, database)
        for semiring in all_semirings():
            expected = aggregate_relation(semiring, query, full)
            assert generic_join_aggregate(query, database, semiring) == expected

    def test_semiring_yannakakis_rejects_cyclic(self):
        with pytest.raises(SchemaError, match="alpha-acyclic"):
            semiring_yannakakis(JoinQuery.triangle(), triangle_db(), COUNTING)

    def test_semiring_yannakakis_empty_answer_is_zero(self):
        query = JoinQuery.path(2)
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2)]),
                Relation("R2", ("x", "y"), [(7, 8)]),
            ]
        )
        for semiring in all_semirings():
            assert semiring_yannakakis(query, database, semiring) == semiring.zero

    def test_semiring_yannakakis_forest_multiplies_roots(self):
        # Disconnected product query: value = value(R1) ⊗ value(R2).
        from repro.relational.query import Atom

        query = JoinQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))])
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2), (1, 3)]),
                Relation("R2", ("x", "y"), [(5, 6), (7, 8), (9, 10)]),
            ]
        )
        assert semiring_yannakakis(query, database, COUNTING) == 6
        full = generic_join(query, database)
        for semiring in all_semirings():
            expected = aggregate_relation(semiring, query, full)
            assert semiring_yannakakis(query, database, semiring) == expected

    def test_factorized_aggregate_projection_needs_annotation_free(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 15, 4, seed=3)
        projected = evaluate(query, database, free=("a0", "a1"))
        assert projected.aggregate(COUNTING) == projected.count()
        with pytest.raises(InvalidInstanceError, match="free = all"):
            projected.aggregate(MIN_PLUS)

    def test_factorized_full_aggregate_matches_fold(self):
        query = JoinQuery.star(3)
        database = uniform_random_database(query, 20, 4, seed=5)
        full = generic_join(query, database)
        factorized = factorize(query, database)
        for semiring in all_semirings():
            expected = aggregate_relation(semiring, query, full)
            assert factorized.aggregate(semiring) == expected
        assert factorized.count() == len(full)


class TestReducedForestParity:
    """Satellite: the shared helper charges exactly what the hand-rolled
    backend_relations → tree_links → semijoin_reduce sequence charges."""

    @pytest.mark.parametrize("backend", ["naive", "columnar"])
    @pytest.mark.parametrize("downward", [True, False])
    def test_helper_op_parity(self, backend, downward):
        for query in (JoinQuery.path(3), JoinQuery.star(3)):
            database = uniform_random_database(query, 20, 5, seed=7)
            if backend == "columnar":
                database = database.with_backend("columnar")

            helper_counter = CostCounter()
            forest = reduced_join_forest(
                query, database, helper_counter, downward=downward
            )

            hand_counter = CostCounter()
            relations, semi, join = backend_relations(query, database)
            children, __, roots = tree_links(
                len(relations), join_tree(query.hypergraph())
            )
            alive = semijoin_reduce(
                relations, children, roots, semi, hand_counter, downward=downward
            )

            assert helper_counter.total == hand_counter.total
            assert forest.alive == alive
            assert forest.children == children
            assert forest.roots == roots
            assert [len(r) for r in forest.relations] == [
                len(r) for r in relations
            ]

    def test_stop_when_empty_short_circuits(self):
        query = JoinQuery.path(2)
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2)]),
                Relation("R2", ("x", "y"), [(7, 8)]),
            ]
        )
        forest = reduced_join_forest(query, database, stop_when_empty=True)
        assert not forest.alive


class TestPayloads:
    def test_minplus_payload_round_trip(self):
        value = (2.5, ("R1(1, 2)", "R2(1, 3)"))
        assert MIN_PLUS.to_payload(value) == {
            "cost": 2.5,
            "witness": ["R1(1, 2)", "R2(1, 3)"],
        }
        assert MIN_PLUS.to_payload(MIN_PLUS.zero) == {
            "cost": None,
            "witness": None,
        }

    def test_provenance_payload_is_json_safe(self):
        value = PROVENANCE.add(PROVENANCE.one, PROVENANCE.one)
        assert PROVENANCE.to_payload(value) == [[[], 2]]

    def test_boolean_counting_pass_through(self):
        assert BOOLEAN.to_payload(True) is True
        assert COUNTING.to_payload(4) == 4
