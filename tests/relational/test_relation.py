"""Tests for the Relation container."""

import pytest

from repro.errors import ArityMismatchError, SchemaError, UnknownAttributeError
from repro.relational.relation import Relation


class TestConstruction:
    def test_basic(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        assert r.arity == 2
        assert len(r) == 2

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "a"))

    def test_set_semantics(self):
        r = Relation("R", ("a",), [(1,), (1,)])
        assert len(r) == 1

    def test_arity_mismatch(self):
        r = Relation("R", ("a", "b"))
        with pytest.raises(ArityMismatchError):
            r.add((1,))


class TestAccess:
    def test_position(self):
        r = Relation("R", ("x", "y", "z"))
        assert r.position("y") == 1
        with pytest.raises(UnknownAttributeError):
            r.position("w")

    def test_column(self):
        r = Relation("R", ("a", "b"), [(1, 10), (2, 10)])
        assert r.column("a") == {1, 2}
        assert r.column("b") == {10}

    def test_as_dicts(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        assert list(r.as_dicts()) == [{"a": 1, "b": 2}]

    def test_matches(self):
        r = Relation("R", ("a", "b"))
        assert r.matches((1, 2), {"a": 1})
        assert not r.matches((1, 2), {"a": 9})
        assert r.matches((1, 2), {"other": 99})

    def test_active_domain(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        assert r.active_domain() == {1, 2, 3}

    def test_membership_and_iter(self):
        r = Relation("R", ("a",), [(1,)])
        assert (1,) in r
        assert (2,) not in r
        assert list(r) == [(1,)]

    def test_renamed(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = r.renamed({"a": "x"})
        assert s.attributes == ("x", "b")
        assert (1, 2) in s

    def test_equality(self):
        assert Relation("R", ("a",), [(1,)]) == Relation("R", ("a",), [(1,)])
        assert Relation("R", ("a",), [(1,)]) != Relation("S", ("a",), [(1,)])
