"""Tests for answer enumeration and core-based query minimization."""

import pytest

from repro.counting import CostCounter
from repro.errors import SchemaError
from repro.generators.agm import uniform_random_database
from repro.relational.database import Database
from repro.relational.enumeration import (
    enumerate_acyclic,
    enumerate_nested_loop,
    measure_delays,
)
from repro.relational.minimize import canonical_structure, minimize_query
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import boolean_generic_join, generic_join


def expected_answers(query, database):
    answer = generic_join(query, database)
    idx = [answer.attributes.index(a) for a in query.attributes]
    return {tuple(t[i] for i in idx) for t in answer.tuples}


class TestEnumerators:
    @pytest.mark.parametrize(
        "shape",
        [JoinQuery.path(2), JoinQuery.path(4), JoinQuery.star(3)],
        ids=["path2", "path4", "star3"],
    )
    def test_acyclic_matches_generic_join(self, shape):
        for seed in range(4):
            database = uniform_random_database(shape, 20, 5, seed=seed)
            assert set(enumerate_acyclic(shape, database)) == expected_answers(
                shape, database
            )

    def test_nested_loop_matches_on_cyclic(self):
        query = JoinQuery.triangle()
        database = uniform_random_database(query, 20, 6, seed=1)
        assert set(enumerate_nested_loop(query, database)) == expected_answers(
            query, database
        )

    def test_acyclic_rejects_cyclic_query(self):
        query = JoinQuery.triangle()
        database = uniform_random_database(query, 5, 3, seed=0)
        with pytest.raises(SchemaError):
            list(enumerate_acyclic(query, database))

    def test_no_duplicates(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 25, 4, seed=2)
        answers = list(enumerate_acyclic(query, database))
        assert len(answers) == len(set(answers))

    def test_empty_answer(self):
        query = JoinQuery.path(2)
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2)]),
                Relation("R2", ("x", "y"), [(9, 9)]),
            ]
        )
        assert list(enumerate_acyclic(query, database)) == []
        assert list(enumerate_nested_loop(query, database)) == []

    def test_constant_delay_property(self):
        """Inter-answer delays of the reduced enumerator stay constant
        as N grows, while the naive enumerator's grow."""
        from repro.experiments.exp_enumeration import dangling_database

        query = JoinQuery.path(3)
        acyclic_maxima = []
        naive_maxima = []
        for n in (40, 160):
            database = dangling_database(n)
            counter = CostCounter()
            profile = measure_delays(
                enumerate_acyclic(query, database, counter), counter
            )
            acyclic_maxima.append(profile.max_delay)
            counter = CostCounter()
            profile = measure_delays(
                enumerate_nested_loop(query, database, counter), counter
            )
            naive_maxima.append(profile.max_delay)
        assert acyclic_maxima[0] == acyclic_maxima[1]  # data independent
        assert naive_maxima[1] > 2 * naive_maxima[0]   # grows with N


class TestCanonicalStructure:
    def test_universe_is_attributes(self):
        q = JoinQuery.triangle()
        s = canonical_structure(q)
        assert set(s.universe) == set(q.attributes)

    def test_self_join_shares_symbol(self):
        q = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("b", "c"))])
        s = canonical_structure(q)
        assert len(s.relation("E")) == 2

    def test_inconsistent_arity_rejected(self):
        q = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("c",))])
        with pytest.raises(SchemaError):
            canonical_structure(q)


class TestMinimizeQuery:
    def test_distinct_relations_untouched(self):
        q = JoinQuery.triangle()  # R1, R2, R3 distinct: nothing to fold
        red = minimize_query(q)
        red.certify()
        assert red.target.num_atoms == 3

    def test_folding_self_join(self):
        # E(a,b) ⋈ E(c,b): c folds onto a.
        q = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("c", "b"))])
        red = minimize_query(q)
        red.certify()
        assert red.target.num_atoms == 1

    def test_directed_triangle_is_core(self):
        q = JoinQuery(
            [Atom("E", ("a", "b")), Atom("E", ("b", "c")), Atom("E", ("c", "a"))]
        )
        red = minimize_query(q)
        assert red.target.num_atoms == 3

    def test_boolean_equivalence_on_random_databases(self, rng):
        q = JoinQuery(
            [
                Atom("E", ("a", "b")),
                Atom("E", ("b", "c")),
                Atom("E", ("d", "b")),
            ]
        )
        red = minimize_query(q)
        red.certify()
        assert red.target.num_atoms < q.num_atoms
        for seed in range(8):
            relation = Relation("E", ("x", "y"))
            import random

            r = random.Random(seed)
            for __ in range(r.randrange(1, 14)):
                relation.add((r.randrange(4), r.randrange(4)))
            database = Database([relation])
            assert boolean_generic_join(q, database) == boolean_generic_join(
                red.target, database
            ), seed

    def test_solution_maps_back_through_retraction(self):
        # c folds onto a; a target solution must extend to all source
        # attributes, with the folded attribute answering via its image.
        q = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("c", "b"))])
        red = minimize_query(q)
        assert red.target.num_atoms == 1
        solution = {attr: f"val-{attr}" for attr in red.target.attributes}
        pulled = red.pull_back(solution)
        assert set(pulled) == set(q.attributes)
        for attribute in red.target.attributes:
            assert pulled[attribute] == solution[attribute]
        # the folded attribute received the value of its retraction image
        folded = set(q.attributes) - set(red.target.attributes)
        assert all(pulled[attr] in solution.values() for attr in folded)
        assert red.pull_back(None) is None

    def test_longer_path_folds(self):
        # Undirected-style doubled edges make even paths fold to an edge.
        q = JoinQuery(
            [
                Atom("E", ("a", "b")),
                Atom("E", ("b", "a")),
                Atom("E", ("b", "c")),
                Atom("E", ("c", "b")),
            ]
        )
        red = minimize_query(q)
        red.certify()
        # Symmetric path of length 2 retracts onto one doubled edge.
        assert red.target.num_atoms == 2
