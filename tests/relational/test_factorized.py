"""Unit tests for the factorized engine, the dichotomy router, and the
delay-measurement contract."""

import pytest

from repro.counting import CostCounter
from repro.errors import SchemaError
from repro.generators.agm import uniform_random_database
from repro.relational.database import Database
from repro.relational.enumeration import (
    DelayProfile,
    enumerate_acyclic,
    enumerate_nested_loop,
    measure_delays,
)
from repro.relational.factorized import evaluate, factorize, is_free_connex
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation


def hub_star(n):
    return Database(
        [
            Relation("R1", ("x", "y"), [(0, i) for i in range(n)]),
            Relation("R2", ("x", "y"), [(0, j) for j in range(n)]),
        ]
    )


class TestFactorize:
    def test_linear_nodes_quadratic_answers(self):
        query = JoinQuery.star(2)
        small = factorize(query, hub_star(20))
        large = factorize(query, hub_star(80))
        assert small.count() == 400 and large.count() == 6400
        # d-rep grows linearly: 4x the data, ~4x the nodes, 16x answers.
        assert large.num_nodes <= 4 * small.num_nodes + 8

    def test_count_without_enumeration(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 30, 4, seed=5)
        result = factorize(query, database)
        assert result.count() == len(set(result.enumerate()))

    def test_materialize_attribute_order_is_free_order(self):
        query = JoinQuery.path(2)
        database = uniform_random_database(query, 10, 3, seed=0)
        result = factorize(query, database, free=("a1", "a0"))
        assert result.materialize().attributes == ("a1", "a0")

    def test_non_free_connex_raises(self):
        query = JoinQuery.star(2)
        database = hub_star(4)
        with pytest.raises(SchemaError):
            factorize(query, database, free=("l0", "l1"))

    def test_invalid_free_variables_rejected(self):
        query = JoinQuery.path(2)
        database = uniform_random_database(query, 5, 3, seed=0)
        with pytest.raises(SchemaError):
            factorize(query, database, free=())
        with pytest.raises(SchemaError):
            factorize(query, database, free=("a0", "a0"))
        with pytest.raises(SchemaError):
            factorize(query, database, free=("nope",))

    def test_empty_guard_component(self):
        # R2 is a boolean guard with no free variables; when it empties
        # the whole answer is empty regardless of R1.
        query = JoinQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))])
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2)]),
                Relation("R2", ("x", "y")),
            ]
        )
        result = factorize(query, database, free=("a",))
        assert result.count() == 0
        assert list(result.enumerate()) == []
        assert len(result.materialize()) == 0

    def test_satisfied_guard_component(self):
        query = JoinQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))])
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2), (3, 4)]),
                Relation("R2", ("x", "y"), [(9, 9)]),
            ]
        )
        result = factorize(query, database, free=("a",))
        assert sorted(result.materialize().tuples) == [(1,), (3,)]

    def test_disconnected_product(self):
        query = JoinQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))])
        database = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2), (3, 4)]),
                Relation("R2", ("x", "y"), [(5, 6), (7, 8)]),
            ]
        )
        result = factorize(query, database, free=("a", "c"))
        assert result.count() == 4
        assert sorted(result.materialize().tuples) == [
            (1, 5), (1, 7), (3, 5), (3, 7),
        ]

    def test_single_atom_projection(self):
        query = JoinQuery([Atom("R", ("a", "b"))])
        database = Database([Relation("R", ("x", "y"), [(1, 2), (1, 3), (4, 2)])])
        result = factorize(query, database, free=("a",))
        assert sorted(result.materialize().tuples) == [(1,), (4,)]


class TestRouter:
    def test_free_connex_routes_to_factorized(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 15, 4, seed=2)
        assert evaluate(query, database, free=("a0", "a1")).method == "factorized"

    def test_bmm_projection_falls_back(self):
        query = JoinQuery.star(2)
        result = evaluate(query, hub_star(6), free=("l0", "l1"))
        assert result.method == "wcoj"
        assert result.count() == 36

    def test_cyclic_falls_back(self):
        query = JoinQuery.triangle()
        database = uniform_random_database(query, 12, 4, seed=3)
        result = evaluate(query, database)
        assert result.method == "wcoj"


class TestEnumerateAcyclicProjection:
    def test_free_connex_projection_enumerates(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 20, 4, seed=7)
        got = sorted(set(enumerate_acyclic(query, database, free=("a0", "a1"))))
        full = set(enumerate_acyclic(query, database))
        expected = sorted({(t[0], t[1]) for t in full})
        assert got == expected

    def test_non_free_connex_projection_raises(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 10, 3, seed=1)
        with pytest.raises(SchemaError):
            list(enumerate_acyclic(query, database, free=("a0", "a3")))

    def test_full_free_tuple_uses_classic_path(self):
        query = JoinQuery.path(3)
        database = uniform_random_database(query, 10, 3, seed=4)
        c1, c2 = CostCounter(), CostCounter()
        a = sorted(enumerate_acyclic(query, database, c1))
        b = sorted(enumerate_acyclic(query, database, c2, free=query.attributes))
        assert a == b
        assert c1.total == c2.total


class TestDelayProfile:
    def test_setup_gaps_exhaustion_accounting(self):
        counter = CostCounter()

        def noisy():
            for _ in range(3):
                counter.charge()  # setup: 3 ops before the first answer
            yield 1
            counter.charge()  # one gap op
            yield 2
            for _ in range(5):
                counter.charge()  # exhaustion tail: 5 ops, no yield
        profile = measure_delays(noisy(), counter)
        assert profile == DelayProfile(
            setup=3, gaps=(1,), exhaustion=5, answers=2
        )
        assert profile.max_delay == 5

    def test_exhaustion_counts_toward_max_delay(self):
        # The old accounting ignored everything after the last yield; a
        # lazy tail could hide linear work there.
        counter = CostCounter()

        def lazy_tail():
            yield 1
            for _ in range(100):
                counter.charge()
        assert measure_delays(lazy_tail(), counter).max_delay == 100

    def test_empty_enumeration(self):
        counter = CostCounter()

        def empty():
            for _ in range(4):
                counter.charge()
            return
            yield  # pragma: no cover
        profile = measure_delays(empty(), counter)
        assert profile.answers == 0
        assert profile.setup == 4
        assert profile.max_delay == 0

    def test_naive_exhaustion_is_data_dependent(self):
        # enumerate_nested_loop keeps scanning after its last answer;
        # the new accounting makes that visible.
        from repro.experiments.exp_enumeration import dangling_database

        query = JoinQuery.path(3)
        maxima = []
        for n in (40, 160):
            counter = CostCounter()
            profile = measure_delays(
                enumerate_nested_loop(query, dangling_database(n), counter), counter
            )
            maxima.append(profile.max_delay)
        assert maxima[1] > 2 * maxima[0]

    def test_factorized_delay_data_independent(self):
        query = JoinQuery.star(2)
        maxima = []
        for n in (25, 100):
            counter = CostCounter()
            result = factorize(query, hub_star(n), counter=counter)
            profile = measure_delays(result.enumerate(counter), counter)
            assert profile.answers == n * n
            maxima.append(profile.max_delay)
        assert maxima[0] == maxima[1]
