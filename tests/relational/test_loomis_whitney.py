"""Tests for the Loomis–Whitney query family (§3, higher arity)."""

import pytest

from repro.errors import SchemaError
from repro.generators.agm import (
    expected_tight_answer_size,
    tight_agm_database,
    uniform_random_database,
)
from repro.hypergraph.covers import fractional_edge_cover_number
from repro.relational.estimate import agm_bound
from repro.relational.joins import evaluate_left_deep
from repro.relational.query import JoinQuery
from repro.relational.wcoj import generic_join


class TestShape:
    def test_validation(self):
        with pytest.raises(SchemaError):
            JoinQuery.loomis_whitney(2)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_rho_star(self, n):
        query = JoinQuery.loomis_whitney(n)
        rho = fractional_edge_cover_number(query.hypergraph())
        assert rho == pytest.approx(n / (n - 1))

    def test_lw3_structure(self):
        query = JoinQuery.loomis_whitney(3)
        assert query.num_atoms == 3
        assert all(atom.arity == 2 for atom in query.atoms)

    def test_lw4_arity(self):
        query = JoinQuery.loomis_whitney(4)
        assert all(atom.arity == 3 for atom in query.atoms)
        # Every attribute appears in exactly n-1 atoms.
        for a in query.attributes:
            occurrences = sum(1 for atom in query.atoms if a in atom.attributes)
            assert occurrences == 3


class TestEvaluation:
    def test_engines_agree(self):
        query = JoinQuery.loomis_whitney(4)
        for seed in range(3):
            database = uniform_random_database(query, 30, 4, seed=seed)
            gj = generic_join(query, database)
            plan = evaluate_left_deep(query, database)
            gj_set = {
                tuple(t[gj.attributes.index(a)] for a in query.attributes)
                for t in gj.tuples
            }
            plan_set = {
                tuple(t[plan.answer.attributes.index(a)] for a in query.attributes)
                for t in plan.answer.tuples
            }
            assert gj_set == plan_set

    def test_agm_bound_respected(self):
        query = JoinQuery.loomis_whitney(4)
        database = uniform_random_database(query, 40, 5, seed=7)
        answer = generic_join(query, database)
        assert len(answer) <= agm_bound(query, database) + 1e-6

    def test_tight_construction_for_lw4(self):
        """The dual-LP tight databases hit the N^{4/3} shape exactly."""
        query = JoinQuery.loomis_whitney(4)
        for n in (8, 27):
            database = tight_agm_database(query, n)
            assert database.max_relation_size() <= n
            answer = generic_join(query, database)
            assert len(answer) == expected_tight_answer_size(query, n)

    def test_lw4_tight_exponent(self):
        """At a perfect cube N, the answer is exactly N^{4/3}."""
        query = JoinQuery.loomis_whitney(4)
        n = 27  # 27^{1/3} = 3 per attribute; answer = 3^4 = 81
        database = tight_agm_database(query, n)
        answer = generic_join(query, database)
        assert len(answer) == 81
        assert 81 == pytest.approx(n ** (4 / 3))
