"""Unit tests for the columnar kernels (interner, tries, joins, caches)."""

import numpy as np
import pytest

from repro.counting import CostCounter
from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.kernels import (
    Interner,
    KernelState,
    SortedTrieIndex,
    TableView,
    pairwise_join,
    project_view,
    semijoin,
    to_relation,
)
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join


def test_interner_is_stable_and_dense():
    interner = Interner()
    codes = [interner.intern(v) for v in ("a", "b", "a", 7, "b")]
    assert codes == [0, 1, 0, 2, 1]
    assert len(interner) == 3
    assert [interner.decode(c) for c in (0, 1, 2)] == ["a", "b", 7]


def test_sorted_trie_runs_and_descent():
    interner = Interner()
    rel = Relation("R", ("x", "y"), [(1, 2), (1, 3), (2, 2)])
    state = KernelState()
    table = state.table(rel)
    trie = SortedTrieIndex(table.matrix, (0, 1))
    assert trie.depth == 2
    assert trie.nroot == 2  # two distinct x values
    # Each root run's children cover its (lo, hi) slice at level 1.
    widths = [
        trie.next_hi[0][r] - trie.next_lo[0][r] for r in range(trie.nroot)
    ]
    assert sorted(widths) == [1, 2]
    assert len(trie.ulist[1]) == 3


def test_empty_relation_trie():
    rel = Relation("R", ("x", "y"))
    state = KernelState()
    trie = state.sorted_trie(rel, (0, 1))
    assert trie.nroot == 0
    assert trie.ulist == [[], []]


def test_kernel_state_caches_until_version_changes():
    rel = Relation("R", ("x", "y"), [(1, 2)])
    state = KernelState()
    first = state.sorted_trie(rel, (0, 1))
    assert state.sorted_trie(rel, (0, 1)) is first
    assert state.sorted_trie(rel, (1, 0)) is not first  # other prefix order
    rel.add((3, 4))
    rebuilt = state.sorted_trie(rel, (0, 1))
    assert rebuilt is not first
    assert rebuilt.nroot == 2


def test_hash_trie_cache_matches_fresh_build():
    rel = Relation("R", ("x", "y"), [(1, 2), (1, 3)])
    state = KernelState()
    root = state.hash_trie(rel, (0, 1))
    assert root == {1: {2: {}, 3: {}}}
    assert state.hash_trie(rel, (0, 1)) is root
    rel.add((2, 2))
    assert state.hash_trie(rel, (0, 1)) == {1: {2: {}, 3: {}}, 2: {2: {}}}


def _view(attrs, rows):
    return TableView(
        tuple(attrs), np.array(rows, dtype=np.int64).reshape(len(rows), len(attrs))
    )


def test_pairwise_join_matches_and_charges():
    left = _view(("a", "b"), [(0, 1), (0, 2), (3, 3)])
    right = _view(("b", "c"), [(1, 5), (1, 6), (2, 5)])
    counter = CostCounter()
    out = pairwise_join(left, right, counter)
    assert out.attributes == ("a", "b", "c")
    assert sorted(map(tuple, out.matrix.tolist())) == [
        (0, 1, 5),
        (0, 1, 6),
        (0, 2, 5),
    ]
    # |R| build + |L| probe + one per matching pair.
    assert counter.total == 3 + 3 + 3


def test_pairwise_join_cross_product_when_no_shared():
    left = _view(("a",), [(0,), (1,)])
    right = _view(("b",), [(5,), (6,)])
    counter = CostCounter()
    out = pairwise_join(left, right, counter)
    assert sorted(map(tuple, out.matrix.tolist())) == [
        (0, 5),
        (0, 6),
        (1, 5),
        (1, 6),
    ]
    assert counter.total == 2 + 2 + 4


def test_pairwise_join_empty_side():
    left = _view(("a", "b"), [(0, 1)])
    right = TableView(("b", "c"), np.empty((0, 2), np.int64))
    out = pairwise_join(left, right)
    assert len(out) == 0
    assert out.attributes == ("a", "b", "c")


def test_semijoin_filters_and_charges():
    left = _view(("a", "b"), [(0, 1), (2, 9), (4, 1)])
    right = _view(("b", "c"), [(1, 7)])
    counter = CostCounter()
    out = semijoin(left, right, counter)
    assert sorted(map(tuple, out.matrix.tolist())) == [(0, 1), (4, 1)]
    assert counter.total == 1 + 3
    # No shared attributes: cross-guard keeps everything iff right
    # nonempty, charging nothing (mirrors the naive kernel).
    counter2 = CostCounter()
    guard = semijoin(_view(("a",), [(0,)]), _view(("z",), [(1,)]), counter2)
    assert len(guard) == 1 and counter2.total == 0


def test_project_view_dedups():
    view = _view(("a", "b"), [(0, 1), (0, 2), (0, 1)])
    out = project_view(view, ("a",))
    assert sorted(map(tuple, out.matrix.tolist())) == [(0,)]


def test_to_relation_decodes_values():
    interner = Interner()
    codes = [[interner.intern(v) for v in row] for row in [("u", 3), ("w", 4)]]
    view = _view(("a", "b"), codes)
    rel = to_relation(view, interner, "answer")
    assert rel.attributes == ("a", "b")
    assert sorted(rel.tuples) == [("u", 3), ("w", 4)]


def test_with_backend_shares_data_and_validates():
    db = Database([Relation("R", ("x",), [(1,)])])
    col = db.with_backend("columnar")
    assert col.backend == "columnar"
    assert col.relation("R") is db.relation("R")
    assert col.kernels is db.kernels
    assert col.with_backend("columnar") is col
    assert db.with_backend("naive") is db
    with pytest.raises(SchemaError):
        db.with_backend("gpu")
    with pytest.raises(SchemaError):
        Database(backend="vectorized")


def test_indexes_shared_across_backend_views():
    rows = [(0, 1), (1, 2), (0, 2)]
    db = Database(
        [Relation(n, ("x", "y"), rows) for n in ("R1", "R2", "R3")]
    )
    query = JoinQuery.triangle()
    col = db.with_backend("columnar")
    generic_join(query, col)
    # The columnar run populated the shared cache; a second run on
    # either view reuses the same trie objects.
    trie = db.kernels.sorted_trie(db.relation("R1"), (0, 1))
    generic_join(query, col)
    assert db.kernels.sorted_trie(db.relation("R1"), (0, 1)) is trie


def test_single_attribute_atoms():
    # Depth-1 tries: intersection of two unary relations.
    query = JoinQuery([Atom("A", ("v",)), Atom("B", ("v",))])
    db = Database(
        [
            Relation("A", ("x",), [(1,), (2,), (3,)]),
            Relation("B", ("x",), [(2,), (3,), (4,)]),
        ]
    )
    c1, c2 = CostCounter(), CostCounter()
    naive = generic_join(query, db, counter=c1)
    col = generic_join(query, db.with_backend("columnar"), counter=c2)
    assert sorted(naive.tuples) == sorted(col.tuples) == [(2,), (3,)]
    assert c1.total == c2.total
