"""Tests for Database and JoinQuery."""

import pytest

from repro.errors import SchemaError
from repro.hypergraph.covers import fractional_edge_cover_number
from repro.relational.database import Database
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation


class TestDatabase:
    def test_duplicate_relation_rejected(self):
        db = Database([Relation("R", ("a",))])
        with pytest.raises(SchemaError):
            db.add_relation(Relation("R", ("b",)))

    def test_missing_relation(self):
        with pytest.raises(SchemaError):
            Database().relation("nope")

    def test_domain_is_active_by_default(self):
        db = Database([Relation("R", ("a", "b"), [(1, 2)])])
        assert db.domain() == {1, 2}

    def test_declared_domain(self):
        db = Database([Relation("R", ("a",), [(1,)])], domain=[1, 2, 3])
        assert db.domain() == {1, 2, 3}

    def test_declared_domain_must_contain_active(self):
        db = Database([Relation("R", ("a",), [(5,)])], domain=[1])
        with pytest.raises(SchemaError):
            db.domain()

    def test_max_relation_size(self):
        db = Database(
            [Relation("R", ("a",), [(1,), (2,)]), Relation("S", ("a",), [(1,)])]
        )
        assert db.max_relation_size() == 2
        assert Database().max_relation_size() == 0


class TestAtom:
    def test_repeated_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ())


class TestJoinQuery:
    def test_needs_atoms(self):
        with pytest.raises(SchemaError):
            JoinQuery([])

    def test_attribute_order_first_occurrence(self):
        q = JoinQuery([Atom("R", ("b", "a")), Atom("S", ("a", "c"))])
        assert q.attributes == ("b", "a", "c")

    def test_hypergraph_matches(self):
        q = JoinQuery.triangle()
        h = q.hypergraph()
        assert h.num_edges == 3
        assert fractional_edge_cover_number(h) == pytest.approx(1.5)

    def test_primal_graph(self):
        q = JoinQuery.path(3)
        primal = q.primal_graph()
        assert primal.num_edges == 3
        assert not primal.has_edge("a0", "a2")

    def test_validate_against(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db_good = Database([Relation("R", ("x", "y"))])
        q.validate_against(db_good)
        db_bad = Database([Relation("R", ("x",))])
        with pytest.raises(SchemaError):
            q.validate_against(db_bad)

    def test_bound_relation_renames(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db = Database([Relation("R", ("x", "y"), [(1, 2)])])
        bound = q.bound_relation(q.atoms[0], db)
        assert bound.attributes == ("a", "b")
        assert (1, 2) in bound


class TestStockQueries:
    def test_triangle(self):
        q = JoinQuery.triangle()
        assert q.num_atoms == 3
        assert q.attributes == ("a1", "a2", "a3")

    def test_cycle_validation(self):
        with pytest.raises(SchemaError):
            JoinQuery.cycle(2)
        assert JoinQuery.cycle(5).num_atoms == 5

    def test_path(self):
        assert JoinQuery.path(4).num_atoms == 4
        with pytest.raises(SchemaError):
            JoinQuery.path(0)

    def test_star(self):
        q = JoinQuery.star(3)
        assert q.num_atoms == 3
        assert "c" in q.attributes

    def test_clique(self):
        q = JoinQuery.clique(4)
        assert q.num_atoms == 6
        with pytest.raises(SchemaError):
            JoinQuery.clique(1)

    def test_clique_rho_star(self):
        h = JoinQuery.clique(4).hypergraph()
        assert fractional_edge_cover_number(h) == pytest.approx(2.0)
