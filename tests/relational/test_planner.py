"""Tests for AGM-guided join planning."""

import pytest

from repro.errors import SchemaError
from repro.generators.agm import skewed_triangle_database, uniform_random_database
from repro.relational.database import Database
from repro.relational.joins import evaluate_left_deep
from repro.relational.planner import plan_by_agm, prefix_bounds
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation


class TestPrefixBounds:
    def test_single_atom(self):
        query = JoinQuery([Atom("R", ("a", "b"))])
        database = Database([Relation("R", ("a", "b"), [(1, 2), (3, 4)])])
        assert prefix_bounds(query, database, (0,)) == [pytest.approx(2.0)]

    def test_monotone_refinement(self):
        """Each prefix bound upper-bounds the actual intermediate size
        produced by the corresponding plan prefix."""
        query = JoinQuery.triangle()
        database = uniform_random_database(query, 25, 8, seed=4)
        for order in ((0, 1, 2), (2, 0, 1)):
            bounds = prefix_bounds(query, database, order)
            result = evaluate_left_deep(query, database, order)
            assert result.peak_intermediate_size <= max(bounds) + 1e-6

    def test_final_prefix_is_full_query_bound(self):
        from repro.relational.estimate import agm_bound

        query = JoinQuery.cycle(4)
        database = uniform_random_database(query, 15, 5, seed=2)
        bounds = prefix_bounds(query, database, (0, 1, 2, 3))
        assert bounds[-1] == pytest.approx(agm_bound(query, database))


class TestPlanByAGM:
    def test_order_is_permutation(self):
        query = JoinQuery.triangle()
        database = skewed_triangle_database(30)
        order, worst = plan_by_agm(query, database)
        assert sorted(order) == [0, 1, 2]
        assert worst > 0

    def test_small_relation_first(self):
        """With one tiny relation, the planner leads with it (its prefix
        bound is minimal)."""
        query = JoinQuery.triangle()
        database = Database(
            [
                Relation("R1", ("x", "y"), [(i, j) for i in range(10) for j in range(10)]),
                Relation("R2", ("x", "y"), [(i, j) for i in range(10) for j in range(10)]),
                Relation("R3", ("x", "y"), [(0, 0)]),
            ]
        )
        order, __ = plan_by_agm(query, database)
        assert order[0] == 2

    def test_planned_bound_not_worse_than_any_order(self):
        from itertools import permutations

        query = JoinQuery.triangle()
        database = uniform_random_database(query, 20, 6, seed=9)
        __, best_worst = plan_by_agm(query, database)
        for order in permutations(range(3)):
            assert best_worst <= max(prefix_bounds(query, database, order)) + 1e-9

    def test_too_many_atoms_rejected(self):
        query = JoinQuery.clique(5)  # 10 atoms
        database = uniform_random_database(query, 4, 3, seed=0)
        with pytest.raises(SchemaError):
            plan_by_agm(query, database)
