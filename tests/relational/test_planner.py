"""Tests for AGM-guided join planning."""

import pytest

from repro.errors import SchemaError
from repro.generators.agm import skewed_triangle_database, uniform_random_database
from repro.relational.database import Database
from repro.relational.joins import evaluate_left_deep
from repro.relational.planner import plan_by_agm, prefix_bounds, wcoj_attribute_order
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join


class TestPrefixBounds:
    def test_single_atom(self):
        query = JoinQuery([Atom("R", ("a", "b"))])
        database = Database([Relation("R", ("a", "b"), [(1, 2), (3, 4)])])
        assert prefix_bounds(query, database, (0,)) == [pytest.approx(2.0)]

    def test_monotone_refinement(self):
        """Each prefix bound upper-bounds the actual intermediate size
        produced by the corresponding plan prefix."""
        query = JoinQuery.triangle()
        database = uniform_random_database(query, 25, 8, seed=4)
        for order in ((0, 1, 2), (2, 0, 1)):
            bounds = prefix_bounds(query, database, order)
            result = evaluate_left_deep(query, database, order)
            assert result.peak_intermediate_size <= max(bounds) + 1e-6

    def test_final_prefix_is_full_query_bound(self):
        from repro.relational.estimate import agm_bound

        query = JoinQuery.cycle(4)
        database = uniform_random_database(query, 15, 5, seed=2)
        bounds = prefix_bounds(query, database, (0, 1, 2, 3))
        assert bounds[-1] == pytest.approx(agm_bound(query, database))


class TestPlanByAGM:
    def test_order_is_permutation(self):
        query = JoinQuery.triangle()
        database = skewed_triangle_database(30)
        order, worst = plan_by_agm(query, database)
        assert sorted(order) == [0, 1, 2]
        assert worst > 0

    def test_small_relation_first(self):
        """With one tiny relation, the planner leads with it (its prefix
        bound is minimal)."""
        query = JoinQuery.triangle()
        database = Database(
            [
                Relation("R1", ("x", "y"), [(i, j) for i in range(10) for j in range(10)]),
                Relation("R2", ("x", "y"), [(i, j) for i in range(10) for j in range(10)]),
                Relation("R3", ("x", "y"), [(0, 0)]),
            ]
        )
        order, __ = plan_by_agm(query, database)
        assert order[0] == 2

    def test_planned_bound_not_worse_than_any_order(self):
        from itertools import permutations

        query = JoinQuery.triangle()
        database = uniform_random_database(query, 20, 6, seed=9)
        __, best_worst = plan_by_agm(query, database)
        for order in permutations(range(3)):
            assert best_worst <= max(prefix_bounds(query, database, order)) + 1e-9

    def test_too_many_atoms_rejected(self):
        query = JoinQuery.clique(5)  # 10 atoms
        database = uniform_random_database(query, 4, 3, seed=0)
        with pytest.raises(SchemaError):
            plan_by_agm(query, database)


class TestWcojAttributeOrder:
    def test_is_permutation_of_query_attributes(self):
        query = JoinQuery.cycle(4)
        database = uniform_random_database(query, 20, 6, seed=3)
        order = wcoj_attribute_order(query, database)
        assert sorted(order) == sorted(query.attributes)

    def test_low_fanout_attribute_first(self):
        """An attribute whose columns hold a single distinct value has
        the smallest candidate sets and must lead the order."""
        query = JoinQuery.triangle()
        database = Database(
            [
                Relation("R1", ("x", "y"), [(i, 0) for i in range(10)]),
                Relation("R2", ("x", "y"), [(i, i) for i in range(10)]),
                Relation("R3", ("x", "y"), [(0, i) for i in range(10)]),
            ]
        )
        # a2 is bound to R1's second column ({0}) and R3's first ({0}).
        assert wcoj_attribute_order(query, database)[0] == "a2"

    def test_never_changes_the_answer_set(self):
        """The heuristic order is a constants-only choice: Generic Join
        returns the same answer set as with declaration order, on both
        backends (Theorem 3.3 is order-free)."""
        for shape, seed in (
            (JoinQuery.triangle(), 11),
            (JoinQuery.cycle(4), 12),
            (JoinQuery.path(3), 13),
            (JoinQuery.star(3), 14),
        ):
            database = uniform_random_database(shape, 25, 6, seed=seed)
            order = wcoj_attribute_order(shape, database)
            baseline = sorted(generic_join(shape, database).tuples)
            planned = generic_join(shape, database, attribute_order=order)
            reindex = [order.index(a) for a in shape.attributes]
            planned_normalized = sorted(
                tuple(t[i] for i in reindex) for t in planned.tuples
            )
            assert planned_normalized == baseline
            columnar = database.with_backend("columnar")
            planned_col = generic_join(shape, columnar, attribute_order=order)
            assert sorted(planned_col.tuples) == sorted(planned.tuples)
