"""Tests for the AGM bound calculator (Theorem 3.1)."""

import pytest

from repro.generators.agm import tight_agm_database, uniform_random_database
from repro.relational.database import Database
from repro.relational.estimate import agm_bound, agm_bound_uniform
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import generic_join
from repro.hypergraph.hypergraph import Hypergraph


class TestUniformBound:
    def test_triangle(self):
        h = Hypergraph.triangle()
        assert agm_bound_uniform(h, 100) == pytest.approx(100**1.5)

    def test_single_edge(self):
        h = Hypergraph(edges=[("a", "b")])
        assert agm_bound_uniform(h, 50) == pytest.approx(50.0)

    def test_zero_size(self):
        assert agm_bound_uniform(Hypergraph.triangle(), 0) == 0.0

    def test_negative_rejected(self):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            agm_bound_uniform(Hypergraph.triangle(), -1)


class TestSizeAwareBound:
    def test_empty_relation_zero(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db = Database([Relation("R", ("a", "b"))])
        assert agm_bound(q, db) == 0.0

    def test_single_relation_bound_is_size(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db = Database([Relation("R", ("a", "b"), [(i, i) for i in range(7)])])
        assert agm_bound(q, db) == pytest.approx(7.0)

    def test_nonuniform_sizes_tighter_than_uniform(self):
        q = JoinQuery.triangle()
        # R3 tiny: the optimal weighting should exploit it.
        db = Database(
            [
                Relation("R1", ("x", "y"), [(i, j) for i in range(5) for j in range(5)]),
                Relation("R2", ("x", "y"), [(i, j) for i in range(5) for j in range(5)]),
                Relation("R3", ("x", "y"), [(0, 0)]),
            ]
        )
        bound = agm_bound(q, db)
        uniform = agm_bound_uniform(q.hypergraph(), db.max_relation_size())
        assert bound <= uniform + 1e-9

    def test_bound_dominates_answer_on_random(self):
        for shape in (JoinQuery.triangle(), JoinQuery.cycle(4), JoinQuery.star(2)):
            for seed in range(4):
                db = uniform_random_database(shape, 30, 8, seed=seed)
                answer = generic_join(shape, db)
                assert len(answer) <= agm_bound(shape, db) + 1e-6

    def test_tight_database_achieves_bound(self):
        q = JoinQuery.triangle()
        db = tight_agm_database(q, 64)
        answer = generic_join(q, db)
        bound = agm_bound(q, db)
        # floor(64^0.5) = 8 per attribute: answer = 512, bound >= 512.
        assert len(answer) == 512
        assert bound >= len(answer) - 1e-6
