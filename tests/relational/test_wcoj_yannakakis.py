"""Tests for Generic Join and Yannakakis, cross-checked against
pairwise plans on random databases."""

import random

import pytest

from repro.errors import SchemaError
from repro.generators.agm import (
    skewed_triangle_database,
    tight_agm_database,
    uniform_random_database,
)
from repro.relational.database import Database
from repro.relational.joins import evaluate_left_deep
from repro.relational.query import Atom, JoinQuery
from repro.relational.relation import Relation
from repro.relational.wcoj import boolean_generic_join, generic_join
from repro.relational.yannakakis import boolean_yannakakis, yannakakis


def normalize(relation, attrs):
    idx = [relation.attributes.index(a) for a in attrs]
    return {tuple(t[i] for i in idx) for t in relation.tuples}


class TestGenericJoin:
    def test_single_atom(self):
        q = JoinQuery([Atom("R", ("a", "b"))])
        db = Database([Relation("R", ("a", "b"), [(1, 2), (3, 4)])])
        out = generic_join(q, db)
        assert normalize(out, ("a", "b")) == {(1, 2), (3, 4)}

    def test_triangle_small(self):
        q = JoinQuery.triangle()
        db = Database(
            [
                Relation("R1", ("x", "y"), [(0, 1), (0, 2)]),
                Relation("R2", ("x", "y"), [(0, 9)]),
                Relation("R3", ("x", "y"), [(1, 9)]),
            ]
        )
        out = generic_join(q, db)
        assert normalize(out, ("a1", "a2", "a3")) == {(0, 1, 9)}

    def test_empty_relation_gives_empty_answer(self):
        q = JoinQuery.triangle()
        db = Database(
            [
                Relation("R1", ("x", "y"), [(0, 1)]),
                Relation("R2", ("x", "y")),
                Relation("R3", ("x", "y"), [(1, 9)]),
            ]
        )
        assert len(generic_join(q, db)) == 0
        assert not boolean_generic_join(q, db)

    def test_bad_attribute_order_rejected(self):
        q = JoinQuery.triangle()
        db = skewed_triangle_database(4)
        with pytest.raises(SchemaError):
            generic_join(q, db, attribute_order=("a1", "a2"))

    def test_all_orders_agree(self):
        from itertools import permutations

        q = JoinQuery.triangle()
        db = uniform_random_database(q, 30, 8, seed=5)
        expected = None
        for order in permutations(q.attributes):
            out = normalize(generic_join(q, db, attribute_order=order), q.attributes)
            if expected is None:
                expected = out
            assert out == expected

    def test_matches_left_deep_on_random(self, rng):
        for shape in (JoinQuery.triangle(), JoinQuery.cycle(4), JoinQuery.path(3), JoinQuery.star(3)):
            for seed in range(3):
                db = uniform_random_database(shape, 25, 6, seed=seed)
                gj = normalize(generic_join(shape, db), shape.attributes)
                plan = evaluate_left_deep(shape, db)
                ld = normalize(plan.answer, shape.attributes)
                assert gj == ld

    def test_boolean_matches_full(self):
        q = JoinQuery.cycle(4)
        for seed in range(5):
            db = uniform_random_database(q, 15, 5, seed=seed)
            assert boolean_generic_join(q, db) == (len(generic_join(q, db)) > 0)


class TestValidationUnified:
    """Both Generic Join entry points share one validation contract.

    Regression: ``boolean_generic_join`` used to skip the permutation
    check entirely (crashing deep in the recursion on malformed
    orders), and an ordered attribute occurring in no atom raised
    IndexError instead of SchemaError."""

    def make(self):
        return JoinQuery.triangle(), skewed_triangle_database(4)

    def test_boolean_rejects_truncated_order(self):
        q, db = self.make()
        with pytest.raises(SchemaError):
            boolean_generic_join(q, db, attribute_order=("a1", "a2"))

    def test_both_reject_order_with_extra_attribute(self):
        for fn in (generic_join, boolean_generic_join):
            q, db = self.make()
            with pytest.raises(SchemaError):
                fn(q, db, attribute_order=("a1", "a2", "a3", "a9"))

    def test_both_reject_order_with_foreign_attribute(self):
        for fn in (generic_join, boolean_generic_join):
            q, db = self.make()
            with pytest.raises(SchemaError):
                fn(q, db, attribute_order=("a1", "a2", "zz"))

    def test_both_reject_duplicate_in_order(self):
        for fn in (generic_join, boolean_generic_join):
            q, db = self.make()
            with pytest.raises(SchemaError):
                fn(q, db, attribute_order=("a1", "a2", "a2"))

    def test_attribute_in_no_atom_raises_schema_error(self):
        # Reachable only through a query whose attribute tuple was
        # widened past its atoms; the defensive check must still speak
        # SchemaError, not IndexError.
        for fn in (generic_join, boolean_generic_join):
            q, db = self.make()
            q.attributes = ("a1", "a2", "a3", "a9")
            with pytest.raises(SchemaError):
                fn(q, db)


class TestYannakakis:
    def test_cyclic_query_rejected(self):
        q = JoinQuery.triangle()
        db = skewed_triangle_database(4)
        with pytest.raises(SchemaError):
            yannakakis(q, db)
        with pytest.raises(SchemaError):
            boolean_yannakakis(q, db)

    def test_path_query(self):
        q = JoinQuery.path(2)
        db = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2), (3, 4)]),
                Relation("R2", ("x", "y"), [(2, 5)]),
            ]
        )
        out = yannakakis(q, db)
        assert normalize(out, ("a0", "a1", "a2")) == {(1, 2, 5)}

    def test_matches_generic_join_on_acyclic(self, rng):
        for shape in (JoinQuery.path(3), JoinQuery.star(3), JoinQuery.path(4)):
            for seed in range(3):
                db = uniform_random_database(shape, 20, 5, seed=seed)
                y = normalize(yannakakis(shape, db), shape.attributes)
                g = normalize(generic_join(shape, db), shape.attributes)
                assert y == g
                assert boolean_yannakakis(shape, db) == (len(g) > 0)

    def test_projection(self):
        q = JoinQuery.path(2)
        db = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2)]),
                Relation("R2", ("x", "y"), [(2, 5), (2, 6)]),
            ]
        )
        out = yannakakis(q, db, project_to=("a0",))
        assert normalize(out, ("a0",)) == {(1,)}

    def test_dangling_tuples_removed(self):
        """Semijoin reduction removes tuples that join with nothing."""
        q = JoinQuery.path(3)
        db = Database(
            [
                Relation("R1", ("x", "y"), [(1, 2), (7, 8)]),  # (7,8) dangles
                Relation("R2", ("x", "y"), [(2, 3)]),
                Relation("R3", ("x", "y"), [(3, 4)]),
            ]
        )
        out = yannakakis(q, db)
        assert normalize(out, q.attributes) == {(1, 2, 3, 4)}


class TestTightDatabases:
    def test_tight_triangle_sizes(self):
        q = JoinQuery.triangle()
        db = tight_agm_database(q, 100)
        assert db.max_relation_size() <= 100
        out = generic_join(q, db)
        assert len(out) == 1000  # (10^0.5... ) floor(100^0.5)^3

    def test_skewed_answer_linear(self):
        db = skewed_triangle_database(40)
        q = JoinQuery.triangle()
        out = generic_join(q, db)
        # Answer ~ 3*(N/2) minus overlaps; must be far below (N/2)^2.
        assert 20 <= len(out) <= 80
