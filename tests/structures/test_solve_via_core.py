"""Tests for the Theorem 5.3 algorithm: HOM via the core."""

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.structures.homomorphism import (
    find_structure_homomorphism,
    is_structure_homomorphism,
)
from repro.structures.solve import solve_hom_via_core, structure_pair_to_csp
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

from ..conftest import make_random_graph


def gs(edges) -> Structure:
    return Structure.from_graph(Graph(edges=edges))


def k(n: int) -> Structure:
    return gs([(i, j) for i in range(n) for j in range(i + 1, n)])


def big_bipartite_pattern(n: int) -> Structure:
    """A dense bipartite pattern: huge treewidth, but its core is one
    edge — the Theorem 5.3 sweet spot."""
    edges = [((0, i), (1, j)) for i in range(n) for j in range(n)]
    return gs(edges)


class TestStructurePairToCSP:
    def test_vocabulary_mismatch(self):
        a = Structure(Vocabulary([RelationSymbol("R", 1)]), [1])
        b = Structure(Vocabulary([RelationSymbol("S", 1)]), [1])
        with pytest.raises(InvalidInstanceError):
            structure_pair_to_csp(a, b)

    def test_empty_target_rejected(self):
        a = k(2)
        b = Structure(Vocabulary.graph_vocabulary(), [])
        with pytest.raises(InvalidInstanceError):
            structure_pair_to_csp(a, b)

    def test_solutions_are_homs(self):
        from repro.csp.bruteforce import solve_bruteforce

        a, b = gs([(0, 1), (1, 2)]), k(3)
        csp = structure_pair_to_csp(a, b)
        solution = solve_bruteforce(csp)
        assert solution is not None
        assert is_structure_homomorphism(a, b, solution)


class TestSolveViaCore:
    def test_agrees_with_direct_search(self, rng):
        for __ in range(8):
            source = Structure.from_graph(make_random_graph(4, 0.5, rng))
            target = Structure.from_graph(make_random_graph(5, 0.5, rng))
            via_core = solve_hom_via_core(source, target)
            direct = find_structure_homomorphism(source, target)
            assert (via_core is None) == (direct is None)
            if via_core is not None:
                assert is_structure_homomorphism(source, target, via_core)

    def test_empty_source(self):
        assert solve_hom_via_core(
            Structure(Vocabulary.graph_vocabulary(), []), k(2)
        ) == {}

    def test_empty_target(self):
        assert solve_hom_via_core(k(2), Structure(Vocabulary.graph_vocabulary(), [])) is None

    def test_mapping_covers_all_of_source(self):
        source = big_bipartite_pattern(3)
        target = k(3)
        hom = solve_hom_via_core(source, target)
        assert hom is not None
        assert set(hom) == set(source.universe)
        assert is_structure_homomorphism(source, target, hom)

    def test_core_route_beats_direct_on_thick_patterns(self):
        """K(4,4) has treewidth 4 but core K2: the via-core route's CSP
        has 2 variables; counting ops shows the gap."""
        source = big_bipartite_pattern(4)
        # Target with an edge but also noise.
        target = gs([(0, 1), (1, 2), (3, 4)])
        core_counter = CostCounter()
        hom = solve_hom_via_core(source, target, core_counter)
        assert hom is not None
        assert is_structure_homomorphism(source, target, hom)

    def test_no_hom_case(self):
        # Odd cycle into bipartite target: no homomorphism.
        c5 = gs([(i, (i + 1) % 5) for i in range(5)])
        bipartite = gs([(0, 1)])
        assert solve_hom_via_core(c5, bipartite) is None
