"""Tests for vocabularies and τ-structures (§2.4)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import DiGraph, Graph
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary


class TestVocabulary:
    def test_symbol_arity_positive(self):
        with pytest.raises(InvalidInstanceError):
            RelationSymbol("R", 0)

    def test_redeclaration_same_arity_ok(self):
        v = Vocabulary([RelationSymbol("R", 2)])
        v.add(RelationSymbol("R", 2))
        assert len(v) == 1

    def test_redeclaration_conflicting_arity(self):
        v = Vocabulary([RelationSymbol("R", 2)])
        with pytest.raises(InvalidInstanceError):
            v.add(RelationSymbol("R", 3))

    def test_arity_is_max(self):
        v = Vocabulary([RelationSymbol("R", 2), RelationSymbol("S", 4)])
        assert v.arity == 4
        assert Vocabulary().arity == 0

    def test_unknown_symbol(self):
        with pytest.raises(InvalidInstanceError):
            Vocabulary().symbol("R")

    def test_graph_vocabulary(self):
        v = Vocabulary.graph_vocabulary()
        assert "E" in v
        assert v.symbol("E").arity == 2


class TestStructure:
    def tau(self):
        return Vocabulary([RelationSymbol("E", 2), RelationSymbol("P", 1)])

    def test_duplicate_universe_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Structure(self.tau(), [1, 1])

    def test_tuple_arity_checked(self):
        with pytest.raises(InvalidInstanceError):
            Structure(self.tau(), [1, 2], {"E": [(1,)]})

    def test_tuple_elements_in_universe(self):
        with pytest.raises(InvalidInstanceError):
            Structure(self.tau(), [1], {"E": [(1, 99)]})

    def test_unknown_relation_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Structure(self.tau(), [1], {"Q": [(1,)]})

    def test_missing_relations_default_empty(self):
        s = Structure(self.tau(), [1, 2])
        assert s.relation("E") == frozenset()
        assert s.total_tuples() == 0

    def test_induced_substructure(self):
        s = Structure(self.tau(), [1, 2, 3], {"E": [(1, 2), (2, 3)], "P": [(3,)]})
        sub = s.induced_substructure([1, 2])
        assert sub.relation("E") == frozenset({(1, 2)})
        assert sub.relation("P") == frozenset()

    def test_induced_unknown_element(self):
        s = Structure(self.tau(), [1])
        with pytest.raises(InvalidInstanceError):
            s.induced_substructure([9])

    def test_gaifman_graph(self):
        s = Structure(self.tau(), [1, 2, 3], {"E": [(1, 2)], "P": [(3,)]})
        g = s.gaifman_graph()
        assert g.has_edge(1, 2)
        assert g.degree(3) == 0

    def test_equality(self):
        a = Structure(self.tau(), [1, 2], {"E": [(1, 2)]})
        b = Structure(self.tau(), [2, 1], {"E": [(1, 2)]})
        assert a == b


class TestGraphRoundTrips:
    def test_digraph_round_trip(self):
        d = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        s = Structure.from_digraph(d)
        back = s.to_digraph()
        assert set(back.edges()) == set(d.edges())

    def test_undirected_symmetrized(self):
        g = Graph(edges=[(1, 2)])
        s = Structure.from_graph(g)
        assert (1, 2) in s.relation("E") and (2, 1) in s.relation("E")

    def test_to_digraph_needs_graph_vocabulary(self):
        tau = Vocabulary([RelationSymbol("R", 3)])
        s = Structure(tau, [1, 2, 3])
        with pytest.raises(InvalidInstanceError):
            s.to_digraph()
