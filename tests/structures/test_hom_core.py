"""Tests for structure homomorphisms and cores (§2.4, §5)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.structures.core import compute_core, is_core
from repro.structures.homomorphism import (
    count_structure_homomorphisms,
    find_structure_homomorphism,
    is_structure_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

from ..conftest import make_random_graph


def graph_structure(edges) -> Structure:
    return Structure.from_graph(Graph(edges=edges))


def k(n: int) -> Structure:
    return graph_structure([(i, j) for i in range(n) for j in range(i + 1, n)])


def cycle(n: int) -> Structure:
    return graph_structure([(i, (i + 1) % n) for i in range(n)])


class TestHomomorphism:
    def test_vocabulary_mismatch(self):
        a = Structure(Vocabulary([RelationSymbol("R", 1)]), [1])
        b = Structure(Vocabulary([RelationSymbol("S", 1)]), [1])
        with pytest.raises(InvalidInstanceError):
            find_structure_homomorphism(a, b)

    def test_verification(self):
        edge = graph_structure([(0, 1)])
        target = k(3)
        assert is_structure_homomorphism(edge, target, {0: 0, 1: 1})
        assert not is_structure_homomorphism(edge, target, {0: 0, 1: 0})
        assert not is_structure_homomorphism(edge, target, {0: 0})

    def test_coloring_semantics(self):
        assert find_structure_homomorphism(cycle(5), k(3)) is not None
        assert find_structure_homomorphism(cycle(5), k(2)) is None
        assert find_structure_homomorphism(cycle(4), k(2)) is not None

    def test_higher_arity(self):
        tau = Vocabulary([RelationSymbol("T", 3)])
        a = Structure(tau, ["x", "y", "z"], {"T": [("x", "y", "z")]})
        b = Structure(tau, [0, 1], {"T": [(0, 0, 1)]})
        hom = find_structure_homomorphism(a, b)
        assert hom == {"x": 0, "y": 0, "z": 1}

    def test_counting_matches_graph_homs(self):
        from repro.graphs.homomorphism import count_graph_homomorphisms

        g_src = Graph(edges=[(0, 1), (1, 2)])
        g_dst = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        ours = count_structure_homomorphisms(
            Structure.from_graph(g_src), Structure.from_graph(g_dst)
        )
        theirs = count_graph_homomorphisms(g_src, g_dst)
        assert ours == theirs

    def test_empty_source(self):
        tau = Vocabulary.graph_vocabulary()
        empty = Structure(tau, [])
        assert find_structure_homomorphism(empty, k(2)) == {}
        assert count_structure_homomorphisms(empty, k(2)) == 1

    def test_empty_target(self):
        assert find_structure_homomorphism(k(2), Structure(Vocabulary.graph_vocabulary(), [])) is None


class TestCore:
    def test_single_vertex_is_core(self):
        v = Structure(Vocabulary.graph_vocabulary(), [0])
        assert is_core(v)

    def test_cliques_are_cores(self):
        for n in (2, 3, 4):
            assert is_core(k(n))

    def test_odd_cycles_are_cores(self):
        assert is_core(cycle(5))

    def test_even_cycle_core_is_edge(self):
        core = compute_core(cycle(6))
        assert core.universe_size == 2

    def test_bipartite_core_is_edge(self):
        bipartite = graph_structure([(0, 3), (0, 4), (1, 3), (2, 4)])
        core = compute_core(bipartite)
        assert core.universe_size == 2

    def test_core_is_induced_and_receives_hom(self, rng):
        for _ in range(6):
            g = make_random_graph(6, 0.4, rng)
            if g.num_edges == 0:
                continue
            s = Structure.from_graph(g)
            core = compute_core(s)
            assert is_core(core)
            assert set(core.universe) <= set(s.universe)
            assert find_structure_homomorphism(s, core) is not None
            assert find_structure_homomorphism(core, s) is not None

    def test_core_idempotent(self):
        core = compute_core(cycle(6))
        assert compute_core(core) == core

    def test_triangle_plus_pendant_core(self):
        # K3 with a pendant vertex retracts to K3.
        s = graph_structure([(0, 1), (1, 2), (0, 2), (2, 3)])
        core = compute_core(s)
        assert core.universe_size == 3
