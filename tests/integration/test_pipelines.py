"""End-to-end pipelines mirroring the paper's proof architectures."""

import pytest

from repro.complexity.bounds import all_lower_bounds
from repro.csp.backtracking import solve_backtracking
from repro.csp.treewidth_dp import solve_with_treewidth
from repro.generators.graph_gen import planted_clique_graph
from repro.generators.sat_gen import planted_ksat
from repro.graphs.special import solve_special_csp
from repro.reductions.clique_to_special import clique_to_special_csp
from repro.reductions.sat_to_coloring import coloring_as_csp, sat_to_3coloring
from repro.reductions.sat_to_csp import sat_to_csp
from repro.treewidth.heuristics import treewidth_min_fill


class TestETHPipeline:
    """Hypothesis 2's reduction chain: 3SAT → 3COL → binary CSP |D|=3,
    solved by the generic CSP machinery, recovering a SAT model."""

    def test_full_chain(self):
        formula, planted = planted_ksat(6, 18, 3, seed=8)
        col_red = sat_to_3coloring(formula)
        col_red.certify()
        csp = coloring_as_csp(col_red.target.graph)
        assert csp.is_binary and csp.domain_size == 3

        solution = solve_backtracking(csp, preprocess_gac=True)
        assert solution is not None
        model = col_red.pull_back(solution)
        assert formula.evaluate(model)

    def test_chain_sizes_compose_linearly(self):
        """The composed reduction keeps |V| + |C| = O(n + m) — the
        property Corollary 6.2 needs."""
        for n, m in ((4, 10), (8, 20), (16, 40)):
            formula, __ = planted_ksat(n, m, 3, seed=n)
            col_red = sat_to_3coloring(formula)
            csp = coloring_as_csp(col_red.target.graph)
            assert csp.num_variables <= 3 + 2 * n + 6 * m
            assert csp.num_constraints <= 3 + 3 * n + 12 * m


class TestSpecialCSPPipeline:
    """§5's W[1]-hardness chain: Clique → Special CSP, solved by the
    quasipolynomial two-phase solver, recovering the clique."""

    def test_full_chain(self):
        graph, members = planted_clique_graph(9, 3, p=0.25, seed=2)
        red = clique_to_special_csp(graph, 3)
        red.certify()
        solution = solve_special_csp(red.target)
        assert solution is not None
        clique = red.pull_back(solution)
        assert graph.is_clique(clique)
        assert len(set(clique)) == 3


class TestFreuderOnReducedInstances:
    """Theorem 4.2's algorithm must handle what Theorem 7.2 constructs:
    the DomSet CSP has treewidth ≤ t, so the DP solves it."""

    def test_dp_on_domset_instance(self):
        from repro.generators.graph_gen import planted_dominating_set_graph
        from repro.graphs.dominating_set import is_dominating_set
        from repro.reductions.domset_to_csp import dominating_set_to_csp

        graph, __ = planted_dominating_set_graph(6, 2, seed=5)
        red = dominating_set_to_csp(graph, 2)
        width, dec = treewidth_min_fill(red.target.primal_graph())
        assert width <= 2
        solution = solve_with_treewidth(red.target, dec)
        assert solution is not None
        assert is_dominating_set(graph, red.pull_back(solution))


class TestSatCSPPipeline:
    def test_sat_csp_treewidth_solvable_when_narrow(self):
        """A chain-structured formula gives a low-treewidth CSP that
        Freuder's DP solves directly (Corollary 6.1 instances)."""
        from repro.sat.cnf import CNF

        clauses = [[i, -(i + 1)] for i in range(1, 8)]
        formula = CNF(8, clauses)
        red = sat_to_csp(formula)
        width, dec = treewidth_min_fill(red.target.primal_graph())
        assert width <= 2
        solution = solve_with_treewidth(red.target, dec)
        assert solution is not None
        assert formula.evaluate(red.pull_back(solution))


class TestBoundExperimentIndexConsistency:
    def test_every_bound_names_valid_experiment(self):
        """Experiment ids in the bounds registry exist in DESIGN.md's
        index (by prefix convention E<number>-)."""
        valid_prefixes = {f"E{i}-" for i in range(1, 23)}
        for bound in all_lower_bounds():
            if bound.experiment:
                assert any(
                    bound.experiment.startswith(p) for p in valid_prefixes
                ), bound.key
