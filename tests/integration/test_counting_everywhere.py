"""The counting problem across all four domains + #SAT."""

from itertools import product

import pytest

from repro.counting import CostCounter
from repro.csp.bruteforce import count_bruteforce
from repro.generators.agm import uniform_random_database
from repro.generators.sat_gen import random_ksat
from repro.relational.counting_answers import count_answers
from repro.relational.query import JoinQuery
from repro.relational.wcoj import generic_join
from repro.sat.cnf import CNF
from repro.sat.model_counting import count_models

from ..conftest import make_random_binary_csp


class TestCountAnswers:
    @pytest.mark.parametrize(
        "shape",
        [JoinQuery.triangle(), JoinQuery.path(3), JoinQuery.star(3), JoinQuery.cycle(4)],
        ids=["triangle", "path3", "star3", "cycle4"],
    )
    def test_matches_materialization(self, shape):
        for seed in range(4):
            database = uniform_random_database(shape, 20, 5, seed=seed)
            assert count_answers(shape, database) == len(
                generic_join(shape, database)
            )

    def test_empty_database(self):
        from repro.relational.database import Database
        from repro.relational.relation import Relation

        query = JoinQuery.path(2)
        database = Database(
            [Relation("R1", ("x", "y")), Relation("R2", ("x", "y"))]
        )
        assert count_answers(query, database) == 0

    def test_counting_cheaper_than_enumeration_on_paths(self):
        """A long path query can have huge answers; counting stays in
        N^{tw+1} = N^2 work."""
        query = JoinQuery.path(6)
        database = uniform_random_database(query, 40, 6, seed=1)
        counter = CostCounter()
        count = count_answers(query, database, counter)
        answer_size = len(generic_join(query, database))
        assert count == answer_size
        if answer_size > 0:
            # Counting ops per answer tuple shrink as answers multiply.
            assert counter.total < 60 * 40 * 40 + 10_000


class TestCountModels:
    def test_empty(self):
        assert count_models(CNF(0)) == 1

    def test_free_variables_double(self):
        assert count_models(CNF(3)) == 8
        assert count_models(CNF(3, [[1]])) == 4

    def test_contradiction(self):
        assert count_models(CNF.from_clauses([[1], [-1]])) == 0

    def test_matches_enumeration(self, rng):
        for __ in range(15):
            n = rng.randrange(1, 6)
            clauses = []
            for __ in range(rng.randrange(0, 8)):
                width = rng.randrange(1, min(3, n) + 1)
                variables = rng.sample(range(1, n + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
            formula = CNF(n, clauses)
            expected = sum(
                1
                for values in product((False, True), repeat=n)
                if formula.evaluate(dict(zip(range(1, n + 1), values)))
            )
            assert count_models(formula) == expected

    def test_xor_chain_has_two_models(self):
        # x1 ⊕ x2, x2 ⊕ x3 as CNF: exactly 2 models.
        formula = CNF.from_clauses([[1, 2], [-1, -2], [2, 3], [-2, -3]])
        assert count_models(formula) == 2


class TestCountingConsistencyAcrossDomains:
    def test_csp_query_sat_counts_agree(self, rng):
        """One CSP's solution count through the query and (where the
        domain is Boolean) SAT routes."""
        from repro.reductions.query_to_csp import csp_to_query

        for __ in range(6):
            inst = make_random_binary_csp(
                rng, num_variables=4, domain_size=2, num_constraints=4
            )
            expected = count_bruteforce(inst)
            query, database = csp_to_query(inst).target
            assert count_answers(query, database) == expected
