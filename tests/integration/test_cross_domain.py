"""Cross-domain integration: the same problem solved in all four of the
paper's domains must give the same answer (§2's equivalences, end to
end)."""

from itertools import product

import pytest

from repro.csp.bruteforce import count_bruteforce, solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.graphs.graph import Graph
from repro.graphs.homomorphism import count_graph_homomorphisms
from repro.graphs.subgraph_iso import find_partitioned_subgraph
from repro.reductions.csp_to_graph import csp_to_partitioned_subgraph
from repro.reductions.csp_to_structures import csp_to_structures
from repro.reductions.query_to_csp import csp_to_query, query_to_csp
from repro.relational.wcoj import generic_join
from repro.structures.homomorphism import count_structure_homomorphisms
from repro.structures.structure import Structure

from ..conftest import make_random_binary_csp, make_random_graph


class TestFourDomainsRoundTrip:
    """One CSP instance pushed through every §2 translation."""

    def test_all_domains_agree_on_random_instances(self, rng):
        for trial in range(10):
            inst = make_random_binary_csp(
                rng, num_variables=4, domain_size=3, num_constraints=4
            )
            expected = count_bruteforce(inst)

            # Domain 1: database queries.
            q_red = csp_to_query(inst)
            query, database = q_red.target
            assert len(generic_join(query, database)) == expected

            # Domain 3: partitioned subgraph isomorphism (decision).
            g_red = csp_to_partitioned_subgraph(inst)
            pattern, host, partition = g_red.target
            embedding = find_partitioned_subgraph(pattern, host, partition)
            assert (embedding is not None) == (expected > 0)

            # Domain 4: relational structures (counting).
            s_red = csp_to_structures(inst)
            a, b = s_red.target
            assert count_structure_homomorphisms(a, b) == expected

    def test_query_to_csp_to_query_identity(self, rng):
        """Query → CSP → Query preserves the answer set cardinality."""
        from repro.generators.agm import uniform_random_database
        from repro.relational.query import JoinQuery

        query = JoinQuery.triangle()
        database = uniform_random_database(query, 15, 5, seed=3)
        red1 = query_to_csp(query, database)
        red2 = csp_to_query(red1.target)
        query2, database2 = red2.target
        assert len(generic_join(query, database)) == len(
            generic_join(query2, database2)
        )


class TestHomomorphismConsistency:
    def test_graph_vs_structure_homs(self, rng):
        """Graph homomorphism counting equals structure homomorphism
        counting over the symmetrized encoding."""
        for __ in range(6):
            source = make_random_graph(4, 0.5, rng)
            target = make_random_graph(5, 0.6, rng)
            assert count_graph_homomorphisms(
                source, target
            ) == count_structure_homomorphisms(
                Structure.from_graph(source), Structure.from_graph(target)
            )

    def test_symmetric_csp_vs_graph_hom(self, rng):
        """A binary CSP with one symmetric relation everywhere counts
        solutions as homomorphisms primal → relation-graph (§2.3)."""
        for __ in range(6):
            pattern = make_random_graph(4, 0.6, rng)
            if pattern.num_edges == 0:
                continue
            relation_graph = make_random_graph(4, 0.5, rng)
            symmetric = set()
            for u, v in relation_graph.edges():
                symmetric.add((u, v))
                symmetric.add((v, u))
            constraints = [
                Constraint((u, v), symmetric) for u, v in pattern.edges()
            ]
            inst = CSPInstance(
                pattern.vertices, relation_graph.vertices, constraints
            )
            # Count homs only over the pattern's vertices (isolated
            # pattern vertices are free in both models).
            assert count_bruteforce(inst) == count_graph_homomorphisms(
                pattern, relation_graph
            )


class TestColoringEverywhere:
    """3-coloring of one graph through four machineries."""

    def graph(self):
        # A wheel-ish graph: 5-cycle plus a center joined to all.
        g = Graph(edges=[(i, (i + 1) % 5) for i in range(5)])
        for i in range(5):
            g.add_edge("hub", i)
        return g

    def test_wheel_w5_coloring(self):
        g = self.graph()
        domain = [0, 1, 2, 3]
        ne = {(a, b) for a, b in product(domain, repeat=2) if a != b}

        # Odd wheel needs 4 colors.
        three = CSPInstance(
            g.vertices, domain[:3], [Constraint(e, ne) for e in g.edges()]
        )
        four = CSPInstance(
            g.vertices, domain, [Constraint(e, ne) for e in g.edges()]
        )
        assert solve_bruteforce(three) is None
        solution = solve_bruteforce(four)
        assert solution is not None

        # Same verdicts via structures: hom(W5, K3) none, hom(W5, K4) some.
        from repro.structures.homomorphism import find_structure_homomorphism

        w5 = Structure.from_graph(g)
        k3 = Structure.from_graph(
            Graph(edges=[(0, 1), (1, 2), (0, 2)])
        )
        k4 = Structure.from_graph(
            Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        )
        assert find_structure_homomorphism(w5, k3) is None
        assert find_structure_homomorphism(w5, k4) is not None
