"""Tests for (partitioned) subgraph isomorphism (§2.3)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.graphs.subgraph_iso import (
    find_partitioned_subgraph,
    find_subgraph_isomorphism,
)

from ..conftest import make_random_graph


def k(n: int) -> Graph:
    return Graph(edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


class TestPartitionValidation:
    def test_missing_class_rejected(self, triangle_graph):
        host = k(3)
        with pytest.raises(InvalidInstanceError):
            find_partitioned_subgraph(triangle_graph, host, {0: [0]})

    def test_overlapping_classes_rejected(self):
        pattern = Graph(edges=[(0, 1)])
        host = Graph(edges=[("a", "b")])
        with pytest.raises(InvalidInstanceError):
            find_partitioned_subgraph(
                pattern, host, {0: ["a"], 1: ["a"]}
            )

    def test_unknown_host_vertex_rejected(self):
        pattern = Graph(edges=[(0, 1)])
        host = Graph(edges=[("a", "b")])
        with pytest.raises(InvalidInstanceError):
            find_partitioned_subgraph(pattern, host, {0: ["a"], 1: ["zzz"]})


class TestPartitionedSearch:
    def test_trivial_edge(self):
        pattern = Graph(edges=[(0, 1)])
        host = Graph(edges=[("a", "b")])
        found = find_partitioned_subgraph(pattern, host, {0: ["a"], 1: ["b"]})
        assert found == {0: "a", 1: "b"}

    def test_respects_classes(self):
        """A valid embedding exists globally but not within the classes."""
        pattern = Graph(edges=[(0, 1)])
        host = Graph(edges=[("a", "b")], vertices=["a", "b", "c", "d"])
        found = find_partitioned_subgraph(pattern, host, {0: ["a"], 1: ["c", "d"]})
        assert found is None

    def test_triangle_partitioned(self):
        pattern = k(3)
        host = Graph()
        classes = {i: [f"{i}·{d}" for d in range(2)] for i in range(3)}
        for i in range(3):
            for v in classes[i]:
                host.add_vertex(v)
        # Only the d=1 copies form a triangle.
        for i in range(3):
            for j in range(i + 1, 3):
                host.add_edge(f"{i}·1", f"{j}·1")
        found = find_partitioned_subgraph(pattern, host, classes)
        assert found == {0: "0·1", 1: "1·1", 2: "2·1"}

    def test_empty_class_fails_fast(self):
        pattern = Graph(edges=[(0, 1)])
        host = Graph(vertices=["a"])
        found = find_partitioned_subgraph(pattern, host, {0: ["a"], 1: []})
        assert found is None


class TestPlainSubgraphIso:
    def test_triangle_in_k4(self):
        found = find_subgraph_isomorphism(k(3), k(4))
        assert found is not None
        assert len(set(found.values())) == 3

    def test_k4_not_in_triangle(self):
        assert find_subgraph_isomorphism(k(4), k(3)) is None

    def test_path_in_cycle(self):
        path = Graph(edges=[(0, 1), (1, 2)])
        cyc = Graph(edges=[(i, (i + 1) % 5) for i in range(5)])
        found = find_subgraph_isomorphism(path, cyc)
        assert found is not None
        assert cyc.has_edge(found[0], found[1])
        assert cyc.has_edge(found[1], found[2])

    def test_injectivity(self, petersen_graph):
        pattern = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        found = find_subgraph_isomorphism(pattern, petersen_graph)
        assert found is not None
        assert len(set(found.values())) == 4

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        from networkx.algorithms import isomorphism

        for _ in range(8):
            pattern = make_random_graph(3, 0.7, rng)
            host = make_random_graph(6, 0.5, rng)
            theirs_host = nx.Graph()
            theirs_host.add_nodes_from(host.vertices)
            theirs_host.add_edges_from(host.edges())
            theirs_pat = nx.Graph()
            theirs_pat.add_nodes_from(pattern.vertices)
            theirs_pat.add_edges_from(pattern.edges())
            matcher = isomorphism.GraphMatcher(theirs_host, theirs_pat)
            expected = matcher.subgraph_is_monomorphic()
            assert (find_subgraph_isomorphism(pattern, host) is not None) == expected
