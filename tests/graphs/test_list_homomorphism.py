"""Tests for list homomorphisms ([33])."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.graphs.homomorphism import count_graph_homomorphisms
from repro.graphs.list_homomorphism import (
    count_list_homomorphisms,
    find_list_homomorphism,
    is_list_homomorphism,
)

from ..conftest import make_random_graph


def k(n: int) -> Graph:
    return Graph(edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


class TestValidation:
    def test_missing_list(self, triangle_graph):
        with pytest.raises(InvalidInstanceError):
            find_list_homomorphism(triangle_graph, k(3), {0: [0]})

    def test_list_outside_target(self, triangle_graph):
        lists = {v: [99] for v in triangle_graph.vertices}
        with pytest.raises(InvalidInstanceError):
            find_list_homomorphism(triangle_graph, k(3), lists)


class TestFind:
    def test_full_lists_reduce_to_plain_hom(self, rng):
        for __ in range(8):
            source = make_random_graph(4, 0.5, rng)
            target = make_random_graph(4, 0.6, rng)
            lists = {v: list(target.vertices) for v in source.vertices}
            listed = find_list_homomorphism(source, target, lists)
            plain_count = count_graph_homomorphisms(source, target)
            assert (listed is not None) == (plain_count > 0)
            if listed is not None:
                assert is_list_homomorphism(source, target, lists, listed)

    def test_lists_constrain(self):
        edge = Graph(edges=[(0, 1)])
        target = k(3)
        lists = {0: [0], 1: [1]}
        found = find_list_homomorphism(edge, target, lists)
        assert found == {0: 0, 1: 1}

    def test_empty_list_blocks(self):
        edge = Graph(edges=[(0, 1)])
        lists = {0: [], 1: [0, 1, 2]}
        assert find_list_homomorphism(edge, k(3), lists) is None

    def test_incompatible_lists(self):
        # Both endpoints restricted to the same single vertex: no edge.
        edge = Graph(edges=[(0, 1)])
        lists = {0: [0], 1: [0]}
        assert find_list_homomorphism(edge, k(3), lists) is None

    def test_empty_source(self):
        assert find_list_homomorphism(Graph(), k(2), {}) == {}


class TestCount:
    def test_count_with_full_lists_matches_plain(self, rng):
        for __ in range(6):
            source = make_random_graph(4, 0.5, rng)
            target = make_random_graph(4, 0.5, rng)
            lists = {v: list(target.vertices) for v in source.vertices}
            assert count_list_homomorphisms(
                source, target, lists
            ) == count_graph_homomorphisms(source, target)

    def test_singleton_lists_count_one_or_zero(self):
        edge = Graph(edges=[(0, 1)])
        target = k(3)
        assert count_list_homomorphisms(edge, target, {0: [0], 1: [1]}) == 1
        assert count_list_homomorphisms(edge, target, {0: [0], 1: [0]}) == 0

    def test_count_multiplies_over_free_vertices(self):
        isolated = Graph(vertices=[0, 1])
        target = k(3)
        lists = {0: [0, 1], 1: [0, 1, 2]}
        assert count_list_homomorphisms(isolated, target, lists) == 6
