"""Tests for color-coding k-path detection (§5 FPT showcase)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.color_coding import (
    find_k_path_color_coding,
    find_k_path_exhaustive_colorings,
    is_simple_path,
)
from repro.graphs.graph import Graph

from ..conftest import make_random_graph


def path_graph(n: int) -> Graph:
    return Graph(edges=[(i, i + 1) for i in range(n - 1)])


def longest_path_bruteforce(graph: Graph) -> int:
    """Oracle: longest simple path length (vertices) by DFS."""
    best = 1 if graph.num_vertices else 0

    def extend(path: list, seen: set) -> None:
        nonlocal best
        best = max(best, len(path))
        for u in graph.neighbors(path[-1]):
            if u not in seen:
                path.append(u)
                seen.add(u)
                extend(path, seen)
                seen.discard(u)
                path.pop()

    for start in graph.vertices:
        extend([start], {start})
    return best


class TestWitnessCheck:
    def test_is_simple_path(self, triangle_graph):
        assert is_simple_path(triangle_graph, (0, 1, 2))
        assert not is_simple_path(triangle_graph, (0, 1, 0))
        g = path_graph(4)
        assert not is_simple_path(g, (0, 2))


class TestColorCoding:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            find_k_path_color_coding(Graph(), 0)

    def test_k1(self):
        assert find_k_path_color_coding(Graph(), 1) is None
        assert find_k_path_color_coding(Graph(vertices=[5]), 1) == (5,)

    def test_too_few_vertices(self):
        assert find_k_path_color_coding(path_graph(3), 4) is None

    def test_exact_path_graph(self):
        g = path_graph(6)
        for k in range(2, 7):
            path = find_k_path_color_coding(g, k, seed=k)
            assert path is not None
            assert is_simple_path(g, path)
            assert len(path) == k

    def test_no_instance_on_small_components(self):
        # Two disjoint triangles: no simple path on 4 vertices.
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert find_k_path_color_coding(g, 4, seed=1) is None

    def test_yes_instances_found_whp(self, rng):
        for __ in range(8):
            g = make_random_graph(9, 0.5, rng)
            longest = longest_path_bruteforce(g)
            for k in range(2, min(longest, 5) + 1):
                path = find_k_path_color_coding(g, k, seed=rng.randrange(10**6))
                assert path is not None, (k, longest)
                assert is_simple_path(g, path)
                assert len(path) == k

    def test_never_false_positive(self, rng):
        for __ in range(8):
            g = make_random_graph(7, 0.3, rng)
            longest = longest_path_bruteforce(g)
            path = find_k_path_color_coding(g, longest + 1, seed=3)
            assert path is None


class TestExhaustiveColorings:
    def test_matches_oracle(self, rng):
        for __ in range(6):
            g = make_random_graph(5, 0.45, rng)
            longest = longest_path_bruteforce(g)
            for k in (2, 3):
                found = find_k_path_exhaustive_colorings(g, k)
                assert (found is not None) == (longest >= k)
                if found is not None:
                    assert is_simple_path(g, found)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            find_k_path_exhaustive_colorings(Graph(), 0)
