"""Tests for k-clique algorithms (brute force and Nešetřil–Poljak)."""

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError
from repro.generators.graph_gen import gnp_random_graph, planted_clique_graph, turan_graph
from repro.graphs.clique import (
    find_clique_bruteforce,
    find_clique_matrix,
    has_clique,
    max_clique,
)
from repro.graphs.graph import Graph

from ..conftest import make_random_graph


class TestBruteForce:
    def test_k0_always_found(self):
        assert find_clique_bruteforce(Graph(), 0) == ()

    def test_k1_needs_a_vertex(self):
        assert find_clique_bruteforce(Graph(), 1) is None
        assert find_clique_bruteforce(Graph(vertices=[7]), 1) == (7,)

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidInstanceError):
            find_clique_bruteforce(Graph(), -1)

    def test_triangle(self, triangle_graph):
        clique = find_clique_bruteforce(triangle_graph, 3)
        assert clique is not None
        assert triangle_graph.is_clique(clique)

    def test_no_4_clique_in_triangle(self, triangle_graph):
        assert find_clique_bruteforce(triangle_graph, 4) is None

    def test_petersen_is_triangle_free(self, petersen_graph):
        assert find_clique_bruteforce(petersen_graph, 3) is None
        assert find_clique_bruteforce(petersen_graph, 2) is not None

    def test_turan_graph_is_clique_free(self):
        for parts in (2, 3):
            g = turan_graph(9, parts)
            assert has_clique(g, parts)
            assert not has_clique(g, parts + 1)

    def test_returns_distinct_vertices(self):
        g, members = planted_clique_graph(12, 4, seed=5)
        clique = find_clique_bruteforce(g, 4)
        assert clique is not None
        assert len(set(clique)) == 4
        assert g.is_clique(clique)

    def test_counter_charged(self, triangle_graph):
        counter = CostCounter()
        find_clique_bruteforce(triangle_graph, 3, counter)
        assert counter.total > 0


class TestMatrixClique:
    def test_requires_multiple_of_three(self, triangle_graph):
        with pytest.raises(InvalidInstanceError):
            find_clique_matrix(triangle_graph, 4)
        with pytest.raises(InvalidInstanceError):
            find_clique_matrix(triangle_graph, 0)

    def test_triangle_found(self, triangle_graph):
        clique = find_clique_matrix(triangle_graph, 3)
        assert clique is not None
        assert triangle_graph.is_clique(clique)
        assert len(set(clique)) == 3

    def test_agrees_with_bruteforce_random(self, rng):
        for k in (3, 6):
            for _ in range(10):
                g = make_random_graph(rng.randrange(6, 12), 0.6, rng)
                bf = find_clique_bruteforce(g, k)
                mm = find_clique_matrix(g, k)
                assert (bf is None) == (mm is None)
                if mm is not None:
                    assert g.is_clique(mm)
                    assert len(set(mm)) == k

    def test_six_clique_planted(self):
        g, members = planted_clique_graph(14, 6, p=0.2, seed=3)
        found = find_clique_matrix(g, 6)
        assert found is not None
        assert g.is_clique(found)

    def test_empty_graph(self):
        assert find_clique_matrix(Graph(), 3) is None


class TestMaxClique:
    def test_empty(self):
        assert max_clique(Graph()) == ()

    def test_triangle_plus_pendant(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert len(max_clique(g)) == 3

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(10):
            n = rng.randrange(4, 10)
            g = make_random_graph(n, 0.5, rng)
            theirs = nx.Graph()
            theirs.add_nodes_from(g.vertices)
            theirs.add_edges_from(g.edges())
            expected = max(
                (len(c) for c in nx.find_cliques(theirs)), default=0
            )
            assert len(max_clique(g)) == expected
