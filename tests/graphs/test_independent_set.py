"""Tests for Independent Set and its clique duality (§5)."""

from repro.graphs.graph import Graph
from repro.graphs.independent_set import (
    find_independent_set_bruteforce,
    find_independent_set_via_clique,
    is_independent_set,
)

from ..conftest import make_random_graph


class TestIsIndependentSet:
    def test_empty(self, triangle_graph):
        assert is_independent_set(triangle_graph, [])

    def test_singleton(self, triangle_graph):
        assert is_independent_set(triangle_graph, [0])

    def test_adjacent_pair_rejected(self, triangle_graph):
        assert not is_independent_set(triangle_graph, [0, 1])

    def test_nonadjacent_pair(self):
        path = Graph(edges=[(0, 1), (1, 2)])
        assert is_independent_set(path, [0, 2])


class TestFinders:
    def test_triangle_max_is_one(self, triangle_graph):
        assert find_independent_set_bruteforce(triangle_graph, 1) is not None
        assert find_independent_set_bruteforce(triangle_graph, 2) is None

    def test_petersen_has_4_independent(self, petersen_graph):
        found = find_independent_set_bruteforce(petersen_graph, 4)
        assert found is not None
        assert is_independent_set(petersen_graph, found)
        # Petersen's independence number is exactly 4.
        assert find_independent_set_bruteforce(petersen_graph, 5) is None

    def test_both_routes_agree(self, rng):
        for _ in range(10):
            g = make_random_graph(rng.randrange(3, 9), 0.5, rng)
            for k in (2, 3):
                a = find_independent_set_bruteforce(g, k)
                b = find_independent_set_via_clique(g, k)
                assert (a is None) == (b is None)
                if a is not None:
                    assert is_independent_set(g, a)
                if b is not None:
                    assert is_independent_set(g, b)

    def test_empty_graph_vertices_only(self):
        g = Graph(vertices=range(4))
        found = find_independent_set_bruteforce(g, 4)
        assert found is not None
        assert len(found) == 4
