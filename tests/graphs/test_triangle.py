"""Tests for the four triangle-detection algorithms."""

import pytest

from repro.counting import CostCounter
from repro.generators.graph_gen import skewed_bipartite_graph
from repro.graphs.graph import Graph
from repro.graphs.triangle import (
    OMEGA,
    ayz_degree_threshold,
    count_triangles_matrix,
    find_triangle_ayz,
    find_triangle_enumeration,
    find_triangle_matrix,
    find_triangle_naive,
    has_triangle,
)

from ..conftest import make_random_graph

ALL_DETECTORS = (
    find_triangle_naive,
    find_triangle_enumeration,
    find_triangle_ayz,
    find_triangle_matrix,
)


def _is_triangle(graph: Graph, triple) -> bool:
    a, b, c = triple
    return (
        len({a, b, c}) == 3
        and graph.has_edge(a, b)
        and graph.has_edge(b, c)
        and graph.has_edge(a, c)
    )


@pytest.mark.parametrize("detector", ALL_DETECTORS)
class TestEachDetector:
    def test_empty_graph(self, detector):
        assert detector(Graph()) is None

    def test_single_triangle(self, detector, triangle_graph):
        found = detector(triangle_graph)
        assert found is not None
        assert _is_triangle(triangle_graph, found)

    def test_triangle_free(self, detector, petersen_graph):
        assert detector(petersen_graph) is None

    def test_bipartite_is_triangle_free(self, detector):
        g = skewed_bipartite_graph(10, hubs=2, num_edges=15, seed=1)
        assert detector(g) is None

    def test_triangle_embedded_in_path(self, detector):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)])
        found = detector(g)
        assert found is not None
        assert _is_triangle(g, found)


class TestAgreement:
    def test_random_graphs(self, rng):
        for _ in range(25):
            g = make_random_graph(rng.randrange(3, 14), rng.random() * 0.5, rng)
            answers = [d(g) is not None for d in ALL_DETECTORS]
            assert len(set(answers)) == 1, g
            for d in ALL_DETECTORS:
                found = d(g)
                if found is not None:
                    assert _is_triangle(g, found)


class TestCounting:
    def test_count_empty(self):
        assert count_triangles_matrix(Graph()) == 0

    def test_count_single(self, triangle_graph):
        assert count_triangles_matrix(triangle_graph) == 1

    def test_count_k4(self):
        k4 = Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert count_triangles_matrix(k4) == 4

    def test_count_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(10):
            g = make_random_graph(rng.randrange(4, 12), 0.5, rng)
            theirs = nx.Graph()
            theirs.add_nodes_from(g.vertices)
            theirs.add_edges_from(g.edges())
            expected = sum(nx.triangles(theirs).values()) // 3
            assert count_triangles_matrix(g) == expected


class TestAYZInternals:
    def test_threshold_zero_edges(self):
        assert ayz_degree_threshold(0) == 0.0

    def test_threshold_formula(self):
        m = 1000
        expected = m ** ((OMEGA - 1) / (OMEGA + 1))
        assert ayz_degree_threshold(m) == pytest.approx(expected)

    def test_explicit_threshold_respected(self, triangle_graph):
        # With threshold 0 all vertices go to the matrix phase.
        found = find_triangle_ayz(triangle_graph, threshold=0.0)
        assert found is not None
        # With huge threshold everything is handled by enumeration.
        found = find_triangle_ayz(triangle_graph, threshold=100.0)
        assert found is not None

    def test_naive_pays_hub_quadratic(self):
        g = skewed_bipartite_graph(64, hubs=1, num_edges=64, seed=0)
        naive, ordered = CostCounter(), CostCounter()
        find_triangle_naive(g, naive)
        find_triangle_enumeration(g, ordered)
        # The hub has degree ~64; naive scans its C(64,2) pairs while
        # degree ordering charges each edge to the low-degree endpoint.
        assert naive.total > 10 * max(ordered.total, 1)

    def test_has_triangle_wrapper(self, triangle_graph, petersen_graph):
        assert has_triangle(triangle_graph)
        assert not has_triangle(petersen_graph)
