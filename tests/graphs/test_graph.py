"""Tests for the Graph and DiGraph containers."""

import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.graph import DiGraph, Graph


class TestGraphConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_only(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_edges_add_endpoints(self):
        g = Graph(edges=[(1, 2)])
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(InvalidInstanceError):
            g.add_edge(1, 1)

    def test_parallel_edges_collapse(self):
        g = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert g.num_edges == 1

    def test_vertex_insertion_order_preserved(self):
        g = Graph(vertices=["c", "a", "b"])
        assert g.vertices == ["c", "a", "b"]

    def test_hashable_vertex_types(self):
        g = Graph(edges=[(("x", 1), frozenset({2}))])
        assert g.num_vertices == 2


class TestGraphQueries:
    def test_neighbors_is_copy(self):
        g = Graph(edges=[(1, 2)])
        nbrs = g.neighbors(1)
        nbrs.add(99)
        assert 99 not in g.neighbors(1)

    def test_closed_neighborhood(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.closed_neighborhood(1) == {1, 2, 3}
        assert g.closed_neighborhood(2) == {1, 2}

    def test_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1

    def test_edges_each_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edges = {frozenset(e) for e in g.edges()}
        assert edges == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}
        assert sum(1 for _ in g.edges()) == 3

    def test_is_clique(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_clique([1, 2, 3])
        assert not g.is_clique([1, 2, 4])
        assert g.is_clique([])
        assert g.is_clique([1])

    def test_contains_len_iter(self):
        g = Graph(vertices=[1, 2])
        assert 1 in g and 3 not in g
        assert len(g) == 2
        assert sorted(g) == [1, 2]


class TestGraphMutation:
    def test_remove_vertex_clears_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_vertex(2)
        assert not g.has_vertex(2)
        assert g.neighbors(1) == set()
        assert g.num_edges == 0

    def test_remove_edge_keeps_vertices(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.num_edges == 0

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_vertex(3)
        assert g != h


class TestGraphDerived:
    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert not sub.has_vertex(4)

    def test_subgraph_empty(self):
        g = Graph(edges=[(1, 2)])
        assert g.subgraph([]).num_vertices == 0

    def test_complement(self):
        g = Graph(vertices=[1, 2, 3], edges=[(1, 2)])
        comp = g.complement()
        assert not comp.has_edge(1, 2)
        assert comp.has_edge(1, 3) and comp.has_edge(2, 3)

    def test_complement_involution(self):
        g = Graph(vertices=range(5), edges=[(0, 1), (2, 3), (1, 4)])
        assert g.complement().complement() == g

    def test_connected_components(self):
        g = Graph(vertices=[1, 2, 3, 4, 5], edges=[(1, 2), (3, 4)])
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[1, 2], [3, 4], [5]]

    def test_equality(self):
        assert Graph(edges=[(1, 2)]) == Graph(edges=[(2, 1)])
        assert Graph(edges=[(1, 2)]) != Graph(edges=[(1, 3)])


class TestDiGraph:
    def test_arcs_are_directed(self):
        d = DiGraph(edges=[(1, 2)])
        assert d.has_edge(1, 2)
        assert not d.has_edge(2, 1)

    def test_successors_predecessors(self):
        d = DiGraph(edges=[(1, 2), (1, 3), (3, 2)])
        assert d.successors(1) == {2, 3}
        assert d.predecessors(2) == {1, 3}

    def test_loops_allowed(self):
        d = DiGraph(edges=[(1, 1)])
        assert d.has_edge(1, 1)

    def test_num_edges(self):
        d = DiGraph(edges=[(1, 2), (2, 1), (2, 3)])
        assert d.num_edges == 3

    def test_scc_simple_cycle(self):
        d = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        comps = {frozenset(c) for c in d.strongly_connected_components()}
        assert frozenset({1, 2, 3}) in comps
        assert frozenset({4}) in comps

    def test_scc_dag_all_singletons(self):
        d = DiGraph(edges=[(1, 2), (2, 3), (1, 3)])
        comps = d.strongly_connected_components()
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 3

    def test_scc_reverse_topological_order(self):
        # Tarjan emits sinks before sources.
        d = DiGraph(edges=[(1, 2), (2, 3)])
        comps = d.strongly_connected_components()
        order = {next(iter(c)): i for i, c in enumerate(comps)}
        assert order[3] < order[2] < order[1]

    def test_scc_two_cycles_bridge(self):
        d = DiGraph(edges=[(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        comps = {frozenset(c) for c in d.strongly_connected_components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}


class TestSCCAgainstNetworkx:
    def test_random_digraphs(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(20):
            n = rng.randrange(2, 12)
            edges = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(rng.randrange(1, 25))
            ]
            ours = DiGraph(vertices=range(n), edges=edges)
            theirs = nx.DiGraph()
            theirs.add_nodes_from(range(n))
            theirs.add_edges_from(edges)
            expected = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
            actual = {frozenset(c) for c in ours.strongly_connected_components()}
            assert actual == expected
