"""Tests for special graphs (Definition 4.3) and the Special CSP solver."""

from itertools import product

import pytest

from repro.csp.bruteforce import solve_bruteforce
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import InvalidInstanceError
from repro.graphs.graph import Graph
from repro.graphs.special import (
    is_special_graph,
    make_special_graph,
    solve_special_csp,
    special_graph_parts,
)


class TestMakeAndRecognize:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_roundtrip(self, k):
        g = make_special_graph(k)
        assert is_special_graph(g)
        parts = special_graph_parts(g)
        assert parts is not None
        clique, path = parts
        assert len(clique) == k
        assert len(path) == 2**k
        assert g.num_vertices == k + 2**k

    def test_k0_rejected(self):
        with pytest.raises(InvalidInstanceError):
            make_special_graph(0)

    def test_single_component_not_special(self, triangle_graph):
        assert not is_special_graph(triangle_graph)

    def test_three_components_not_special(self):
        g = make_special_graph(2)
        g.add_vertex("stray")
        assert not is_special_graph(g)

    def test_wrong_path_length_not_special(self):
        # 2-clique + path of 3 (should be 4).
        g = Graph(edges=[("c0", "c1"), ("p0", "p1"), ("p1", "p2")])
        assert not is_special_graph(g)

    def test_cycle_component_not_special(self):
        g = Graph(edges=[("c0", "c1")])
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(f"p{a}", f"p{b}")
        assert not is_special_graph(g)

    def test_branching_component_not_special(self):
        g = Graph(edges=[("c0", "c1")])
        # A star with 3 leaves is not a path of 4 vertices.
        for leaf in ("p1", "p2", "p3"):
            g.add_edge("p0", leaf)
        assert not is_special_graph(g)

    def test_clique_with_pendant_not_special(self):
        g = make_special_graph(3)
        g.add_edge("c0", "extra")
        assert not is_special_graph(g)

    def test_path_ordering_returned(self):
        g = make_special_graph(2)
        __, path = special_graph_parts(g)
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)


def special_csp(k: int, domain_size: int) -> CSPInstance:
    """Inequality constraints on every edge of the special graph."""
    g = make_special_graph(k)
    domain = list(range(domain_size))
    disequal = {(a, b) for a, b in product(domain, repeat=2) if a != b}
    constraints = [Constraint((u, v), disequal) for u, v in g.edges()]
    return CSPInstance(list(g.vertices), domain, constraints)


class TestSolveSpecialCSP:
    def test_requires_special_primal(self, small_csp):
        with pytest.raises(InvalidInstanceError):
            solve_special_csp(small_csp)

    def test_requires_csp_instance(self):
        with pytest.raises(InvalidInstanceError):
            solve_special_csp("not a csp")

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_coloring_needs_k_colors(self, k):
        # The k-clique needs k colors; with k the instance is solvable
        # (path needs only 2).
        if k >= 2:
            assert solve_special_csp(special_csp(k, k - 1)) is None
        solution = solve_special_csp(special_csp(k, max(k, 2)))
        assert solution is not None

    def test_solution_is_valid(self):
        instance = special_csp(3, 3)
        solution = solve_special_csp(instance)
        assert solution is not None
        assert instance.is_solution(solution)

    def test_agrees_with_bruteforce(self):
        instance = special_csp(2, 2)
        # 2-clique + path of 4 over 2 colors: satisfiable.
        assert (solve_special_csp(instance) is None) == (
            solve_bruteforce(instance) is None
        )

    def test_unsatisfiable_path_detected(self):
        # Make the path unsatisfiable with an empty relation.
        instance = special_csp(2, 2)
        broken = list(instance.constraints)
        # Find a path constraint (between p-vars) and empty it.
        for i, c in enumerate(broken):
            u, v = c.scope
            if str(u).startswith("p") and str(v).startswith("p"):
                broken[i] = Constraint(c.scope, [])
                break
        bad = CSPInstance(instance.variables, instance.domain, broken)
        assert solve_special_csp(bad) is None
