"""Tests for graph homomorphism search (§2.3)."""

import pytest

from repro.graphs.graph import Graph
from repro.graphs.homomorphism import (
    count_graph_homomorphisms,
    count_graph_homomorphisms_treewidth,
    find_graph_homomorphism,
    is_graph_homomorphism,
)

from ..conftest import make_random_graph


def k(n: int) -> Graph:
    return Graph(edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


def cycle(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


class TestIsHomomorphism:
    def test_identity(self, triangle_graph):
        identity = {v: v for v in triangle_graph.vertices}
        assert is_graph_homomorphism(triangle_graph, triangle_graph, identity)

    def test_partial_mapping_rejected(self, triangle_graph):
        assert not is_graph_homomorphism(triangle_graph, triangle_graph, {0: 0})

    def test_non_edge_preserving_rejected(self):
        path = Graph(edges=[(0, 1)])
        target = Graph(vertices=[0, 1])  # no edges
        assert not is_graph_homomorphism(path, target, {0: 0, 1: 1})


class TestFind:
    def test_empty_source(self):
        assert find_graph_homomorphism(Graph(), k(3)) == {}

    def test_empty_target_with_nonempty_source(self):
        assert find_graph_homomorphism(k(2), Graph()) is None

    def test_coloring_semantics(self):
        """hom(G, K_c) exists iff G is c-colorable."""
        assert find_graph_homomorphism(cycle(5), k(3)) is not None  # odd cycle 3-col
        assert find_graph_homomorphism(cycle(5), k(2)) is None      # not bipartite
        assert find_graph_homomorphism(cycle(6), k(2)) is not None  # bipartite

    def test_clique_into_smaller_clique_fails(self):
        assert find_graph_homomorphism(k(4), k(3)) is None

    def test_found_mapping_is_valid(self, rng):
        for _ in range(10):
            source = make_random_graph(5, 0.4, rng)
            target = make_random_graph(6, 0.6, rng)
            hom = find_graph_homomorphism(source, target)
            if hom is not None:
                assert is_graph_homomorphism(source, target, hom)

    def test_disconnected_source(self):
        two_edges = Graph(edges=[(0, 1), (2, 3)])
        hom = find_graph_homomorphism(two_edges, k(2))
        assert hom is not None
        assert is_graph_homomorphism(two_edges, k(2), hom)


class TestCount:
    def test_count_edge_into_k3(self):
        # An edge maps into K3 in 3*2 = 6 ways.
        assert count_graph_homomorphisms(k(2), k(3)) == 6

    def test_count_triangle_into_k3(self):
        # Exactly the 3! proper 3-colorings.
        assert count_graph_homomorphisms(k(3), k(3)) == 6

    def test_count_empty_source(self):
        assert count_graph_homomorphisms(Graph(), k(3)) == 1

    def test_count_isolated_vertices_multiply(self):
        g = Graph(vertices=[0, 1])
        assert count_graph_homomorphisms(g, k(3)) == 9

    def test_treewidth_counting_agrees(self, rng):
        for _ in range(10):
            source = make_random_graph(5, 0.45, rng)
            target = make_random_graph(5, 0.55, rng)
            assert count_graph_homomorphisms_treewidth(
                source, target
            ) == count_graph_homomorphisms(source, target)

    def test_treewidth_counting_known_values(self):
        # hom(P3, K3): walks of length 2 in K3 = 3*2*2 = 12.
        p3 = Graph(edges=[(0, 1), (1, 2)])
        assert count_graph_homomorphisms_treewidth(p3, k(3)) == 12
        # hom(C4, K2): proper 2-colorings of C4 wrap = 2.
        c4 = cycle(4)
        assert count_graph_homomorphisms_treewidth(c4, k(2)) == 2

    def test_treewidth_counting_empty_cases(self):
        assert count_graph_homomorphisms_treewidth(Graph(), k(3)) == 1
        assert count_graph_homomorphisms_treewidth(k(2), Graph()) == 0

    def test_treewidth_counting_polynomial_on_paths(self):
        """Counting k-path homs into a host stays cheap even where the
        naive count would enumerate |V(G)|^k maps."""
        import random

        from repro.counting import CostCounter

        host = make_random_graph(12, 0.4, random.Random(5))
        path8 = Graph(edges=[(i, i + 1) for i in range(8)])
        counter = CostCounter()
        count = count_graph_homomorphisms_treewidth(path8, host, counter)
        assert count >= 0
        # 12^9 naive maps vs a DP bounded well under a million ops.
        assert counter.total < 10**6

    def test_count_vs_bruteforce(self, rng):
        from itertools import product

        for _ in range(8):
            source = make_random_graph(4, 0.5, rng)
            target = make_random_graph(4, 0.6, rng)
            tv = target.vertices
            sv = source.vertices
            expected = 0
            for images in product(tv, repeat=len(sv)):
                mapping = dict(zip(sv, images))
                if all(
                    target.has_edge(mapping[u], mapping[v])
                    for u, v in source.edges()
                ):
                    expected += 1
            assert count_graph_homomorphisms(source, target) == expected
