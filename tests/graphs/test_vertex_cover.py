"""Tests for Vertex Cover: FPT search tree vs brute force (§5)."""

import pytest

from repro.counting import CostCounter
from repro.errors import InvalidInstanceError
from repro.generators.graph_gen import planted_vertex_cover_graph
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import (
    find_vertex_cover_bruteforce,
    find_vertex_cover_fpt,
    is_vertex_cover,
)

from ..conftest import make_random_graph

BOTH = (find_vertex_cover_bruteforce, find_vertex_cover_fpt)


class TestIsVertexCover:
    def test_empty_graph(self):
        assert is_vertex_cover(Graph(), [])

    def test_single_edge(self):
        g = Graph(edges=[(1, 2)])
        assert is_vertex_cover(g, [1])
        assert is_vertex_cover(g, [2])
        assert not is_vertex_cover(g, [])


@pytest.mark.parametrize("finder", BOTH)
class TestFinders:
    def test_negative_k(self, finder):
        with pytest.raises(InvalidInstanceError):
            finder(Graph(), -1)

    def test_edgeless_graph_k0(self, finder):
        assert finder(Graph(vertices=[1, 2]), 0) == ()

    def test_single_edge_k1(self, finder):
        g = Graph(edges=[(1, 2)])
        found = finder(g, 1)
        assert found is not None
        assert is_vertex_cover(g, found)

    def test_triangle_needs_two(self, finder, triangle_graph):
        assert finder(triangle_graph, 1) is None
        found = finder(triangle_graph, 2)
        assert found is not None
        assert is_vertex_cover(triangle_graph, found)

    def test_star_center(self, finder):
        star = Graph(edges=[(0, i) for i in range(1, 7)])
        found = finder(star, 1)
        assert found is not None
        assert is_vertex_cover(star, found)

    def test_planted(self, finder):
        g, cover = planted_vertex_cover_graph(12, 3, 20, seed=9)
        found = finder(g, 3)
        assert found is not None
        assert is_vertex_cover(g, found)
        assert len(set(found)) <= 3


class TestAgreement:
    def test_methods_agree_on_feasibility(self, rng):
        for _ in range(15):
            g = make_random_graph(rng.randrange(3, 9), 0.45, rng)
            for k in range(0, 4):
                bf = find_vertex_cover_bruteforce(g, k)
                fpt = find_vertex_cover_fpt(g, k)
                assert (bf is None) == (fpt is None), (k, list(g.edges()))

    def test_vc_clique_complement_duality(self, rng):
        """V \\ (vertex cover) is an independent set — König-free sanity."""
        for _ in range(10):
            g = make_random_graph(7, 0.5, rng)
            cover = find_vertex_cover_fpt(g, 5)
            if cover is None:
                continue
            outside = set(g.vertices) - set(cover)
            assert all(
                not g.has_edge(u, v)
                for u in outside
                for v in outside
                if u != v
            )


class TestFPTShape:
    def test_fpt_cost_insensitive_to_n(self):
        """The 2^k search tree's work doesn't scale with n for fixed k
        (on planted instances with proportional edges)."""
        costs = []
        for n in (10, 40):
            g, __ = planted_vertex_cover_graph(n, 3, 3 * n, seed=1)
            counter = CostCounter()
            assert find_vertex_cover_fpt(g, 3, counter) is not None
            costs.append(counter.total)
        # Brute force would grow ~64x here; the search tree stays flat.
        assert costs[1] <= costs[0] * 4
