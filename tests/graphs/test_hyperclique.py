"""Tests for d-uniform hypergraphs and k-hyperclique search (§8)."""

from itertools import combinations

import pytest

from repro.errors import InvalidInstanceError
from repro.generators.graph_gen import planted_hyperclique, random_uniform_hypergraph
from repro.graphs.hyperclique import (
    Hypergraph,
    find_hyperclique_bruteforce,
    is_hyperclique,
)


class TestContainer:
    def test_uniformity_enforced(self):
        h = Hypergraph(3)
        with pytest.raises(InvalidInstanceError):
            h.add_edge((1, 2))
        with pytest.raises(InvalidInstanceError):
            h.add_edge((1, 2, 3, 4))
        with pytest.raises(InvalidInstanceError):
            h.add_edge((1, 1, 2))  # collapses to 2 distinct

    def test_bad_uniformity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Hypergraph(0)

    def test_edges_deduplicate(self):
        h = Hypergraph(2)
        h.add_edge((1, 2))
        h.add_edge((2, 1))
        assert h.num_edges == 1

    def test_vertices_added_from_edges(self):
        h = Hypergraph(3)
        h.add_edge((1, 2, 3))
        assert h.num_vertices == 3
        assert h.has_edge((3, 2, 1))


class TestIsHyperclique:
    def test_small_candidate_vacuous(self):
        h = Hypergraph(3, vertices=[1, 2])
        assert is_hyperclique(h, [1, 2])

    def test_full_complex(self):
        h = Hypergraph(3)
        members = (1, 2, 3, 4)
        for edge in combinations(members, 3):
            h.add_edge(edge)
        assert is_hyperclique(h, members)

    def test_missing_edge_detected(self):
        h = Hypergraph(3)
        members = (1, 2, 3, 4)
        edges = list(combinations(members, 3))
        for edge in edges[:-1]:
            h.add_edge(edge)
        h.add_vertex(4)
        assert not is_hyperclique(h, members)


class TestBruteForce:
    def test_negative_k(self):
        with pytest.raises(InvalidInstanceError):
            find_hyperclique_bruteforce(Hypergraph(3), -1)

    def test_k_below_d_needs_vertices_only(self):
        h = Hypergraph(3, vertices=[1, 2])
        assert find_hyperclique_bruteforce(h, 2) == (1, 2)
        assert find_hyperclique_bruteforce(h, 3) is None

    def test_single_edge_is_d_clique(self):
        h = Hypergraph(3)
        h.add_edge((1, 2, 3))
        assert find_hyperclique_bruteforce(h, 3) is not None

    def test_planted_found(self):
        for k in (4, 5):
            h, members = planted_hyperclique(10, 3, k, 10, seed=k)
            found = find_hyperclique_bruteforce(h, k)
            assert found is not None
            assert is_hyperclique(h, found)

    def test_sparse_noise_has_no_k4(self):
        h = random_uniform_hypergraph(12, 3, 5, seed=2)
        found = find_hyperclique_bruteforce(h, 4)
        if found is not None:  # extremely unlikely; verify if it happens
            assert is_hyperclique(h, found)

    def test_d2_matches_graph_clique(self, rng):
        """2-uniform hypercliques are graph cliques."""
        from repro.graphs.clique import find_clique_bruteforce
        from repro.graphs.graph import Graph

        for _ in range(8):
            n = 7
            h = Hypergraph(2, vertices=range(n))
            g = Graph(vertices=range(n))
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.5:
                        h.add_edge((i, j))
                        g.add_edge(i, j)
            for k in (3, 4):
                ours = find_hyperclique_bruteforce(h, k)
                theirs = find_clique_bruteforce(g, k)
                assert (ours is None) == (theirs is None)
