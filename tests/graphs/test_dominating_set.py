"""Tests for Dominating Set search (§7's anchor problem)."""

import pytest

from repro.errors import InvalidInstanceError
from repro.generators.graph_gen import planted_dominating_set_graph
from repro.graphs.dominating_set import (
    find_dominating_set_bruteforce,
    greedy_dominating_set,
    is_dominating_set,
)
from repro.graphs.graph import Graph

from ..conftest import make_random_graph


class TestIsDominatingSet:
    def test_full_vertex_set_dominates(self, triangle_graph):
        assert is_dominating_set(triangle_graph, triangle_graph.vertices)

    def test_center_dominates_star(self):
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        assert is_dominating_set(star, [0])
        assert not is_dominating_set(star, [1])

    def test_empty_set_on_empty_graph(self):
        assert is_dominating_set(Graph(), [])

    def test_empty_set_fails_with_vertices(self):
        assert not is_dominating_set(Graph(vertices=[1]), [])

    def test_isolated_vertex_must_be_chosen(self):
        g = Graph(vertices=[1, 2], edges=[])
        assert not is_dominating_set(g, [1])
        assert is_dominating_set(g, [1, 2])

    def test_unknown_vertex_rejected(self, triangle_graph):
        with pytest.raises(InvalidInstanceError):
            is_dominating_set(triangle_graph, [99])


class TestBruteForce:
    def test_negative_k(self):
        with pytest.raises(InvalidInstanceError):
            find_dominating_set_bruteforce(Graph(), -1)

    def test_empty_graph_k0(self):
        assert find_dominating_set_bruteforce(Graph(), 0) == ()

    def test_k0_with_vertices_fails(self):
        assert find_dominating_set_bruteforce(Graph(vertices=[1]), 0) is None

    def test_star_k1(self):
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        found = find_dominating_set_bruteforce(star, 1)
        assert found == (0,)

    def test_path_domination_number(self):
        # P6 has domination number 2: e.g. vertices 1 and 4.
        p6 = Graph(edges=[(i, i + 1) for i in range(5)])
        assert find_dominating_set_bruteforce(p6, 1) is None
        found = find_dominating_set_bruteforce(p6, 2)
        assert found is not None
        assert is_dominating_set(p6, found)

    def test_planted_instances(self):
        for k in (2, 3):
            g, centers = planted_dominating_set_graph(10, k, seed=k)
            found = find_dominating_set_bruteforce(g, k)
            assert found is not None
            assert is_dominating_set(g, found)
            assert len(found) <= k

    def test_matches_networkx_domination_number(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(8):
            g = make_random_graph(rng.randrange(4, 9), 0.4, rng)
            theirs = nx.Graph()
            theirs.add_nodes_from(g.vertices)
            theirs.add_edges_from(g.edges())
            # networkx gives a (not necessarily minimum) dominating set;
            # ours with k = its size must therefore also find one.
            approx = nx.dominating_set(theirs)
            found = find_dominating_set_bruteforce(g, len(approx))
            assert found is not None
            assert is_dominating_set(g, found)


class TestGreedy:
    def test_greedy_always_dominates(self, rng):
        for _ in range(10):
            g = make_random_graph(rng.randrange(3, 15), 0.3, rng)
            chosen = greedy_dominating_set(g)
            assert is_dominating_set(g, chosen)

    def test_greedy_star_optimal(self):
        star = Graph(edges=[(0, i) for i in range(1, 8)])
        assert greedy_dominating_set(star) == (0,)

    def test_greedy_handles_isolated(self):
        g = Graph(vertices=[1, 2, 3], edges=[(1, 2)])
        chosen = greedy_dominating_set(g)
        assert is_dominating_set(g, chosen)
        assert 3 in chosen
