"""Tests for the experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import RUNNERS, main, run_experiments


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in RUNNERS:
            assert key in out

    def test_run_single(self, capsys):
        assert main(["run", "E13"]) == 0
        out = capsys.readouterr().out
        assert "E13-hypotheses" in out
        assert "PASS" in out

    def test_run_accepts_full_id(self, capsys):
        assert main(["run", "e13-hypotheses"]) == 0

    def test_unknown_id(self, capsys):
        assert run_experiments(["E99"]) == 2

    def test_every_runner_registered(self):
        assert len(RUNNERS) == 18
        for key, runners in RUNNERS.items():
            assert runners, key
