"""Tests for the experiment CLI (python -m repro.experiments)."""

import json

import pytest

from repro.experiments.__main__ import RUNNERS, SPECS, main, run_experiments
from repro.observability.record import validate_record


@pytest.fixture
def results_dir(tmp_path):
    return str(tmp_path / "results")


class TestCLI:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in RUNNERS:
            assert key in out

    def test_run_single(self, capsys, results_dir):
        assert main(["run", "E13", "--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "E13-hypotheses" in out
        assert "PASS" in out

    def test_run_accepts_full_id(self, capsys, results_dir):
        assert main(["run", "e13-hypotheses", "--results-dir", results_dir]) == 0

    def test_unknown_id(self, capsys):
        assert run_experiments(["E99"]) == 2

    def test_unknown_id_via_main(self, capsys, tmp_path):
        assert main(["run", "E99", "--results-dir", str(tmp_path)]) == 2

    def test_every_runner_registered(self):
        assert len(RUNNERS) == 22
        assert len(SPECS) == 22
        for key, runners in RUNNERS.items():
            assert runners, key


class TestRunRecords:
    def test_json_flag_writes_valid_record(self, capsys, tmp_path, results_dir):
        out_path = tmp_path / "run.json"
        assert main(
            ["run", "E13", "--json", str(out_path), "--results-dir", results_dir]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert validate_record(payload) == []
        assert payload["experiments"][0]["key"] == "E13"
        assert payload["experiments"][0]["status"] == "ok"

    def test_records_get_sequential_names(self, capsys, tmp_path):
        results = tmp_path / "results"
        main(["run", "E13", "--results-dir", str(results), "--no-cache"])
        main(["run", "E13", "--results-dir", str(results), "--no-cache"])
        names = sorted(p.name for p in results.glob("run-*.json"))
        assert names == ["run-0001.json", "run-0002.json"]

    def test_second_run_hits_cache(self, capsys, results_dir):
        main(["run", "E13", "--results-dir", results_dir])
        capsys.readouterr()
        main(["run", "E13", "--results-dir", results_dir])
        assert "E13: cached" in capsys.readouterr().out

    def test_no_cache_flag_reruns(self, capsys, results_dir):
        main(["run", "E13", "--results-dir", results_dir])
        capsys.readouterr()
        main(["run", "E13", "--results-dir", results_dir, "--no-cache"])
        assert "E13: ok" in capsys.readouterr().out

    def test_parallel_run_matches_serial_record(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        main(["run", "E13", "E15", "--json", str(serial),
              "--results-dir", str(tmp_path / "r1"), "--no-cache"])
        main(["run", "E13", "E15", "--parallel", "2", "--json", str(parallel),
              "--results-dir", str(tmp_path / "r2"), "--no-cache"])
        from repro.observability.record import RunRecord, strip_volatile

        first = RunRecord.from_dict(json.loads(serial.read_text())).canonical_dict()
        second = RunRecord.from_dict(json.loads(parallel.read_text())).canonical_dict()
        # The run block records the differing parallelism; measurements must not.
        first.pop("run")
        second.pop("run")
        assert first == second


class TestValidateCommand:
    def test_valid_record_accepted(self, capsys, tmp_path, results_dir):
        out_path = tmp_path / "run.json"
        main(["run", "E13", "--json", str(out_path), "--results-dir", results_dir])
        capsys.readouterr()
        assert main(["validate", str(out_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_record_rejected(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/0"}')
        assert main(["validate", str(bad)]) == 1


class TestCompare:
    def test_compare_against_identical_run_is_clean(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        results = str(tmp_path / "results")
        main(["run", "E13", "--json", str(old), "--results-dir", results])
        capsys.readouterr()
        code = main(
            ["run", "E13", "--results-dir", results, "--compare", str(old)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no finding differences" in out

    def test_non_exponent_change_reported_but_not_drift(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        results = str(tmp_path / "results")
        main(["run", "E13", "--json", str(old), "--results-dir", results])
        capsys.readouterr()
        doctored = json.loads(old.read_text())
        findings = doctored["experiments"][0]["results"][0]["findings"]
        findings["total_bounds"] = 999
        old.write_text(json.dumps(doctored))
        code = main(
            ["run", "E13", "--results-dir", results, "--compare", str(old)]
        )
        out = capsys.readouterr().out
        assert code == 0  # non-exponent change: reported but not drift
        assert "total_bounds" in out

    def test_exponent_drift_exits_nonzero(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        results = str(tmp_path / "results")
        main(["run", "E15", "--json", str(old), "--results-dir", results])
        capsys.readouterr()
        doctored = json.loads(old.read_text())
        findings = doctored["experiments"][0]["results"][0]["findings"]
        findings["naive_delay_exponent"] += 1.0
        old.write_text(json.dumps(doctored))
        code = main(
            ["run", "E15", "--results-dir", results, "--compare", str(old)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "drifted" in out

    def test_compare_rejects_invalid_old_record(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/0"}')
        assert main(
            ["run", "E13", "--results-dir", str(tmp_path / "r"),
             "--compare", str(bad)]
        ) == 2
