"""Tests for the experiment harness utilities."""

import pytest

from repro.errors import InvalidInstanceError
from repro.experiments.harness import (
    MISSING,
    ExperimentResult,
    fit_exponent,
    format_table,
    geometric_sweep,
    safe_log_ratio,
)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="T1", claim="test", columns=("x", "y")
        )

    def test_add_row_and_column(self):
        r = self.make()
        r.add_row(x=1, y=2)
        r.add_row(x=3, y=4)
        assert r.column("x") == [1, 3]

    def test_unknown_column_rejected(self):
        r = self.make()
        with pytest.raises(InvalidInstanceError):
            r.add_row(z=1)
        with pytest.raises(InvalidInstanceError):
            r.column("z")

    def test_incomplete_row_rejected(self):
        # Regression: silently dropping a column used to produce ragged
        # rows that broke downstream column() aggregation.
        r = self.make()
        with pytest.raises(InvalidInstanceError):
            r.add_row(x=1)

    def test_missing_sentinel_marks_unmeasured_cells(self):
        r = self.make()
        r.add_row(x=1, y=MISSING)
        assert r.column("y") == [MISSING]
        # Renders as a blank-ish dash, not as "MISSING".
        table = format_table(r.columns, r.rows)
        assert "-" in table.splitlines()[2]

    def test_to_payload_serializes_missing_as_null(self):
        r = self.make()
        r.add_row(x=(1, 2), y=MISSING)
        r.findings["exponent"] = 2.0
        payload = r.to_payload()
        assert payload["columns"] == ["x", "y"]
        assert payload["rows"] == [{"x": [1, 2], "y": None}]
        assert payload["findings"] == {"exponent": 2.0}

    def test_str_renders_table(self):
        r = self.make()
        r.add_row(x=1, y=2.5)
        r.findings["verdict"] = "PASS"
        text = str(r)
        assert "T1" in text and "verdict" in text and "2.5" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("col",), [{"col": "value"}])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}
        assert "value" in lines[2]

    def test_missing_cell_blank(self):
        text = format_table(("a", "b"), [{"a": 1}])
        assert "1" in text


class TestFitExponent:
    def test_exact_quadratic(self):
        xs = [10, 20, 40, 80]
        ys = [x**2 for x in xs]
        assert fit_exponent(xs, ys) == pytest.approx(2.0)

    def test_exact_linear(self):
        xs = [1, 2, 4, 8]
        assert fit_exponent(xs, xs) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert fit_exponent([1, 2, 4], [5, 5, 5]) == pytest.approx(0.0)

    def test_needs_two_points(self):
        with pytest.raises(InvalidInstanceError):
            fit_exponent([1], [1])

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidInstanceError):
            fit_exponent([0, 1], [1, 2])


class TestSweepHelpers:
    def test_geometric_sweep(self):
        assert geometric_sweep(4, 2.0, 3) == [4, 8, 16]

    def test_geometric_sweep_dedups(self):
        values = geometric_sweep(2, 1.2, 5)
        assert values == sorted(set(values))

    def test_geometric_sweep_validation(self):
        with pytest.raises(InvalidInstanceError):
            geometric_sweep(0, 2.0, 3)

    def test_safe_log_ratio(self):
        assert safe_log_ratio(8, 2) == pytest.approx(3.0)
        with pytest.raises(InvalidInstanceError):
            safe_log_ratio(8, 1)
