"""Each experiment runs at reduced scale and reports its claimed shape.

These are integration tests of the full pipeline: generators →
algorithms → reductions → harness. Reduced parameters keep each under
a couple of seconds; the benchmarks run the full-scale versions.
"""

import pytest

from repro.experiments import (
    exp_agm,
    exp_clique_csp,
    exp_domset,
    exp_freuder,
    exp_hyperclique,
    exp_hypotheses,
    exp_kclique_mm,
    exp_schaefer,
    exp_special,
    exp_treewidth_opt,
    exp_triangle,
    exp_vc_fpt,
    exp_wcoj,
)


class TestE1E2AGM:
    def test_upper_bound_holds(self):
        result = exp_agm.run_upper(relation_sizes=(15, 30))
        assert result.findings["verdict"] == "PASS"
        assert all(row["within_bound"] for row in result.rows)

    def test_tight_construction(self):
        result = exp_agm.run_tight(relation_sizes=(16, 64))
        assert result.findings["verdict"] == "PASS"
        for row in result.rows:
            assert row["answer"] == row["predicted"]


class TestE3WCOJ:
    def test_skewed_gap(self):
        result = exp_wcoj.run(relation_sizes=(16, 32, 64))
        assert result.findings["verdict"] == "PASS"
        assert (
            result.findings["skewed_plan_exponent"]
            > result.findings["skewed_wcoj_exponent"]
        )

    def test_ordering_ablation(self):
        result = exp_wcoj.run_orderings(relation_size=49)
        assert result.findings["max_over_min_ops"] >= 1.0
        assert len(result.rows) == 6


class TestE4Freuder:
    def test_exponent_tracks_width(self):
        result = exp_freuder.run(
            widths=(1, 2), domain_sizes=(2, 4, 8), num_variables=10
        )
        exps = result.findings["fitted_exponents_by_width"]
        assert exps[1] < exps[2]
        assert result.findings["verdict"] == "PASS"


class TestE5Schaefer:
    def test_classifier(self):
        result = exp_schaefer.run_classifier()
        assert result.findings["verdict"] == "PASS"
        assert result.findings["mismatches"] == 0

    def test_hard_ratio_growth(self):
        result = exp_schaefer.run_hard_ratio(
            variable_counts=(8, 12, 16), trials=3
        )
        assert result.findings["log2_decisions_slope_per_variable"] > 0


class TestE6Special:
    def test_certificates_and_solutions(self):
        result = exp_special.run(ks=(2, 3), graph_size=8)
        assert result.findings["verdict"] == "PASS"


class TestE7CliqueCSP:
    def test_exponents_grow(self):
        result = exp_clique_csp.run(ks=(2, 3), graph_sizes=(6, 10, 14))
        assert result.findings["verdict"] == "PASS"


class TestE8TreewidthOpt:
    def test_exponents_grow(self):
        result = exp_treewidth_opt.run(
            clique_sizes=(2, 3), domain_sizes=(3, 5, 7)
        )
        assert result.findings["verdict"] == "PASS"


class TestE9Domset:
    def test_pipeline(self):
        result = exp_domset.run(configs=((2, 1), (2, 2)), graph_size=6)
        assert result.findings["verdict"] == "PASS"
        assert result.findings["widths_within_bounds"]


class TestE10KCliqueMM:
    def test_agreement_and_gap(self):
        result = exp_kclique_mm.run(ks=(3, 6), graph_sizes=(6, 9, 12))
        assert result.findings["verdict"] == "PASS"


class TestE11Triangle:
    def test_naive_vs_ordered(self):
        result = exp_triangle.run(edge_counts=(32, 64, 128))
        assert result.findings["verdict"] == "PASS"
        assert result.findings["yes_instance_agreement"]


class TestE12Hyperclique:
    def test_exponents_grow(self):
        result = exp_hyperclique.run(ks=(4, 5), vertex_counts=(8, 11, 14))
        assert result.findings["verdict"] == "PASS"


class TestE13Hypotheses:
    def test_landscape(self):
        result = exp_hypotheses.run()
        assert result.findings["verdict"] == "PASS"
        assert not result.findings["implication_errors"]


class TestE14VertexCoverFPT:
    def test_fpt_vs_xp(self):
        result = exp_vc_fpt.run(k=3, graph_sizes=(8, 16, 28))
        assert result.findings["verdict"] == "PASS"
        assert (
            result.findings["fpt_exponent_in_n"] + 1.0
            < result.findings["bruteforce_exponent_in_n"]
        )
