"""Reduced-scale run of E18."""

from repro.experiments import exp_finegrained


def test_e18_shapes():
    result = exp_finegrained.run(
        ov_sizes=(32, 64, 128),
        string_lengths=(32, 64, 128),
        sat_trials=3,
    )
    assert result.findings["verdict"] == "PASS"
    assert result.findings["sat_ov_equivalent"]
