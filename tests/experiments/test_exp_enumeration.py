"""Reduced-scale run of E15."""

from repro.experiments import exp_enumeration


def test_e15_shapes():
    result = exp_enumeration.run(sizes=(40, 80, 160))
    assert result.findings["verdict"] == "PASS"
    for row in result.rows:
        assert row["acyclic_max_delay"] <= 5
