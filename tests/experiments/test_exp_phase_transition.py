"""Reduced-scale run of E17."""

from repro.experiments import exp_phase_transition


def test_e17_shape():
    result = exp_phase_transition.run(
        tightness_values=(0.1, 0.4, 0.85),
        num_variables=10,
        trials=5,
    )
    fractions = result.column("sat_fraction")
    # Low tightness easy-SAT, high tightness all-UNSAT.
    assert fractions[0] >= 0.8
    assert fractions[-1] <= 0.2
