"""Reduced-scale run of E16."""

from repro.experiments import exp_hom_counting


def test_e16_shapes():
    result = exp_hom_counting.run(
        pattern_lengths=(2, 4), host_sizes=(6, 9, 12)
    )
    assert result.findings["verdict"] == "PASS"
    exponents = result.findings["dp_exponent_by_pattern_length"]
    assert abs(exponents[2] - exponents[4]) < 1.0
