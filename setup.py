"""Setup shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail. Keeping a
``setup.py`` and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works with setuptools alone. Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
