#!/usr/bin/env python3
"""Counting, enumeration, and minimization — beyond decision.

The paper defines three versions of every problem: decide, count,
enumerate (§2.1/§2.2). This walk-through exercises all three plus the
§2.4/§5 core machinery:

1. count join answers without materializing them (treewidth DP);
2. enumerate with constant delay on acyclic queries vs the naive
   enumerator's growing delays;
3. minimize a self-join query via its core (Chandra–Merlin);
4. solve a HOM instance through the core (Theorem 5.3's algorithm);
5. find a k-path by color coding (an FPT technique of §5).

Run:  python examples/counting_and_enumeration.py
"""

from repro import CostCounter
from repro.generators import uniform_random_database
from repro.graphs.color_coding import find_k_path_color_coding, is_simple_path
from repro.graphs.graph import Graph
from repro.relational import (
    Atom,
    JoinQuery,
    count_answers,
    enumerate_acyclic,
    enumerate_nested_loop,
    generic_join,
    measure_delays,
    minimize_query,
)
from repro.structures import Structure, solve_hom_via_core


def main() -> None:
    print("=== 1. Counting without materializing ===")
    query = JoinQuery.path(6)
    database = uniform_random_database(query, 50, 6, seed=3)
    counter = CostCounter()
    count = count_answers(query, database, counter)
    print(f"path-6 query, N = 50: |Q(D)| = {count}")
    print(f"counting DP operations: {counter.total} "
          f"(materializing would touch every one of the {count} tuples)")

    print("\n=== 2. Constant-delay enumeration (acyclic) ===")
    from repro.experiments.exp_enumeration import dangling_database

    q3 = JoinQuery.path(3)
    for n in (100, 400):
        c_fast, c_naive = CostCounter(), CostCounter()
        fast = measure_delays(enumerate_acyclic(q3, dangling_database(n), c_fast), c_fast)
        naive = measure_delays(
            enumerate_nested_loop(q3, dangling_database(n), c_naive), c_naive
        )
        print(
            f"N = {n:>4}: acyclic max inter-answer delay = {fast.max_delay} "
            f"(setup {fast.setup} ops), naive = {naive.max_delay}"
        )
    print("the reduced enumerator's delay is data-independent — [13]'s guarantee.")

    print("\n=== 3. Query minimization via cores ===")
    query = JoinQuery(
        [Atom("E", ("a", "b")), Atom("E", ("b", "c")), Atom("E", ("d", "b"))]
    )
    red = minimize_query(query)
    red.certify()
    print(f"original:  {query}")
    print(f"minimized: {red.target}")

    print("\n=== 4. HOM via the core (Theorem 5.3's algorithm) ===")
    # K(3,3) as a pattern: treewidth 3, but its core is a single edge.
    pattern = Structure.from_graph(
        Graph(edges=[((0, i), (1, j)) for i in range(3) for j in range(3)])
    )
    target = Structure.from_graph(Graph(edges=[(0, 1), (1, 2)]))
    hom = solve_hom_via_core(pattern, target)
    print(f"K(3,3) -> P3 homomorphism found: {hom is not None} "
          f"(solved on the 2-element core, not the 6-element pattern)")

    print("\n=== 5. Color coding: FPT k-path (§5) ===")
    graph = Graph(edges=[(i, i + 1) for i in range(9)])
    graph.add_edge(3, 0)  # some noise
    path = find_k_path_color_coding(graph, 7, seed=1)
    print(f"7-path found: {path}")
    print(f"verified simple path: {is_simple_path(graph, path)}")


if __name__ == "__main__":
    main()
