#!/usr/bin/env python3
"""Acyclic vs cyclic query evaluation — the §3/§4 dividing line.

Compares Yannakakis (only works on α-acyclic queries, polynomial),
Generic Join (works always, worst-case optimal), and pairwise plans on
path, star, cycle, and clique queries, and shows the GYO reduction
recognizing acyclicity.

Run:  python examples/acyclic_vs_cyclic_queries.py
"""

from repro import CostCounter, JoinQuery, generic_join
from repro.errors import SchemaError
from repro.generators import uniform_random_database
from repro.hypergraph import fractional_edge_cover_number, gyo_reduction, is_alpha_acyclic
from repro.relational import evaluate_left_deep, yannakakis


def main() -> None:
    shapes = {
        "path-4": JoinQuery.path(4),
        "star-4": JoinQuery.star(4),
        "cycle-4": JoinQuery.cycle(4),
        "clique-4": JoinQuery.clique(4),
    }

    print(f"{'query':>9} {'acyclic':>8} {'rho*':>6} {'|answer|':>9} "
          f"{'yannakakis':>11} {'generic join':>13} {'plan peak':>10}")
    for name, query in shapes.items():
        hypergraph = query.hypergraph()
        acyclic = is_alpha_acyclic(hypergraph)
        rho = fractional_edge_cover_number(hypergraph)
        database = uniform_random_database(query, 60, 12, seed=7)

        gj_counter = CostCounter()
        answer = generic_join(query, database, counter=gj_counter)
        plan = evaluate_left_deep(query, database)

        if acyclic:
            y_counter = CostCounter()
            yannakakis(query, database, counter=y_counter)
            y_cell = str(y_counter.total)
        else:
            try:
                yannakakis(query, database)
                raise AssertionError("should have rejected a cyclic query")
            except SchemaError:
                y_cell = "rejected"

        print(
            f"{name:>9} {str(acyclic):>8} {rho:>6.2f} {len(answer):>9} "
            f"{y_cell:>11} {gj_counter.total:>13} "
            f"{plan.peak_intermediate_size:>10}"
        )

    print("\nGYO reduction trace on the 4-cycle (nothing eliminable):")
    eliminated, remaining = gyo_reduction(JoinQuery.cycle(4).hypergraph())
    print(f"  eliminated: {[sorted(e) for e in eliminated]}")
    print(f"  remaining:  {[sorted(e) for e in remaining]}")

    print("\nGYO reduction trace on the star (fully eliminable):")
    eliminated, remaining = gyo_reduction(JoinQuery.star(3).hypergraph())
    print(f"  eliminated: {[sorted(e) for e in eliminated]}")
    print(f"  remaining:  {[sorted(e) for e in remaining]}")


if __name__ == "__main__":
    main()
