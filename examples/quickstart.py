#!/usr/bin/env python3
"""Quickstart: the paper's triangle query, end to end.

Builds the §3 running example Q = R1(a1,a2) ⋈ R2(a1,a3) ⋈ R3(a2,a3),
computes its fractional edge cover number ρ* = 3/2, evaluates it with
three engines, and shows the AGM bound (Theorem 3.1) and its tightness
(Theorem 3.2) on concrete databases.

Run:  python examples/quickstart.py
"""

from repro import CostCounter, JoinQuery, agm_bound, evaluate_left_deep, generic_join
from repro.generators import (
    skewed_triangle_database,
    tight_agm_database,
    uniform_random_database,
)
from repro.hypergraph import fractional_edge_cover, fractional_edge_cover_number


def main() -> None:
    query = JoinQuery.triangle()
    print(f"Query: {query}")

    hypergraph = query.hypergraph()
    rho = fractional_edge_cover_number(hypergraph)
    cover = fractional_edge_cover(hypergraph)
    print(f"fractional edge cover number rho* = {rho}")
    print(f"optimal edge weights: {[round(w, 3) for w in cover.weights]}")
    print()

    # --- Theorem 3.1: the AGM bound dominates every instance ---------
    n = 200
    database = uniform_random_database(query, n, domain_size=60, seed=0)
    answer = generic_join(query, database)
    bound = agm_bound(query, database)
    print(f"random database, N = {n}:")
    print(f"  |answer| = {len(answer)}  <=  AGM bound = {bound:.1f}")
    print()

    # --- Theorem 3.2: the bound is tight -----------------------------
    tight = tight_agm_database(query, n)
    tight_answer = generic_join(query, tight)
    print(f"tight database (Theorem 3.2 construction), N = {n}:")
    print(f"  |answer| = {len(tight_answer)}  ~=  N^1.5 = {n**1.5:.0f}")
    print()

    # --- Theorem 3.3: worst-case optimal join vs pairwise plans ------
    skew = skewed_triangle_database(n)
    counter = CostCounter()
    skew_answer = generic_join(query, skew, counter=counter)
    plan = evaluate_left_deep(query, skew)
    print(f"skewed database, N = {n}:")
    print(f"  answer size:                 {len(skew_answer)}")
    print(f"  Generic Join operations:     {counter.total}")
    print(f"  pairwise plan peak interm.:  {plan.peak_intermediate_size}")
    print()
    print(
        "Generic Join stays near the answer size; the pairwise plan "
        "materializes ~N^2/4 tuples — the gap Theorem 3.3 closes."
    )


if __name__ == "__main__":
    main()
