#!/usr/bin/env python3
"""A tour of Schaefer's dichotomy (§4) with live solvers.

Classifies canonical Boolean constraint languages, then solves an
instance from each tractable class with its dedicated polynomial
algorithm (2SAT via SCCs, Horn via unit propagation, XOR via Gaussian
elimination) and contrasts DPLL's behaviour on hard random 3SAT.

Run:  python examples/schaefer_dichotomy_tour.py
"""

from repro.generators import HARD_3SAT_RATIO, random_ksat
from repro.sat import (
    BooleanRelation,
    CNF,
    DPLLStats,
    classify_relation_set,
    solve_2sat,
    solve_affine_system,
    solve_dpll,
    solve_horn,
)


def main() -> None:
    print("=== Classifying constraint languages (Schaefer [59]) ===")
    families = {
        "2SAT clauses": [
            BooleanRelation.from_clause([1, 2]),
            BooleanRelation.from_clause([-1, 2]),
        ],
        "Horn clauses": [
            BooleanRelation.from_clause([-1, -2, 3]),
            BooleanRelation.from_clause([-1, -2]),
        ],
        "XOR equations": [BooleanRelation(2, [(0, 1), (1, 0)])],
        "1-in-3 SAT": [BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])],
        "3SAT clauses": [BooleanRelation.from_clause([1, 2, 3])],
    }
    for name, relations in families.items():
        verdict = classify_relation_set(relations)
        status = "in P" if verdict.tractable else "NP-hard"
        witnesses = ", ".join(w.value for w in verdict.witnesses) or "none"
        print(f"  {name:<14} -> {status:<8} (classes: {witnesses})")

    print("\n=== Solving each tractable class with its algorithm ===")
    two_sat = CNF.from_clauses([[1, 2], [-1, 3], [-2, -3], [2, 3]])
    print(f"  2SAT model:   {solve_2sat(two_sat)}")

    horn = CNF.from_clauses([[1], [-1, 2], [-2, 3], [-3, -1, 4]])
    print(f"  Horn minimal: {solve_horn(horn)}")

    xor = [([1, 2], 1), ([2, 3], 0), ([1, 3], 1)]
    print(f"  XOR solution: {solve_affine_system(xor, 3)}")

    print("\n=== DPLL on random 3SAT at the hard ratio (m/n = 4.26) ===")
    print(f"{'n':>4} {'m':>5} {'decisions':>10} {'sat?':>6}")
    for n in (10, 15, 20, 25):
        m = round(HARD_3SAT_RATIO * n)
        formula = random_ksat(n, m, 3, seed=n)
        stats = DPLLStats()
        model = solve_dpll(formula, stats=stats)
        print(f"{n:>4} {m:>5} {stats.decisions:>10} {str(model is not None):>6}")
    print(
        "\ndecisions grow exponentially with n — the behaviour the ETH "
        "(Hypothesis 1) postulates no algorithm can escape."
    )


if __name__ == "__main__":
    main()
