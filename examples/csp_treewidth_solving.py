#!/usr/bin/env python3
"""Solving CSPs by treewidth (Theorem 4.2) — and where it must stop.

Walks the §4–§6 story on live instances:

1. a bounded-treewidth CSP solved by Freuder's DP in |D|^{k+1} work,
   with measured operation counts as |D| grows;
2. the same instance given to brute force (|D|^{|V|}) for contrast;
3. a clique-structured CSP where the DP's cost must scale with the
   clique size — Theorem 6.5's message that cliques are the hard shape;
4. the Special CSP (Definition 4.3) solved in quasipolynomial time.

Run:  python examples/csp_treewidth_solving.py
"""

from itertools import product

from repro import CostCounter, Constraint, CSPInstance
from repro.csp import count_with_treewidth, solve_bruteforce, solve_with_treewidth
from repro.generators import bounded_treewidth_csp
from repro.graphs.special import make_special_graph, solve_special_csp
from repro.treewidth import treewidth_min_fill


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. Freuder's DP on a treewidth-2 CSP (Theorem 4.2)")
    print(f"{'|D|':>5} {'DP ops':>10} {'sat?':>6} {'#solutions':>12}")
    for d in (2, 4, 8, 16):
        instance = bounded_treewidth_csp(14, d, width=2, tightness=0.2, seed=1)
        width, decomposition = treewidth_min_fill(instance.primal_graph())
        counter = CostCounter()
        solution = solve_with_treewidth(instance, decomposition, counter)
        count = count_with_treewidth(instance, decomposition)
        print(f"{d:>5} {counter.total:>10} {str(solution is not None):>6} {count:>12}")
    print("ops grow ~|D|^(k+1) = |D|^3 — polynomial for fixed width.")

    banner("2. Brute force on the same shape pays |D|^{|V|}")
    instance = bounded_treewidth_csp(10, 3, width=2, tightness=0.6, seed=2)
    dp_counter, bf_counter = CostCounter(), CostCounter()
    dp = solve_with_treewidth(instance, counter=dp_counter)
    bf = solve_bruteforce(instance, bf_counter)
    print(f"DP ops:          {dp_counter.total}")
    print(f"brute force ops: {bf_counter.total}")
    print(f"agreement:       {(dp is None) == (bf is None)}")

    banner("3. Cliques are the hard primal shape (Theorem 6.5)")
    print(f"{'clique':>7} {'treewidth':>10} {'DP ops at |D|=6':>16}")
    for size in (2, 3, 4, 5):
        variables = [f"v{i}" for i in range(size)]
        domain = list(range(6))
        disequal = {(a, b) for a, b in product(domain, repeat=2) if a != b}
        constraints = [
            Constraint((variables[i], variables[j]), disequal)
            for i in range(size)
            for j in range(i + 1, size)
        ]
        clique_instance = CSPInstance(variables, domain, constraints)
        width, decomposition = treewidth_min_fill(clique_instance.primal_graph())
        counter = CostCounter()
        solve_with_treewidth(clique_instance, decomposition, counter)
        print(f"{size:>7} {width:>10} {counter.total:>16}")
    print("the exponent tracks the treewidth: no algorithm avoids this (ETH).")

    banner("4. Special CSP (Definition 4.3): quasipolynomial by design")
    for k in (2, 3):
        graph = make_special_graph(k)
        domain = list(range(max(k, 2)))
        disequal = {(a, b) for a, b in product(domain, repeat=2) if a != b}
        constraints = [Constraint((u, v), disequal) for u, v in graph.edges()]
        instance = CSPInstance(list(graph.vertices), domain, constraints)
        counter = CostCounter()
        solution = solve_special_csp(instance, counter)
        print(
            f"k={k}: |V| = {instance.num_variables} (= k + 2^k), "
            f"solver ops = {counter.total}, solved = {solution is not None}"
        )
    print(
        "the clique part is brute-forced in |D|^k with k <= log2|V| — "
        "n^O(log n) total, and the ETH says n^o(log n) is impossible."
    )


if __name__ == "__main__":
    main()
