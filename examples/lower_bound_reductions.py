#!/usr/bin/env python3
"""The paper's reductions, executed and certified.

Runs the four headline reductions on concrete instances, printing the
certificates each lower-bound proof relies on, then prints the
hypothesis landscape report.

Run:  python examples/lower_bound_reductions.py
"""

from repro.complexity import format_hypothesis_report
from repro.csp import solve_backtracking
from repro.generators import planted_clique_graph, planted_dominating_set_graph, planted_ksat
from repro.graphs.dominating_set import is_dominating_set
from repro.graphs.special import solve_special_csp
from repro.reductions import (
    clique_to_special_csp,
    dominating_set_to_grouped_csp,
    sat_to_3coloring,
    sat_to_csp,
    solve_coloring,
)


def show_certificates(reduction) -> None:
    print(f"  reduction: {reduction.name}")
    for cert in reduction.certificates:
        mark = "✓" if cert.holds else "✗"
        detail = f"  [{cert.detail}]" if cert.detail else ""
        print(f"    {mark} {cert.name}{detail}")


def main() -> None:
    print("=== Corollary 6.1: 3SAT → CSP (|D| = 2, arity ≤ 3) ===")
    formula, __ = planted_ksat(8, 24, 3, seed=0)
    red = sat_to_csp(formula)
    red.certify()
    show_certificates(red)
    solution = solve_backtracking(red.target)
    model = red.pull_back(solution)
    print(f"  SAT model recovered, satisfies formula: {formula.evaluate(model)}")

    print("\n=== Corollary 6.2: 3SAT → 3-Coloring (linear size) ===")
    red = sat_to_3coloring(formula)
    red.certify()
    show_certificates(red)
    coloring = solve_coloring(red.target)
    model = red.pull_back(coloring)
    print(f"  coloring found, decodes to SAT model: {formula.evaluate(model)}")

    print("\n=== §5: k-Clique → Special CSP (|V| = k + 2^k) ===")
    graph, __ = planted_clique_graph(10, 3, p=0.3, seed=1)
    red = clique_to_special_csp(graph, 3)
    red.certify()
    show_certificates(red)
    solution = solve_special_csp(red.target)
    clique = red.pull_back(solution)
    print(f"  clique recovered: {clique}, verified: {graph.is_clique(clique)}")

    print("\n=== Theorem 7.2: t-DomSet → CSP treewidth t/g ===")
    graph, __ = planted_dominating_set_graph(7, 4, seed=2)
    red = dominating_set_to_grouped_csp(graph, t=4, group_size=2)
    red.certify()
    show_certificates(red)
    solution = solve_backtracking(red.target)
    ds = red.pull_back(solution)
    print(
        f"  dominating set recovered: {ds}, "
        f"verified: {is_dominating_set(graph, ds)} (size {len(ds)} <= 4)"
    )

    print("\n=== The assumption behind each bound ===")
    for key in ("eth", "seth"):
        print()
        print(format_hypothesis_report(key))


if __name__ == "__main__":
    main()
