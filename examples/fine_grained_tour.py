#!/usr/bin/env python3
"""SETH inside P — the §7 fine-grained story, live.

1. reduce a CNF formula to Orthogonal Vectors by split-and-enumerate
   (the engine of every SETH polynomial lower bound), solve the OV
   instance, decode a model;
2. measure the quadratic shape of OV brute force and the edit-distance
   DP — the walls [56] and [12, 19] say are real;
3. show the permitted escape: the banded DP under a small-distance
   promise.

Run:  python examples/fine_grained_tour.py
"""

import random

from repro import CostCounter
from repro.finegrained import (
    edit_distance,
    edit_distance_banded,
    find_orthogonal_pair,
    sat_to_orthogonal_vectors,
)
from repro.generators import planted_ksat


def main() -> None:
    print("=== 1. CNF-SAT → Orthogonal Vectors ===")
    formula, __ = planted_ksat(10, 32, 3, seed=4)
    reduction = sat_to_orthogonal_vectors(formula)
    reduction.certify()
    for cert in reduction.certificates:
        print(f"  ✓ {cert.name}  [{cert.detail}]")
    pair = find_orthogonal_pair(reduction.target)
    model = reduction.pull_back(pair)
    print(f"  orthogonal pair found; decodes to a model: {formula.evaluate(model)}")
    print(
        "  an O(N^{2-ε}) OV algorithm would run in 2^{(1-ε/2)n} here — "
        "refuting the SETH."
    )

    print("\n=== 2. The quadratic walls ===")
    rng = random.Random(0)
    print(f"{'n':>6} {'edit-DP ops':>12} {'ops/n²':>8}")
    for n in (100, 200, 400):
        a = "".join(rng.choice("ab") for __ in range(n))
        b = "".join(rng.choice("ab") for __ in range(n))
        counter = CostCounter()
        edit_distance(a, b, counter)
        print(f"{n:>6} {counter.total:>12} {counter.total / n**2:>8.2f}")
    print("ops/n² is constant: the DP is exactly quadratic, and under the")
    print("SETH (via OV) no algorithm improves the exponent.")

    print("\n=== 3. The permitted escape: banded DP ===")
    base = "ab" * 500
    noisy = list(base)
    for i in (100, 400, 900):
        noisy[i] = "b"
    noisy_str = "".join(noisy)
    full, banded = CostCounter(), CostCounter()
    d1 = edit_distance(base, noisy_str, full)
    d2 = edit_distance_banded(base, noisy_str, 8, banded)
    print(f"  distance: full DP {d1}, banded {d2}")
    print(f"  operations: full {full.total}, banded {banded.total} "
          f"({full.total // max(banded.total, 1)}x less)")
    print("  faster — but only under a promise on the *output*, which the")
    print("  lower bound explicitly allows.")


if __name__ == "__main__":
    main()
