"""E9 — the Theorem 7.2 construction: DomSet → CSP + grouping."""

from repro.experiments import exp_domset


def test_e9_theorem_72_pipeline(experiment):
    result = experiment(exp_domset.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["widths_within_bounds"]
    for row in result.rows:
        assert row["equivalent"] and row["solution_valid"]
