"""E5 — Schaefer's dichotomy and the ETH's hard 3SAT regime."""

from repro.experiments import exp_schaefer


def test_e5_dichotomy_classifier(experiment):
    result = experiment(exp_schaefer.run_classifier)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["mismatches"] == 0


def test_e5_hard_ratio_exponential_growth(experiment):
    result = experiment(exp_schaefer.run_hard_ratio)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["log2_decisions_slope_per_variable"] > 0.05
