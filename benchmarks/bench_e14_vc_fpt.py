"""E14 — FPT vs XP: Vertex Cover's 2^k search tree (§5)."""

from repro.experiments import exp_vc_fpt


def test_e14_fpt_flat_in_n(experiment):
    result = experiment(exp_vc_fpt.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["fpt_exponent_in_n"] < 1.0
    assert result.findings["bruteforce_exponent_in_n"] > 2.5
