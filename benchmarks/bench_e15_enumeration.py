"""E15 — constant-delay enumeration for acyclic queries (§8 context)."""

from repro.experiments import exp_enumeration


def test_e15_constant_delay(experiment):
    result = experiment(exp_enumeration.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["acyclic_delay_exponent"] < 0.2
    assert result.findings["naive_delay_exponent"] > 0.7


def test_e15_enumeration_backend_invariant():
    """Cross-backend guard: acyclic enumeration emits the same answer
    stream cardinality with the same op totals on both backends, so the
    measured delays compare like for like."""
    from repro.counting import CostCounter
    from repro.generators.agm import tight_agm_database
    from repro.relational.enumeration import enumerate_acyclic
    from repro.relational.query import JoinQuery

    query = JoinQuery.path(3)
    database = tight_agm_database(query, 64)
    c_naive, c_col = CostCounter(), CostCounter()
    answers_naive = sorted(enumerate_acyclic(query, database, c_naive))
    answers_col = sorted(
        enumerate_acyclic(query, database.with_backend("columnar"), c_col)
    )
    assert answers_naive == answers_col
    assert c_naive.total == c_col.total
