"""E15 — constant-delay enumeration for acyclic queries (§8 context)."""

from repro.experiments import exp_enumeration


def test_e15_constant_delay(experiment):
    result = experiment(exp_enumeration.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["acyclic_delay_exponent"] < 0.2
    assert result.findings["naive_delay_exponent"] > 0.7
