"""Ablation benchmarks for the design choices DESIGN.md calls out.

* treewidth heuristic (min-degree vs min-fill) feeding Freuder's DP;
* GAC preprocessing on/off in front of backtracking;
* DPLL inference rules on/off;
* CDCL vs DPLL on structured (coloring-encoded) instances.
"""

from repro.counting import CostCounter
from repro.csp.backtracking import solve_backtracking
from repro.csp.treewidth_dp import solve_with_treewidth
from repro.generators.csp_gen import bounded_treewidth_csp, random_binary_csp
from repro.generators.sat_gen import planted_ksat, random_ksat
from repro.sat.cdcl import solve_cdcl
from repro.sat.dpll import DPLLStats, solve_dpll
from repro.treewidth.heuristics import treewidth_min_degree, treewidth_min_fill


class TestTreewidthHeuristicAblation:
    def test_min_fill_vs_min_degree_width(self, benchmark):
        instance = bounded_treewidth_csp(20, 3, 3, tightness=0.25, seed=0)
        primal = instance.primal_graph()

        def measure():
            degree_width, degree_dec = treewidth_min_degree(primal)
            fill_width, fill_dec = treewidth_min_fill(primal)
            degree_counter, fill_counter = CostCounter(), CostCounter()
            solve_with_treewidth(instance, degree_dec, degree_counter)
            solve_with_treewidth(instance, fill_dec, fill_counter)
            return degree_width, fill_width, degree_counter.total, fill_counter.total

        dw, fw, dops, fops = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nmin-degree: width {dw}, DP ops {dops}")
        print(f"min-fill:   width {fw}, DP ops {fops}")
        # Both heuristics must stay within the generator's width bound.
        assert dw <= 3 + 1 and fw <= 3


class TestGACPreprocessingAblation:
    def test_gac_reduces_search_on_tight_instances(self, benchmark):
        instances = [
            random_binary_csp(10, 4, 22, tightness=0.62, seed=s) for s in range(6)
        ]

        def measure():
            plain, preprocessed = 0, 0
            for instance in instances:
                c1, c2 = CostCounter(), CostCounter()
                a = solve_backtracking(instance, counter=c1)
                b = solve_backtracking(instance, counter=c2, preprocess_gac=True)
                assert (a is None) == (b is None)
                plain += c1.total
                preprocessed += c2.total
            return plain, preprocessed

        plain, preprocessed = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nbacktracking ops without GAC: {plain}")
        print(f"backtracking ops with GAC:    {preprocessed}")


class TestDPLLInferenceAblation:
    def test_unit_propagation_contribution(self, benchmark):
        formulas = [random_ksat(16, 68, 3, seed=s) for s in range(4)]

        def measure():
            with_up, without_up = 0, 0
            for formula in formulas:
                s1, s2 = DPLLStats(), DPLLStats()
                solve_dpll(formula, stats=s1, use_unit_propagation=True)
                solve_dpll(formula, stats=s2, use_unit_propagation=False)
                with_up += s1.decisions
                without_up += s2.decisions
            return with_up, without_up

        with_up, without_up = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\ndecisions with unit propagation:    {with_up}")
        print(f"decisions without unit propagation: {without_up}")
        assert with_up <= without_up


class TestCDCLvsDPLLAblation:
    def test_structured_instances_favor_learning(self, benchmark):
        """On the coloring-gadget encodings (Corollary 6.2 instances),
        CDCL's backjumping wins by orders of magnitude; this pins the
        design choice of routing solve_coloring through CDCL."""
        from repro.reductions.sat_to_coloring import sat_to_3coloring, solve_coloring

        formula, __ = planted_ksat(14, 48, 3, seed=0)
        reduction = sat_to_3coloring(formula)

        def measure():
            coloring = solve_coloring(reduction.target)
            assert coloring is not None
            return True

        assert benchmark.pedantic(measure, rounds=1, iterations=1)
