"""E13 — the hypothesis landscape (§1, §9)."""

from repro.experiments import exp_hypotheses


def test_e13_landscape(experiment):
    result = experiment(exp_hypotheses.run)
    assert result.findings["verdict"] == "PASS"
    assert not result.findings["implication_errors"]
    assert result.findings["total_bounds"] >= 15
