"""E3 — worst-case optimal joins vs pairwise plans (Theorem 3.3)."""

from repro.experiments import exp_wcoj


def test_e3_wcoj_vs_pairwise(experiment):
    result = experiment(exp_wcoj.run)
    assert result.findings["verdict"] == "PASS"
    # Skewed instances: plans pay ~N^2, Generic Join ~N.
    assert result.findings["skewed_plan_exponent"] > 1.7
    assert result.findings["skewed_wcoj_exponent"] < 1.4
    # Trie probes are O(1) per extension (current-node threading), so
    # the per-answer operation count stays bounded across the sweep.
    assert result.findings["max_ops_per_answer"] < 40.0


def test_e3_ablation_variable_orderings(experiment):
    result = experiment(exp_wcoj.run_orderings)
    # Any ordering is worst-case optimal; constants differ by a small factor.
    assert result.findings["max_over_min_ops"] < 10.0


def test_e3_backends_agree_on_answers_and_ops():
    """Cross-backend guard: the timed E3 engines are representation-
    independent — identical answers and identical op totals."""
    from repro.counting import CostCounter
    from repro.generators.agm import skewed_triangle_database, tight_agm_database
    from repro.relational.query import JoinQuery
    from repro.relational.wcoj import generic_join

    triangle = JoinQuery.triangle()
    for database in (
        skewed_triangle_database(64),
        tight_agm_database(triangle, 64),
    ):
        c_naive, c_col = CostCounter(), CostCounter()
        a_naive = generic_join(triangle, database, counter=c_naive)
        a_col = generic_join(
            triangle, database.with_backend("columnar"), counter=c_col
        )
        assert sorted(a_naive.tuples) == sorted(a_col.tuples)
        assert c_naive.total == c_col.total
