"""Backend A/B wall-clock benchmark: columnar kernels vs naive engines.

Runs the E3 WCOJ sweep (both triangle families, all six attribute
orders per size) on both backends, asserts byte-identical answer sets
and identical op counts, and writes the machine-readable perf record
``BENCH_kernels.json`` at the repo root so the wall-clock trajectory is
tracked from this PR on.

Environment knobs (used by the ``bench-smoke`` CI job):

* ``REPRO_BENCH_SIZES`` — comma-separated relation sizes
  (default ``64,128,256,512``);
* ``REPRO_BENCH_MIN_SPEEDUP`` — required columnar speedup at the
  largest size (default ``3.0``; the smoke job relaxes it to ``1.0``,
  i.e. "columnar is never slower");
* ``REPRO_BENCH_REPEATS`` — timing repeats, best-of (default ``3``);
* ``REPRO_BENCH_OUT`` — output path for the JSON record.
"""

import json
import os
import time
from itertools import permutations
from pathlib import Path

from repro.counting import CostCounter
from repro.generators.agm import skewed_triangle_database, tight_agm_database
from repro.relational.query import JoinQuery
from repro.relational.wcoj import generic_join

QUERY = JoinQuery.triangle()
ORDERS = tuple(permutations(QUERY.attributes))


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "64,128,256,512")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _families(n):
    return (
        ("skewed", lambda: skewed_triangle_database(n)),
        ("tight", lambda: tight_agm_database(QUERY, n)),
    )


def _sweep_seconds(database) -> float:
    """Wall-clock of one full attribute-order sweep (index caches warm
    up inside the measurement — amortization across the six orders is
    exactly what the database-level index cache buys)."""
    start = time.perf_counter()
    for order in ORDERS:
        generic_join(QUERY, database, attribute_order=order)
    return time.perf_counter() - start


def _answers_and_ops(database):
    counter = CostCounter()
    answers = []
    for order in ORDERS:
        answer = generic_join(QUERY, database, attribute_order=order, counter=counter)
        answers.append(sorted(answer.tuples))
    return answers, counter.total


def test_kernels_wcoj_sweep_speedup():
    sizes = _sizes()
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_OUT", Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
        )
    )

    rows = []
    totals = {}  # (backend, n) -> summed best wall-clock across families
    for n in sizes:
        for family, make_db in _families(n):
            for backend in ("naive", "columnar"):
                best = None
                ops = None
                answer_bytes = None
                for _ in range(repeats):
                    database = make_db().with_backend(backend)
                    seconds = _sweep_seconds(database)
                    best = seconds if best is None else min(best, seconds)
                    if ops is None:
                        answers, ops = _answers_and_ops(database)
                        answer_bytes = repr(answers).encode()
                rows.append(
                    {
                        "experiment": "E3-wcoj-sweep",
                        "family": family,
                        "n": n,
                        "backend": backend,
                        "orders": len(ORDERS),
                        "seconds": best,
                        "ops": ops,
                    }
                )
                totals[(backend, n)] = totals.get((backend, n), 0.0) + best
                key = (family, n)
                if backend == "naive":
                    baseline = {"bytes": answer_bytes, "ops": ops}
                    rows[-1]["_baseline"] = baseline  # stripped before writing
                else:
                    naive_row = next(
                        r
                        for r in rows
                        if r["family"] == family
                        and r["n"] == n
                        and r["backend"] == "naive"
                    )
                    base = naive_row.pop("_baseline")
                    # Byte-identical answer sets and identical op totals
                    # per (family, n) — the backend contract.
                    assert base["bytes"] == answer_bytes, f"answers differ at {key}"
                    assert base["ops"] == ops, f"op counts differ at {key}"

    largest = max(sizes)
    speedups = {
        n: totals[("naive", n)] / totals[("columnar", n)] for n in sizes
    }
    record = {
        "schema": "repro-bench-kernels/1",
        "experiment": "E3-wcoj-sweep",
        "query": "triangle",
        "orders_per_size": len(ORDERS),
        "repeats_best_of": repeats,
        "rows": rows,
        "speedup_by_n": {str(n): speedups[n] for n in sizes},
        "largest_n": largest,
        "speedup_at_largest_n": speedups[largest],
        "answers_byte_identical": True,
        "op_counts_identical": True,
    }
    # Read-modify-write: bench_factorized.py and bench_semiring.py
    # store their sweeps under sibling keys in the same record; keep
    # them across reruns.
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        for sibling in ("factorized_sweep", "semiring_sweep"):
            if sibling in previous:
                record[sibling] = previous[sibling]
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for n in sizes:
        print(
            f"n={n}: naive {totals[('naive', n)]:.4f}s, "
            f"columnar {totals[('columnar', n)]:.4f}s, "
            f"speedup {speedups[n]:.2f}x"
        )
    assert speedups[largest] >= min_speedup, (
        f"columnar speedup {speedups[largest]:.2f}x at n={largest} "
        f"below required {min_speedup}x (see {out_path})"
    )
