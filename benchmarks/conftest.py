"""Benchmark configuration.

Each benchmark regenerates one experiment from DESIGN.md's index at
full scale, asserts the paper-predicted shape (the experiment's PASS
verdict), and prints the experiment's row table into the captured
output so ``pytest benchmarks/ --benchmark-only -s`` shows the series.
"""

import pytest


def run_experiment(benchmark, fn, **kwargs):
    """Run one experiment under pytest-benchmark (single round: the
    experiments are multi-second parameter sweeps, not microbenchmarks)
    and return its result."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result)
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture form of :func:`run_experiment`."""

    def runner(fn, **kwargs):
        return run_experiment(benchmark, fn, **kwargs)

    return runner
