"""Benchmark configuration.

Each benchmark regenerates one experiment from DESIGN.md's index at
full scale, asserts the paper-predicted shape (the experiment's PASS
verdict), and prints the experiment's row table into the captured
output so ``pytest benchmarks/ --benchmark-only -s`` shows the series.

Experiments run under an instrumented
:class:`~repro.observability.context.RunContext`, so the captured
output also includes the per-phase span breakdown (operation counts
and elapsed time per traced section).
"""

import inspect

import pytest

from repro.observability.context import RunContext


def run_experiment(benchmark, fn, **kwargs):
    """Run one experiment under pytest-benchmark (single round: the
    experiments are multi-second parameter sweeps, not microbenchmarks)
    and return its result."""
    context = RunContext(getattr(fn, "__name__", "benchmark"))
    if "context" in inspect.signature(fn).parameters:
        kwargs.setdefault("context", context)

    def call():
        with context.activated():
            return fn(**kwargs)

    result = benchmark.pedantic(call, rounds=1, iterations=1)
    print()
    print(result)
    if context.spans:
        print()
        print("spans (ops / elapsed):")
        for span in context.spans:
            indent = "  " * (span.depth + 1)
            print(f"{indent}{span.name}: {span.ops} ops, {span.elapsed_s:.4f}s")
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture form of :func:`run_experiment`."""

    def runner(fn, **kwargs):
        return run_experiment(benchmark, fn, **kwargs)

    return runner
