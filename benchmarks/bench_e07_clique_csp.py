"""E7 — the n^k wall for Clique-as-CSP (Theorems 6.3/6.4)."""

from repro.experiments import exp_clique_csp


def test_e7_exponent_grows_with_k(experiment):
    result = experiment(exp_clique_csp.run)
    assert result.findings["verdict"] == "PASS"
    csp_exponents = result.findings["csp_cost_exponent_by_k"]
    # Theorem 6.4's shape: CSP brute force pays |D|^{|V|} = n^k exactly.
    for k, slope in csp_exponents.items():
        assert abs(slope - k) < 0.2
