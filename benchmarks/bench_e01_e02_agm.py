"""E1/E2 — the AGM bound (Theorems 3.1 and 3.2)."""

from repro.experiments import exp_agm


def test_e1_agm_upper_bound(experiment):
    result = experiment(exp_agm.run_upper)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["violations"] == 0


def test_e2_agm_tight_construction(experiment):
    result = experiment(exp_agm.run_tight)
    assert result.findings["verdict"] == "PASS"
    # Rounding loss in floor(N^{x_v}) shrinks as N grows.
    assert result.findings["max_exponent_gap_vs_rho"] < 0.35
