"""E1/E2 — the AGM bound (Theorems 3.1 and 3.2)."""

from repro.experiments import exp_agm


def test_e1_agm_upper_bound(experiment):
    result = experiment(exp_agm.run_upper)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["violations"] == 0


def test_e2_agm_tight_construction(experiment):
    result = experiment(exp_agm.run_tight)
    assert result.findings["verdict"] == "PASS"
    # Rounding loss in floor(N^{x_v}) shrinks as N grows.
    assert result.findings["max_exponent_gap_vs_rho"] < 0.35


def test_agm_witness_counts_backend_invariant():
    """Cross-backend guard: the AGM tight-construction witness yields
    the same answer cardinality (and hence the same bound gap) whether
    the join runs on the naive or the columnar backend."""
    from repro.generators.agm import tight_agm_database
    from repro.relational.query import JoinQuery
    from repro.relational.wcoj import generic_join

    for query in (JoinQuery.triangle(), JoinQuery.cycle(4)):
        database = tight_agm_database(query, 81)
        a_naive = generic_join(query, database)
        a_col = generic_join(query, database.with_backend("columnar"))
        assert a_naive.tuples == a_col.tuples
