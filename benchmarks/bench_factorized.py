"""Factorized vs columnar-flat benchmark on a high-output free-connex query.

The asymptotic contrast of Berkholz's dichotomy, measured: on the hub
star family (Θ(n²) answers from 2n tuples) the flat engines must
materialize every answer while the factorized engine builds an O(n)
d-representation and reads the count off it. The wall-clock ratio
therefore *grows* with n — an asymptotic win, not a constant factor —
while the measured enumeration delay stays flat and the materialized
answers stay byte-identical across all three paths (naive Yannakakis,
columnar Yannakakis, factorized).

Results are merged into ``BENCH_kernels.json`` under the
``factorized_sweep`` key (read-modify-write, so the E3 sweep data is
preserved).

Environment knobs (used by the ``bench-smoke`` CI job):

* ``REPRO_BENCH_SIZES`` — comma-separated relation sizes
  (default ``64,128,256,512``);
* ``REPRO_BENCH_FACTORIZED_MIN_RATIO`` — required flat/factorized
  wall-clock ratio at the largest size (default ``2.0``; the smoke job
  relaxes it to ``1.0``, i.e. "factorized is never slower");
* ``REPRO_BENCH_REPEATS`` — timing repeats, best-of (default ``3``);
* ``REPRO_BENCH_OUT`` — output path for the JSON record.
"""

import json
import os
import time
from pathlib import Path

from repro.counting import CostCounter
from repro.relational.database import Database
from repro.relational.enumeration import measure_delays
from repro.relational.factorized import factorize
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.yannakakis import yannakakis

QUERY = JoinQuery.star(2)


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "64,128,256,512")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _hub_database(n: int) -> Database:
    """One hub value, n leaves per relation: the Θ(n²)-answer family."""
    return Database(
        [
            Relation("R1", ("x", "y"), [(0, i) for i in range(n)]),
            Relation("R2", ("x", "y"), [(0, j) for j in range(n)]),
        ]
    )


def _best_of(repeats, fn):
    best = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, value


def test_factorized_never_slower_on_free_connex_sweep():
    sizes = _sizes()
    min_ratio = float(os.environ.get("REPRO_BENCH_FACTORIZED_MIN_RATIO", "2.0"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_OUT", Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
        )
    )

    rows = []
    ratios = {}
    delays = {}
    for n in sizes:
        naive_db = _hub_database(n)
        columnar_db = naive_db.with_backend("columnar")

        flat_seconds, flat_answer = _best_of(
            repeats, lambda: yannakakis(QUERY, columnar_db)
        )
        fact_seconds, factorized = _best_of(
            repeats, lambda: factorize(QUERY, naive_db)
        )
        count_seconds, count = _best_of(repeats, factorized.count)

        # Byte-identical answers across naive flat, columnar flat, and
        # the factorized materialization.
        flat_bytes = repr(sorted(flat_answer.tuples)).encode()
        naive_flat = yannakakis(QUERY, naive_db)
        assert repr(sorted(naive_flat.tuples)).encode() == flat_bytes
        assert repr(sorted(factorized.materialize().tuples)).encode() == flat_bytes
        assert count == len(flat_answer) == n * n

        # Backend parity of the factorized build itself (op counts).
        c_naive, c_col = CostCounter(), CostCounter()
        factorize(QUERY, naive_db, counter=c_naive)
        factorize(QUERY, columnar_db, counter=c_col)
        assert c_naive.total == c_col.total, f"factorize op parity broke at n={n}"

        # Enumeration delay is an op-count quantity, deterministic per
        # size; flatness across sizes is asserted below.
        counter = CostCounter()
        fresh = factorize(QUERY, naive_db, counter=counter)
        profile = measure_delays(fresh.enumerate(counter), counter)
        delays[n] = profile.max_delay

        ratio = flat_seconds / (fact_seconds + count_seconds)
        ratios[n] = ratio
        rows.append(
            {
                "experiment": "E21-factorized",
                "family": "hub-star",
                "n": n,
                "flat_answers": count,
                "drep_nodes": factorized.num_nodes,
                "flat_seconds": flat_seconds,
                "factorize_seconds": fact_seconds,
                "count_seconds": count_seconds,
                "ratio": ratio,
                "max_delay": profile.max_delay,
            }
        )

    largest, smallest = max(sizes), min(sizes)
    assert len(set(delays.values())) == 1, (
        f"enumeration delay is data-dependent: {delays}"
    )
    if largest >= 4 * smallest:
        assert ratios[largest] > ratios[smallest], (
            "flat/factorized ratio did not grow with n — the win must be "
            f"asymptotic, got {ratios}"
        )
    assert ratios[largest] >= min_ratio, (
        f"factorized ratio {ratios[largest]:.2f}x at n={largest} below "
        f"required {min_ratio}x (see {out_path})"
    )

    sweep = {
        "schema": "repro-bench-factorized/1",
        "experiment": "E21-factorized",
        "query": "star(2) hub family",
        "repeats_best_of": repeats,
        "rows": rows,
        "ratio_by_n": {str(n): ratios[n] for n in sizes},
        "max_delay_by_n": {str(n): delays[n] for n in sizes},
        "delay_flat": len(set(delays.values())) == 1,
        "largest_n": largest,
        "ratio_at_largest_n": ratios[largest],
        "answers_byte_identical": True,
    }
    record = {}
    if out_path.exists():
        try:
            record = json.loads(out_path.read_text())
        except (json.JSONDecodeError, OSError):
            record = {}
    record["factorized_sweep"] = sweep
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for n in sizes:
        print(
            f"n={n}: flat {rows[sizes.index(n)]['flat_seconds']:.4f}s, "
            f"factorized+count {rows[sizes.index(n)]['factorize_seconds'] + rows[sizes.index(n)]['count_seconds']:.4f}s, "
            f"ratio {ratios[n]:.2f}x, max_delay {delays[n]}"
        )
