"""E8 — treewidth DP optimality on clique primal graphs (Thm 6.5/6.7)."""

from repro.experiments import exp_treewidth_opt


def test_e8_dp_exponent_tracks_treewidth(experiment):
    result = experiment(exp_treewidth_opt.run)
    assert result.findings["verdict"] == "PASS"
    exponents = result.findings["dp_exponent_by_clique_size"]
    ordered = [exponents[s] for s in sorted(exponents)]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
