"""E16 — homomorphism counting from bounded-treewidth patterns."""

from repro.experiments import exp_hom_counting


def test_e16_dp_counting_polynomial(experiment):
    result = experiment(exp_hom_counting.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["naive_agrees_where_feasible"]
    exponents = result.findings["dp_exponent_by_pattern_length"]
    # Paths have treewidth 1: exponent ≈ 2 independent of length.
    for slope in exponents.values():
        assert slope < 3.0
