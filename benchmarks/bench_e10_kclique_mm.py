"""E10 — the k-clique conjecture: matrix split vs brute force (§8)."""

from repro.experiments import exp_kclique_mm


def test_e10_matrix_vs_bruteforce(experiment):
    result = experiment(exp_kclique_mm.run)
    assert result.findings["verdict"] == "PASS"
    bf = result.findings["bruteforce_exponent_by_k"]
    mm = result.findings["matrix_exponent_by_k"]
    # The gap the conjecture is about appears at the largest k.
    assert bf[6] > mm[6]
