"""E11 — triangle detection and the Strong Triangle Conjecture (§8)."""

from repro.experiments import exp_triangle


def test_e11_detector_exponents(experiment):
    result = experiment(exp_triangle.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["yes_instance_agreement"]
    # Naive scanning pays ~m^2 on skewed degrees; ordered stays ~m.
    assert result.findings["naive_exponent_in_m"] > 1.7
    assert result.findings["ordered_exponent_in_m"] < 1.5
