"""Service load benchmark: boot the server, sweep concurrency levels.

Boots ``python -m repro.service serve`` as a real subprocess, registers
a benchmark database, and drives a repeated-query workload (all four
routes: factorized / yannakakis / wcoj / treewidth-dp) through the
asyncio load generator at several concurrency levels. Reports
client-side p50/p95/p99 latency and throughput per level, asserts the
service contracts —

* every served answer is **byte-identical** to direct in-process
  evaluation through :func:`repro.relational.router.execute_route`;
* every response carries its route decision and op count;
* the plan-cache hit ratio on a repeated-query workload stays above a
  floor (default 0.5 — misses happen only on first sight of a shape);

— and writes ``BENCH_service.json`` at the repo root.

Environment knobs (used by the ``service-smoke`` CI job):

* ``REPRO_BENCH_SERVICE_N`` — tuples per relation (default ``200``);
* ``REPRO_BENCH_SERVICE_CONCURRENCY`` — comma-separated levels
  (default ``1,4,8``);
* ``REPRO_BENCH_SERVICE_REQUESTS`` — requests per worker per level
  (default ``24``);
* ``REPRO_BENCH_SERVICE_MIN_HIT_RATIO`` — plan-cache floor (``0.5``);
* ``REPRO_BENCH_SERVICE_OUT`` — output path for the JSON record;
* ``REPRO_BENCH_DASHBOARD`` — also save the live HTML dashboard here.
"""

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.generators.agm import uniform_random_database
from repro.relational.query import Atom, JoinQuery
from repro.relational.router import execute_route
from repro.service.client import ServiceClient, run_load
from repro.service.server import canonical_answers
from repro.service.store import database_from_payload, relations_payload

REPO_ROOT = Path(__file__).resolve().parents[1]

TRIANGLE_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R2", "attributes": ["a1", "a3"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]
PATH_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]

#: (label, payload-sans-database, expected route) — all four routes.
WORKLOAD_SPEC = [
    ("triangle-enumerate", {"atoms": TRIANGLE_ATOMS}, "wcoj"),
    ("triangle-boolean", {"atoms": TRIANGLE_ATOMS, "mode": "boolean"}, "wcoj"),
    ("triangle-count", {"atoms": TRIANGLE_ATOMS, "mode": "count"}, "treewidth-dp"),
    ("path-enumerate", {"atoms": PATH_ATOMS}, "factorized"),
    (
        "path-project",
        {"atoms": PATH_ATOMS, "free": ["a1", "a3"]},
        "yannakakis",
    ),
    ("path-count", {"atoms": PATH_ATOMS, "mode": "count"}, "factorized"),
]


def _concurrency_levels():
    raw = os.environ.get("REPRO_BENCH_SERVICE_CONCURRENCY", "1,4,8")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _bench_relations(n):
    """A deterministic seeded triangle database as a wire payload."""
    query = JoinQuery.triangle()
    database = uniform_random_database(query, n, max(4, n // 8), seed=11)
    return relations_payload(database)


def _boot_server():
    """Start the service subprocess; returns (process, host, port)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--max-concurrency",
            "8",
            "--queue-limit",
            "64",
            "--slow-ms",
            "50",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.perf_counter() + 30.0
    banner = ""
    while time.perf_counter() < deadline:
        banner = process.stdout.readline()
        if "listening on" in banner:
            break
        if process.poll() is not None:
            raise RuntimeError(f"server died during boot: {banner!r}")
    else:
        process.terminate()
        raise RuntimeError("server did not print its listen banner in 30s")
    address = banner.rsplit("http://", 1)[1].strip()
    host, port_text = address.rsplit(":", 1)
    return process, host, int(port_text)


async def _setup_and_verify(host, port, relations, workload):
    """Register the bench database; verify routes + byte-identity."""
    database = database_from_payload(relations)
    async with ServiceClient(host, port) as client:
        await client.register("bench", relations)
        identical = 0
        for (label, spec, expected_route), entry in zip(WORKLOAD_SPEC, workload):
            status, payload = await client.request("POST", "/query", entry)
            assert status == 200, f"{label}: {payload}"
            assert payload["route"] == expected_route, (
                f"{label}: routed {payload['route']}, expected {expected_route}"
            )
            assert payload["ops"] > 0, f"{label}: no ops charged"
            query = JoinQuery(
                Atom(a["relation"], tuple(a["attributes"])) for a in spec["atoms"]
            )
            direct = execute_route(
                query,
                database,
                free=tuple(spec["free"]) if "free" in spec else None,
                mode=spec.get("mode", "enumerate"),
            )
            if direct.relation is not None:
                assert payload["answers"] == canonical_answers(
                    direct.relation.tuples
                ), f"{label}: served answers differ from direct evaluation"
            if direct.count is not None:
                assert payload["count"] == direct.count, f"{label}: count differs"
            if direct.nonempty is not None:
                assert payload["nonempty"] == direct.nonempty, f"{label}: differs"
            identical += 1
        return identical


async def _collect_artifacts(host, port, dashboard_path):
    async with ServiceClient(host, port) as client:
        metrics = await client.get_json("/metrics")
        if dashboard_path:
            status, html_doc = await client.request("GET", "/dashboard")
            assert status == 200
            Path(dashboard_path).write_text(html_doc, encoding="utf-8")
    return metrics


def test_service_load_sweep():
    n = int(os.environ.get("REPRO_BENCH_SERVICE_N", "200"))
    levels = _concurrency_levels()
    per_worker = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "24"))
    min_hit_ratio = float(
        os.environ.get("REPRO_BENCH_SERVICE_MIN_HIT_RATIO", "0.5")
    )
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_SERVICE_OUT", REPO_ROOT / "BENCH_service.json"
        )
    )
    dashboard_path = os.environ.get("REPRO_BENCH_DASHBOARD", "")

    relations = _bench_relations(n)
    workload = [dict(spec, database="bench") for __, spec, __ in WORKLOAD_SPEC]

    process, host, port = _boot_server()
    try:
        verified = asyncio.run(
            _setup_and_verify(host, port, relations, workload)
        )
        assert verified == len(WORKLOAD_SPEC)

        rows = []
        for concurrency in levels:
            summary = asyncio.run(
                run_load(host, port, workload, concurrency, per_worker)
            )
            assert summary["statuses"].get("200", 0) == summary["requests"], (
                f"non-200 responses at concurrency {concurrency}: "
                f"{summary['statuses']}"
            )
            rows.append(
                {
                    "concurrency": concurrency,
                    "requests": summary["requests"],
                    "throughput_rps": summary["throughput_rps"],
                    "latency_ms": summary["latency_ms"],
                }
            )

        metrics = asyncio.run(_collect_artifacts(host, port, dashboard_path))
    finally:
        process.terminate()
        process.wait(timeout=10)

    plan_cache = metrics["plan_cache"]
    telemetry = metrics["telemetry"]
    record = {
        "schema": "repro-bench-service/1",
        "relation_tuples": n,
        "workload": [label for label, __, __ in WORKLOAD_SPEC],
        "requests_per_worker": per_worker,
        "levels": rows,
        "plan_cache": plan_cache,
        "route_mix": telemetry["route_mix"],
        "endpoint_p99_ms": {
            name: summary["p99_ms"]
            for name, summary in telemetry["endpoints"].items()
        },
        "slow_queries": len(telemetry["slow_queries"]),
        "answers_byte_identical": True,
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for row in rows:
        latency = row["latency_ms"]
        print(
            f"c={row['concurrency']}: {row['throughput_rps']:.0f} req/s, "
            f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms"
        )
    print(
        f"plan cache: hit ratio {plan_cache['hit_ratio']:.3f} "
        f"({plan_cache['hits']} hits / {plan_cache['misses']} misses)"
    )
    assert plan_cache["hit_ratio"] > min_hit_ratio, (
        f"plan-cache hit ratio {plan_cache['hit_ratio']:.3f} below "
        f"{min_hit_ratio} on a repeated-query workload (see {out_path})"
    )
    assert set(telemetry["route_mix"]) == {
        "factorized",
        "yannakakis",
        "wcoj",
        "treewidth-dp",
    }
