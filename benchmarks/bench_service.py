"""Service load benchmark: concurrency sweep + worker scaling sweep.

Boots ``python -m repro.service serve`` as a real subprocess — once per
``--workers`` level — registers four distinct benchmark databases
(distinct content, so their fingerprints spread across shards), and
drives a repeated-query workload (all four routes: factorized /
yannakakis / wcoj / treewidth-dp) through the asyncio load generator.
Reports client-side p50/p95/p99 latency and throughput per level,
asserts the service contracts —

* every served answer is **byte-identical** to direct in-process
  evaluation through :func:`repro.relational.router.execute_route`;
* the full verification workload is byte-identical **across worker
  levels** (through :func:`repro.service.server.strip_volatile`, the
  filter that drops only per-request/per-config fields) — ``--workers
  N`` must answer exactly as ``--workers 0``;
* the plan-cache hit ratio on a repeated-query workload stays above a
  floor (default 0.5) at every worker level;
* with ``--workers N`` the sharded executor actually dispatches
  (non-zero worker evaluations);
* sharded throughput clears a **scaling gate** at the highest worker
  level and concurrency 8 — threshold 2.0x over inline on ≥4 effective
  cores, 1.3x on 2–3, record-only on a single core (where worker
  processes can only add overhead);

— and writes ``BENCH_service.json`` at the repo root.

Environment knobs (used by the ``service-smoke`` CI job):

* ``REPRO_BENCH_SERVICE_N`` — tuples per relation (default ``200``);
* ``REPRO_BENCH_SERVICE_CONCURRENCY`` — comma-separated levels for
  the single-boot latency sweep (default ``1,4,8``);
* ``REPRO_BENCH_SERVICE_WORKERS`` — comma-separated ``--workers``
  levels for the scaling sweep (default ``0,2,4``; must include 0,
  the inline baseline);
* ``REPRO_BENCH_SERVICE_SCALING_CONCURRENCY`` — concurrency levels of
  the scaling sweep (default ``1,4,8,16``);
* ``REPRO_BENCH_SERVICE_REQUESTS`` — requests per worker per level
  (default ``24``);
* ``REPRO_BENCH_SERVICE_MIN_HIT_RATIO`` — plan-cache floor (``0.5``);
* ``REPRO_BENCH_SERVICE_MIN_SCALING`` — scaling-gate threshold:
  ``auto`` (core-aware, above) or an explicit float (``0`` disables);
* ``REPRO_BENCH_SERVICE_RESPONSES`` — also dump the volatile-stripped
  verification responses here (CI runs the bench twice — workers 0
  and 2 — and diffs the two dumps byte for byte);
* ``REPRO_BENCH_SERVICE_OUT`` — output path for the JSON record;
* ``REPRO_BENCH_DASHBOARD`` — also save the live HTML dashboard here.
"""

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.generators.agm import uniform_random_database
from repro.relational.query import Atom, JoinQuery
from repro.relational.router import execute_route
from repro.service.client import ServiceClient, run_load
from repro.service.server import canonical_answers, strip_volatile
from repro.service.store import database_from_payload, relations_payload

REPO_ROOT = Path(__file__).resolve().parents[1]

TRIANGLE_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R2", "attributes": ["a1", "a3"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]
PATH_ATOMS = [
    {"relation": "R1", "attributes": ["a1", "a2"]},
    {"relation": "R3", "attributes": ["a2", "a3"]},
]

#: (label, payload-sans-database, expected route) — all four routes.
WORKLOAD_SPEC = [
    ("triangle-enumerate", {"atoms": TRIANGLE_ATOMS}, "wcoj"),
    ("triangle-boolean", {"atoms": TRIANGLE_ATOMS, "mode": "boolean"}, "wcoj"),
    ("triangle-count", {"atoms": TRIANGLE_ATOMS, "mode": "count"}, "treewidth-dp"),
    ("path-enumerate", {"atoms": PATH_ATOMS}, "factorized"),
    (
        "path-project",
        {"atoms": PATH_ATOMS, "free": ["a1", "a3"]},
        "yannakakis",
    ),
    ("path-count", {"atoms": PATH_ATOMS, "mode": "count"}, "factorized"),
]

#: Seeds of the four benchmark databases. Distinct seeds give distinct
#: content, hence distinct fingerprints — the sharded executor places
#: each database by fingerprint, so a multi-database workload exercises
#: more than one shard.
DATABASE_SEEDS = (11, 23, 37, 53)


def _int_levels(name, default):
    raw = os.environ.get(name, default)
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _effective_cores():
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _scaling_gate():
    """Returns ``(threshold or None, description)`` for the gate.

    Worker processes only help when there are cores to run them on; on
    a single-core box the sweep is recorded but not enforced.
    """
    raw = os.environ.get("REPRO_BENCH_SERVICE_MIN_SCALING", "auto")
    cores = _effective_cores()
    if raw != "auto":
        threshold = float(raw)
        if threshold <= 0:
            return None, "disabled via REPRO_BENCH_SERVICE_MIN_SCALING"
        return threshold, f"explicit threshold {threshold}"
    if cores >= 4:
        return 2.0, f"auto: {cores} effective cores"
    if cores >= 2:
        return 1.3, f"auto: {cores} effective cores"
    return None, f"record-only: {cores} effective core"


def _bench_relations(n, seed):
    """A deterministic seeded triangle database as a wire payload."""
    query = JoinQuery.triangle()
    database = uniform_random_database(query, n, max(4, n // 8), seed=seed)
    return relations_payload(database)


def _boot_server(workers):
    """Start the service subprocess; returns (process, host, port)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--max-concurrency",
            str(max(8, 2 * workers)),
            "--queue-limit",
            "64",
            "--slow-ms",
            "50",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.perf_counter() + 60.0
    banner = ""
    while time.perf_counter() < deadline:
        banner = process.stdout.readline()
        if "listening on" in banner:
            break
        if process.poll() is not None:
            raise RuntimeError(f"server died during boot: {banner!r}")
    else:
        process.terminate()
        raise RuntimeError("server did not print its listen banner in 60s")
    address = banner.rsplit("http://", 1)[1].strip()
    host, port_text = address.rsplit(":", 1)
    return process, host, int(port_text)


async def _setup_and_verify(host, port, catalogs, workload):
    """Register the catalog; verify routes and byte-identity.

    Returns the volatile-stripped response of every workload entry —
    the cross-worker-level comparison material.
    """
    databases = {
        name: database_from_payload(relations)
        for name, relations in catalogs.items()
    }
    stripped = []
    async with ServiceClient(host, port) as client:
        for name, relations in catalogs.items():
            await client.register(name, relations)
        for label, entry, expected_route in workload:
            status, payload = await client.request("POST", "/query", entry)
            assert status == 200, f"{label}: {payload}"
            assert payload["route"] == expected_route, (
                f"{label}: routed {payload['route']}, expected {expected_route}"
            )
            assert payload["ops"] > 0, f"{label}: no ops charged"
            query = JoinQuery(
                Atom(a["relation"], tuple(a["attributes"]))
                for a in entry["atoms"]
            )
            direct = execute_route(
                query,
                databases[entry["database"]],
                free=tuple(entry["free"]) if "free" in entry else None,
                mode=entry.get("mode", "enumerate"),
            )
            if direct.relation is not None:
                assert payload["answers"] == canonical_answers(
                    direct.relation.tuples
                ), f"{label}: served answers differ from direct evaluation"
            if direct.count is not None:
                assert payload["count"] == direct.count, f"{label}: count differs"
            if direct.nonempty is not None:
                assert payload["nonempty"] == direct.nonempty, f"{label}: differs"
            stripped.append(strip_volatile(payload))
    return stripped


async def _collect_artifacts(host, port, dashboard_path):
    async with ServiceClient(host, port) as client:
        metrics = await client.get_json("/metrics")
        if dashboard_path:
            status, html_doc = await client.request("GET", "/dashboard")
            assert status == 200
            Path(dashboard_path).write_text(html_doc, encoding="utf-8")
    return metrics


def test_service_load_sweep():
    n = int(os.environ.get("REPRO_BENCH_SERVICE_N", "200"))
    legacy_levels = _int_levels("REPRO_BENCH_SERVICE_CONCURRENCY", "1,4,8")
    worker_levels = _int_levels("REPRO_BENCH_SERVICE_WORKERS", "0,2,4")
    scaling_levels = _int_levels(
        "REPRO_BENCH_SERVICE_SCALING_CONCURRENCY", "1,4,8,16"
    )
    per_worker = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "24"))
    min_hit_ratio = float(
        os.environ.get("REPRO_BENCH_SERVICE_MIN_HIT_RATIO", "0.5")
    )
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_SERVICE_OUT", REPO_ROOT / "BENCH_service.json"
        )
    )
    dashboard_path = os.environ.get("REPRO_BENCH_DASHBOARD", "")
    responses_path = os.environ.get("REPRO_BENCH_SERVICE_RESPONSES", "")
    # Without the workers=0 baseline (CI's second, sharded-only run)
    # the sweep still verifies responses and dumps them for the
    # cross-run diff; speedups and the gate need the baseline.
    has_baseline = 0 in worker_levels

    catalogs = {
        f"bench{index}": _bench_relations(n, seed)
        for index, seed in enumerate(DATABASE_SEEDS)
    }
    workload = [
        (f"{name}/{label}", dict(spec, database=name), expected_route)
        for name in catalogs
        for label, spec, expected_route in WORKLOAD_SPEC
    ]
    payloads = [entry for __, entry, __ in workload]

    throughput = {}
    hit_ratios = {}
    shard_views = {}
    legacy_rows = []
    reference_stripped = None
    metrics_for_record = None

    for workers in worker_levels:
        process, host, port = _boot_server(workers)
        try:
            stripped = asyncio.run(
                _setup_and_verify(host, port, catalogs, workload)
            )
            if reference_stripped is None:
                reference_stripped = stripped
            else:
                assert stripped == reference_stripped, (
                    f"workers={workers} responses differ from the inline "
                    "baseline after volatile-field stripping"
                )

            # The inline boot also covers any legacy latency-sweep
            # levels that the scaling sweep does not already run.
            levels_to_run = list(scaling_levels)
            if workers == 0:
                levels_to_run += [
                    level for level in legacy_levels if level not in scaling_levels
                ]
            throughput[workers] = {}
            for concurrency in levels_to_run:
                summary = asyncio.run(
                    run_load(host, port, payloads, concurrency, per_worker)
                )
                assert summary["statuses"].get("200", 0) == summary["requests"], (
                    f"non-200 responses at workers={workers} "
                    f"c={concurrency}: {summary['statuses']}"
                )
                throughput[workers][concurrency] = summary["throughput_rps"]
                if workers == 0 and concurrency in legacy_levels:
                    legacy_rows.append(
                        {
                            "concurrency": concurrency,
                            "requests": summary["requests"],
                            "throughput_rps": summary["throughput_rps"],
                            "latency_ms": summary["latency_ms"],
                        }
                    )

            metrics = asyncio.run(
                _collect_artifacts(
                    host, port, dashboard_path if workers == 0 else ""
                )
            )
        finally:
            process.terminate()
            process.wait(timeout=10)

        hit_ratios[workers] = metrics["plan_cache"]["hit_ratio"]
        assert metrics["plan_cache"]["hit_ratio"] > min_hit_ratio, (
            f"workers={workers}: plan-cache hit ratio "
            f"{metrics['plan_cache']['hit_ratio']:.3f} below {min_hit_ratio} "
            "on a repeated-query workload"
        )
        assert set(metrics["telemetry"]["route_mix"]) == {
            "factorized",
            "yannakakis",
            "wcoj",
            "treewidth-dp",
        }
        if workers > 0:
            shards = metrics["executor"]["shards"]
            shard_views[workers] = shards
            dispatched = sum(view["dispatched"] for view in shards.values())
            assert dispatched > 0, (
                f"workers={workers}: the sharded executor never dispatched "
                "(every evaluation fell back inline)"
            )
        if workers == 0 or metrics_for_record is None:
            metrics_for_record = metrics

    threshold, gate_description = _scaling_gate()
    gate_concurrency = 8 if 8 in scaling_levels else max(scaling_levels)
    peak_workers = max(worker_levels)
    speedups = {
        workers: {
            concurrency: (
                throughput[workers][concurrency] / throughput[0][concurrency]
                if throughput[0][concurrency] > 0
                else 0.0
            )
            for concurrency in scaling_levels
        }
        for workers in worker_levels
        if workers > 0 and has_baseline
    }

    scaling_record = {
        "worker_levels": list(worker_levels),
        "concurrency_levels": list(scaling_levels),
        "requests_per_worker": per_worker,
        "effective_cores": _effective_cores(),
        "gate": gate_description,
        "min_speedup": threshold if threshold is not None else 0.0,
        "gate_workers": peak_workers,
        "gate_concurrency": gate_concurrency,
        "throughput_rps": {
            str(workers): {
                str(concurrency): throughput[workers][concurrency]
                for concurrency in scaling_levels
            }
            for workers in worker_levels
        },
        "speedup_vs_inline": {
            str(workers): {
                str(concurrency): speedups[workers][concurrency]
                for concurrency in scaling_levels
            }
            for workers in speedups
        },
        "plan_cache_hit_ratio": {
            str(workers): hit_ratios[workers] for workers in worker_levels
        },
        "shards": {
            str(workers): shard_views[workers] for workers in shard_views
        },
        # In-run check: boots beyond the first were compared against it.
        # A single-level run relies on the cross-run dump diff instead.
        "byte_identical_across_workers": len(worker_levels) > 1,
    }

    plan_cache = metrics_for_record["plan_cache"]
    telemetry = metrics_for_record["telemetry"]
    record = {
        "schema": "repro-bench-service/2",
        "relation_tuples": n,
        "databases": sorted(catalogs),
        "workload": [label for label, __, __ in workload],
        "requests_per_worker": per_worker,
        "levels": legacy_rows,
        "scaling": scaling_record,
        "plan_cache": plan_cache,
        "route_mix": telemetry["route_mix"],
        "endpoint_p99_ms": {
            name: summary["p99_ms"]
            for name, summary in telemetry["endpoints"].items()
        },
        "slow_queries": len(telemetry["slow_queries"]),
        "answers_byte_identical": True,
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    if responses_path:
        Path(responses_path).write_text(
            json.dumps(
                {
                    "workload": [label for label, __, __ in workload],
                    "responses": reference_stripped,
                },
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )

    print()
    for row in legacy_rows:
        latency = row["latency_ms"]
        print(
            f"c={row['concurrency']}: {row['throughput_rps']:.0f} req/s, "
            f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms"
        )
    for workers in sorted(speedups):
        ratio_text = ", ".join(
            f"c={concurrency}: {speedups[workers][concurrency]:.2f}x"
            for concurrency in scaling_levels
        )
        print(f"workers={workers} speedup vs inline: {ratio_text}")
    print(f"scaling gate: {gate_description}")
    print(
        f"plan cache: hit ratio {plan_cache['hit_ratio']:.3f} "
        f"({plan_cache['hits']} hits / {plan_cache['misses']} misses)"
    )

    if threshold is not None and peak_workers > 0 and has_baseline:
        observed = speedups[peak_workers][gate_concurrency]
        assert observed >= threshold, (
            f"workers={peak_workers} at c={gate_concurrency} reached only "
            f"{observed:.2f}x over inline (gate {threshold}x, "
            f"{gate_description}; see {out_path})"
        )
