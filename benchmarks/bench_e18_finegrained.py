"""E18 — SETH inside P: Orthogonal Vectors and Edit Distance (§7)."""

from repro.experiments import exp_finegrained


def test_e18_quadratic_walls(experiment):
    result = experiment(exp_finegrained.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["sat_ov_equivalent"]
    assert result.findings["ov_exponent"] > 1.8
    assert result.findings["edit_dp_exponent"] > 1.8
    # The banded escape under a small-distance promise is linear.
    assert result.findings["edit_banded_exponent"] < 1.3
