"""E12 — the d-uniform hyperclique conjecture (§8)."""

from repro.experiments import exp_hyperclique


def test_e12_bruteforce_is_the_frontier(experiment):
    result = experiment(exp_hyperclique.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["planted_instances_found"]
    exponents = result.findings["ops_exponent_by_k"]
    ordered = [exponents[k] for k in sorted(exponents)]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
