"""E6 — Special CSP (Definition 4.3): the NP-intermediate candidate."""

from repro.experiments import exp_special


def test_e6_special_csp_quasipolynomial(experiment):
    result = experiment(exp_special.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["certificates_hold"]
    for row in result.rows:
        assert row["variables"] == row["k_plus_2k"]
