"""Semiring sweep benchmark: the aggregating core vs materialize-then-fold.

The E22 claim under the wall clock: on the hub star family (Θ(n²)
answers from 2n tuples) the counting fast path — the semiring
Yannakakis DP with its ``np.add.reduceat`` segment sums — answers #CQ
without materializing, so it must never be slower than enumerating the
answers and folding them flat, and the gap must grow with n. A second
sweep times all four registered semirings through the same DP on a
linear-answer diagonal family — provenance values carry one monomial
per answer, so a Θ(n²)-answer family would make the *value itself*
quadratic — and asserts every value equals the flat fold (the repo
invariant, here checked under timing conditions).

Results are merged into ``BENCH_kernels.json`` under the
``semiring_sweep`` key (read-modify-write, so the E3 and E21 sweep
data is preserved).

Environment knobs (used by the ``bench-smoke`` CI job):

* ``REPRO_BENCH_SIZES`` — comma-separated relation sizes
  (default ``64,128,256,512``);
* ``REPRO_BENCH_SEMIRING_MIN_RATIO`` — required fold/fast-path
  wall-clock ratio for counting at the largest size (default ``1.0``,
  i.e. "the counting fast path is never slower");
* ``REPRO_BENCH_REPEATS`` — timing repeats, best-of (default ``3``);
* ``REPRO_BENCH_OUT`` — output path for the JSON record.
"""

import json
import os
import time
from pathlib import Path

from repro.relational.database import Database
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.semiring import COUNTING, aggregate_relation, all_semirings
from repro.relational.wcoj import generic_join
from repro.relational.yannakakis import semiring_yannakakis

QUERY = JoinQuery.star(2)


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "64,128,256,512")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _hub_database(n: int) -> Database:
    """One hub value, n leaves per relation: the Θ(n²)-answer family."""
    return Database(
        [
            Relation("R1", ("x", "y"), [(0, i) for i in range(n)]),
            Relation("R2", ("x", "y"), [(0, j) for j in range(n)]),
        ]
    )


def _diagonal_database(n: int) -> Database:
    """Matching leaves, n answers: value sizes stay linear in n."""
    return Database(
        [
            Relation("R1", ("x", "y"), [(i, i) for i in range(n)]),
            Relation("R2", ("x", "y"), [(i, i) for i in range(n)]),
        ]
    )


def _best_of(repeats, fn):
    best = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, value


def test_semiring_sweep_counting_fast_path_never_slower():
    sizes = _sizes()
    min_ratio = float(os.environ.get("REPRO_BENCH_SEMIRING_MIN_RATIO", "1.0"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    out_path = Path(
        os.environ.get(
            "REPRO_BENCH_OUT", Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
        )
    )

    rows = []
    ratios = {}
    for n in sizes:
        naive_db = _hub_database(n)
        columnar_db = naive_db.with_backend("columnar")

        # The slow path: materialize every answer, then fold it flat.
        def enumerate_then_count():
            return aggregate_relation(
                COUNTING, QUERY, generic_join(QUERY, columnar_db)
            )

        fold_seconds, fold_count = _best_of(repeats, enumerate_then_count)
        fast_seconds, fast_count = _best_of(
            repeats, lambda: semiring_yannakakis(QUERY, columnar_db, COUNTING)
        )
        assert fast_count == fold_count == n * n

        # All four semirings through the same DP on the linear-answer
        # family, values pinned to the flat fold — the invariant, under
        # timing conditions.
        diag_db = _diagonal_database(n)
        full = generic_join(QUERY, diag_db)
        per_semiring = {}
        for semiring in all_semirings():
            seconds, value = _best_of(
                repeats,
                lambda s=semiring: semiring_yannakakis(QUERY, diag_db, s),
            )
            expected = aggregate_relation(semiring, QUERY, full)
            assert value == expected, f"{semiring.name} diverged at n={n}"
            per_semiring[semiring.name] = seconds

        ratio = fold_seconds / fast_seconds
        ratios[n] = ratio
        rows.append(
            {
                "experiment": "E22-semiring",
                "family": "hub-star",
                "n": n,
                "answers": fold_count,
                "fold_seconds": fold_seconds,
                "counting_fast_seconds": fast_seconds,
                "ratio": ratio,
                "seconds_by_semiring": per_semiring,
            }
        )

    largest, smallest = max(sizes), min(sizes)
    if largest >= 4 * smallest:
        assert ratios[largest] > ratios[smallest], (
            "fold/fast-path ratio did not grow with n — the counting fast "
            f"path must win asymptotically, got {ratios}"
        )
    assert ratios[largest] >= min_ratio, (
        f"counting fast path ratio {ratios[largest]:.2f}x at n={largest} "
        f"below required {min_ratio}x (see {out_path})"
    )

    sweep = {
        "schema": "repro-bench-semiring/1",
        "experiment": "E22-semiring",
        "query": "star(2) hub family",
        "semirings": [s.name for s in all_semirings()],
        "repeats_best_of": repeats,
        "rows": rows,
        "ratio_by_n": {str(n): ratios[n] for n in sizes},
        "largest_n": largest,
        "ratio_at_largest_n": ratios[largest],
        "values_match_flat_fold": True,
    }
    record = {}
    if out_path.exists():
        try:
            record = json.loads(out_path.read_text())
        except (json.JSONDecodeError, OSError):
            record = {}
    record["semiring_sweep"] = sweep
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for n in sizes:
        row = next(r for r in rows if r["n"] == n)
        print(
            f"n={n}: fold {row['fold_seconds']:.4f}s, "
            f"counting fast path {row['counting_fast_seconds']:.4f}s, "
            f"ratio {ratios[n]:.2f}x"
        )
