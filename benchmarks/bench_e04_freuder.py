"""E4 — Freuder's O(|V|·|D|^{k+1}) algorithm (Theorem 4.2)."""

from repro.experiments import exp_freuder


def test_e4_freuder_exponent_tracks_width(experiment):
    result = experiment(exp_freuder.run)
    assert result.findings["verdict"] == "PASS"
    exponents = result.findings["fitted_exponents_by_width"]
    for width, slope in exponents.items():
        assert slope <= width + 1.6
