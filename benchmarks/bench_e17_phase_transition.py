"""E17 — the random-CSP phase transition (§6 context)."""

from repro.experiments import exp_phase_transition


def test_e17_hardness_peaks_at_threshold(experiment):
    result = experiment(exp_phase_transition.run)
    assert result.findings["verdict"] == "PASS"
    assert result.findings["peak_over_edges"] > 1.5
    # SAT fraction goes 1 -> 0 across the sweep.
    fractions = result.column("sat_fraction")
    assert fractions[0] == 1.0
    assert fractions[-1] == 0.0
