"""The Orthogonal Vectors problem.

Given two sets A, B of n Boolean vectors of dimension d, decide whether
some a ∈ A and b ∈ B are orthogonal (a·b = 0, i.e. no shared 1). The
OV conjecture — implied by the SETH via the split-and-enumerate
reduction — states there is no O(n^{2−ε} · poly(d)) algorithm; the
brute force below is therefore conjecturally optimal up to
subpolynomial factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError

Vector = tuple[int, ...]


@dataclass(frozen=True)
class OVInstance:
    """Two vector families over {0, 1}^dimension."""

    left: tuple[Vector, ...]
    right: tuple[Vector, ...]
    dimension: int

    @staticmethod
    def from_lists(
        left: Sequence[Sequence[int]], right: Sequence[Sequence[int]]
    ) -> "OVInstance":
        left_t = tuple(tuple(v) for v in left)
        right_t = tuple(tuple(v) for v in right)
        dims = {len(v) for v in left_t} | {len(v) for v in right_t}
        if len(dims) > 1:
            raise InvalidInstanceError(f"mixed vector dimensions {sorted(dims)}")
        dimension = dims.pop() if dims else 0
        for v in left_t + right_t:
            if any(x not in (0, 1) for x in v):
                raise InvalidInstanceError(f"non-Boolean vector {v!r}")
        return OVInstance(left_t, right_t, dimension)

    @property
    def size(self) -> int:
        return max(len(self.left), len(self.right))


def are_orthogonal(a: Vector, b: Vector) -> bool:
    """No coordinate where both vectors are 1."""
    return all(x * y == 0 for x, y in zip(a, b))


def find_orthogonal_pair(
    instance: OVInstance, counter: CostCounter | None = None
) -> tuple[Vector, Vector] | None:
    """Brute force O(|A|·|B|·d): the conjecturally optimal algorithm.

    Returns an orthogonal pair or ``None``. Bitmask packing keeps the
    inner test O(d/word) in practice; one unit is charged per pair.

    Complexity: O(n · m · d) over all pairs — exactly the quadratic
        shape the OV conjecture says cannot be beaten to n^{2−ε}.
    """
    right_masks = [
        (sum(1 << i for i, x in enumerate(v) if x), v) for v in instance.right
    ]
    for a in instance.left:
        a_mask = sum(1 << i for i, x in enumerate(a) if x)
        for b_mask, b in right_masks:
            charge(counter)
            if a_mask & b_mask == 0:
                return a, b
    return None


def has_orthogonal_pair(
    instance: OVInstance, counter: CostCounter | None = None
) -> bool:
    """Decision form of :func:`find_orthogonal_pair`.

    Complexity: O(n · m · d), via :func:`find_orthogonal_pair`.
    """
    return find_orthogonal_pair(instance, counter) is not None
