"""Fine-grained complexity inside P (§7's closing theme).

The paper highlights that the SETH gives tight lower bounds for
*polynomial-time* problems — e.g. the textbook O(n²) Edit Distance DP
cannot be improved to O(n^{2−ε}) unless the SETH fails [12, 19], with
the Orthogonal Vectors problem as the standard intermediate step [56].

This package implements the objects of that story:

* Orthogonal Vectors (OV): brute force O(n²·d) search, the algorithm
  the OV conjecture says is essentially optimal;
* the split-and-enumerate reduction CNF-SAT → OV (certified): n-variable
  SAT becomes OV on 2^{n/2} vectors of dimension m, so an O(n^{2−ε}) OV
  algorithm would give a (2−ε')^n SAT algorithm — refuting SETH;
* Edit Distance: the O(n·m) dynamic program whose quadratic shape the
  SETH protects, plus the banded variant for bounded distance.
"""

from .orthogonal_vectors import (
    OVInstance,
    find_orthogonal_pair,
    has_orthogonal_pair,
)
from .sat_to_ov import sat_to_orthogonal_vectors
from .edit_distance import edit_distance, edit_distance_banded

__all__ = [
    "OVInstance",
    "edit_distance",
    "edit_distance_banded",
    "find_orthogonal_pair",
    "has_orthogonal_pair",
    "sat_to_orthogonal_vectors",
]
