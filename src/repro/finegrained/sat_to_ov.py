"""CNF-SAT → Orthogonal Vectors: the split-and-enumerate reduction.

The step behind every SETH-based polynomial lower bound ([56] and the
fine-grained literature the paper cites): split the n variables into
two halves; for each of the 2^{n/2} assignments to a half, build the
m-dimensional indicator vector of the clauses that half leaves
*unsatisfied*. Two vectors are orthogonal iff no clause is left
unsatisfied by both halves — i.e. the combined assignment is a model.

Hence an O(N^{2−ε}) OV algorithm (N = 2^{n/2}) would decide SAT in
(2^{n/2})^{2−ε} = 2^{(1−ε/2)n}, refuting the SETH.
"""

from __future__ import annotations

from itertools import product

from ..errors import ReductionError
from ..sat.cnf import CNF
from ..transforms import SAT, VECTORS, CertifiedReduction, transform
from ..transforms.witnesses import small_cnf
from .orthogonal_vectors import OVInstance

#: Cap on half-assignment enumeration; the reduction is exponential by
#: design (that is the point), so keep demo instances modest.
MAX_HALF_VARIABLES = 16


@transform(
    name="cnfsat→orthogonal-vectors",
    source=SAT,
    target=VECTORS,
    guarantees=(
        "|A| == 2^{n/2}",
        "|B| == 2^{n - n/2}",
        "dimension == m",
    ),
    witness=small_cnf,
)
def sat_to_orthogonal_vectors(formula: CNF) -> CertifiedReduction:
    """Build the OV instance equivalent to ``formula``.

    The target is an :class:`OVInstance`; an orthogonal pair decodes to
    a satisfying assignment via ``pull_back``.
    """
    n = formula.num_variables
    if n == 0:
        raise ReductionError("formula has no variables")
    half = n // 2
    if max(half, n - half) > MAX_HALF_VARIABLES:
        raise ReductionError(
            f"half-assignment enumeration limited to {MAX_HALF_VARIABLES} variables"
        )
    first_half = list(range(1, half + 1))
    second_half = list(range(half + 1, n + 1))
    clauses = list(formula.clauses)

    def vectors(variables: list[int]) -> list[tuple[tuple[int, ...], dict[int, bool]]]:
        out = []
        for values in product((False, True), repeat=len(variables)):
            assignment = dict(zip(variables, values))
            vector = tuple(
                0
                if any(
                    abs(lit) in assignment and assignment[abs(lit)] == (lit > 0)
                    for lit in clause
                )
                else 1
                for clause in clauses
            )
            out.append((vector, assignment))
        return out

    left = vectors(first_half)
    right = vectors(second_half)
    decode_left = {v: a for v, a in reversed(left)}
    decode_right = {v: a for v, a in reversed(right)}
    instance = OVInstance.from_lists(
        [v for v, __ in left], [v for v, __ in right]
    )

    def back(pair):
        a, b = pair
        assignment = {**decode_left[a], **decode_right[b]}
        for var in range(1, n + 1):
            assignment.setdefault(var, False)
        return assignment

    reduction = CertifiedReduction(
        name="cnfsat→orthogonal-vectors",
        source=formula,
        target=instance,
        map_solution_back=back,
    )
    reduction.certify_eq("|A| == 2^{n/2}", len(instance.left), 2**half)
    reduction.certify_eq("|B| == 2^{n - n/2}", len(instance.right), 2 ** (n - half))
    reduction.certify_eq("dimension == m", instance.dimension, formula.num_clauses)
    return reduction
