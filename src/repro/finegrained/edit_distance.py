"""Edit distance: the quadratic DP the SETH protects ([12, 19]).

The paper's flagship example of a *polynomial-time* problem with a
SETH-tight bound: the textbook O(n·m) dynamic program cannot be
improved to O(n^{2−ε}). Implements that DP plus the banded
(Ukkonen-style) variant that runs in O(k·n) when the distance is at
most k — faster, but only by restricting the *output*, exactly the kind
of escape the lower bound permits.
"""

from __future__ import annotations

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError


def edit_distance(
    left: str, right: str, counter: CostCounter | None = None
) -> int:
    """Levenshtein distance by the O(|left|·|right|) DP.

    Unit costs for insertion, deletion, and substitution.
    """
    n, m = len(left), len(right)
    if n == 0:
        return m
    if m == 0:
        return n
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        for j in range(1, m + 1):
            charge(counter)
            substitution = previous[j - 1] + (left[i - 1] != right[j - 1])
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    return previous[m]


def edit_distance_banded(
    left: str,
    right: str,
    max_distance: int,
    counter: CostCounter | None = None,
) -> int | None:
    """Edit distance if it is ≤ ``max_distance``, else ``None``.

    Only the diagonal band of width 2k+1 is filled: O(k · max(n, m))
    work. This does *not* contradict the SETH bound — it is faster only
    when the answer is promised small.
    """
    if max_distance < 0:
        raise InvalidInstanceError("max_distance must be nonnegative")
    n, m = len(left), len(right)
    if abs(n - m) > max_distance:
        return None
    if n == 0 or m == 0:
        distance = max(n, m)
        return distance if distance <= max_distance else None

    big = max_distance + 1
    previous = {j: j for j in range(0, min(m, max_distance) + 1)}
    for i in range(1, n + 1):
        current: dict[int, int] = {}
        low = max(0, i - max_distance)
        high = min(m, i + max_distance)
        for j in range(low, high + 1):
            charge(counter)
            if j == 0:
                current[j] = i
                continue
            best = big
            if j in previous:
                best = min(best, previous[j] + 1)
            if j - 1 in current:
                best = min(best, current[j - 1] + 1)
            if j - 1 in previous:
                best = min(
                    best, previous[j - 1] + (left[i - 1] != right[j - 1])
                )
            current[j] = best
        previous = current
    distance = previous.get(m, big)
    return distance if distance <= max_distance else None
