"""Databases for join queries, including the Theorem 3.2 tight family.

The tight construction follows the AGM paper: solve the *dual* LP of
the fractional edge cover (the fractional independent set / vertex
weighting: maximize Σ x_v subject to Σ_{v ∈ e} x_v ≤ 1 per edge).
By LP duality the optimum is ρ*(H). Set each attribute's value range to
[N^{x_v}] and let every relation be the full product of its attributes'
ranges: then |R_e| = Π_{v∈e} N^{x_v} ≤ N, while the answer is the full
product Π_v N^{x_v} = N^{ρ*} — matching the AGM upper bound within
integer rounding.
"""

from __future__ import annotations

import math
import random
from itertools import product

import numpy as np
from scipy.optimize import linprog

from ..errors import InvalidInstanceError
from ..relational.database import Database
from ..relational.query import JoinQuery
from ..relational.relation import Relation


def fractional_independent_set(query: JoinQuery) -> dict[str, float]:
    """Optimal dual weights x_v (Σ_{v∈e} x_v ≤ 1, maximize Σ x_v)."""
    hypergraph = query.hypergraph()
    vertices = hypergraph.vertices
    edges = hypergraph.edges
    if not edges:
        raise InvalidInstanceError("query has no atoms")
    # linprog minimizes; maximize Σ x_v == minimize -Σ x_v.
    cost = -np.ones(len(vertices))
    index = {v: i for i, v in enumerate(vertices)}
    a_ub = np.zeros((len(edges), len(vertices)))
    for row, e in enumerate(edges):
        for v in e:
            a_ub[row, index[v]] = 1.0
    b_ub = np.ones(len(edges))
    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs")
    if not result.success:
        raise InvalidInstanceError(f"dual LP failed: {result.message}")
    return {v: float(result.x[index[v]]) for v in vertices}


def tight_agm_database(query: JoinQuery, relation_size: int) -> Database:
    """The Theorem 3.2 construction: a database where every relation
    has at most ``relation_size`` tuples and the answer has size
    ~``relation_size``^ρ*(H).

    Every attribute v gets the value range ``[0, floor(N^{x_v}))`` and
    each relation is the full cross product of its attributes' ranges.
    """
    if relation_size < 1:
        raise InvalidInstanceError("relation size must be >= 1")
    weights = fractional_independent_set(query)
    ranges = {
        v: max(1, math.floor(relation_size ** weights[v] + 1e-9))
        for v in weights
    }

    relations = []
    for atom in query.atoms:
        tuples = product(*(range(ranges[a]) for a in atom.attributes))
        relations.append(Relation(atom.relation_name, atom.attributes, tuples))
    return Database(relations)


def expected_tight_answer_size(query: JoinQuery, relation_size: int) -> int:
    """The exact answer size of :func:`tight_agm_database` (the full
    product of attribute ranges)."""
    weights = fractional_independent_set(query)
    size = 1
    for v, x in weights.items():
        size *= max(1, math.floor(relation_size ** x + 1e-9))
    return size


def skewed_triangle_database(relation_size: int) -> Database:
    """The classic hard instance for pairwise triangle plans.

    Each binary relation is a "cross": {0}×[N/2] ∪ [N/2]×{0}. Every
    pairwise join then materializes ~(N/2)² tuples while the triangle
    answer has only ~3N/2 tuples — the gap Theorem 3.3's worst-case
    optimal join avoids.
    """
    if relation_size < 2:
        raise InvalidInstanceError("relation size must be >= 2")
    half = relation_size // 2
    cross = [(0, i) for i in range(half)] + [(i, 0) for i in range(half)]
    query = JoinQuery.triangle()
    relations = [
        Relation(atom.relation_name, atom.attributes, cross)
        for atom in query.atoms
    ]
    return Database(relations)


def uniform_random_database(
    query: JoinQuery,
    relation_size: int,
    domain_size: int,
    seed: int | random.Random = 0,
) -> Database:
    """Each relation filled with ``relation_size`` uniform random tuples
    over ``[0, domain_size)`` (deduplicated, so sizes may be slightly
    smaller on tiny domains)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    relations = []
    for atom in query.atoms:
        rel = Relation(atom.relation_name, atom.attributes)
        for _ in range(relation_size):
            rel.add(tuple(rng.randrange(domain_size) for _ in atom.attributes))
        relations.append(rel)
    return Database(relations)
