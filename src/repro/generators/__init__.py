"""Instance generators for every experiment family.

All generators are deterministic given an explicit ``random.Random``
seed (or accept an int seed) so experiments and benchmarks are
reproducible bit-for-bit.
"""

from .sat_gen import HARD_3SAT_RATIO, planted_ksat, random_ksat
from .csp_gen import (
    bounded_treewidth_csp,
    planted_solution_csp,
    random_binary_csp,
)
from .graph_gen import (
    gnm_random_graph,
    gnp_random_graph,
    planted_clique_graph,
    planted_dominating_set_graph,
    planted_hyperclique,
    planted_vertex_cover_graph,
    random_uniform_hypergraph,
    skewed_bipartite_graph,
    turan_graph,
)
from .agm import (
    expected_tight_answer_size,
    fractional_independent_set,
    skewed_triangle_database,
    tight_agm_database,
    uniform_random_database,
)

__all__ = [
    "HARD_3SAT_RATIO",
    "bounded_treewidth_csp",
    "expected_tight_answer_size",
    "fractional_independent_set",
    "gnm_random_graph",
    "gnp_random_graph",
    "planted_clique_graph",
    "planted_dominating_set_graph",
    "planted_hyperclique",
    "planted_ksat",
    "planted_solution_csp",
    "planted_vertex_cover_graph",
    "random_binary_csp",
    "random_ksat",
    "random_uniform_hypergraph",
    "skewed_bipartite_graph",
    "skewed_triangle_database",
    "tight_agm_database",
    "turan_graph",
    "uniform_random_database",
]
