"""Random CSP instance generators.

Three families:

* uniform random binary CSPs (density/tightness model);
* planted-solution CSPs (always satisfiable, solution known);
* bounded-treewidth CSPs built on partial k-trees — the Theorem 4.2
  regime, where Freuder's DP is polynomial.
"""

from __future__ import annotations

import random
from itertools import product

from ..csp.instance import Constraint, CSPInstance
from ..errors import InvalidInstanceError


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_binary_csp(
    num_variables: int,
    domain_size: int,
    num_constraints: int,
    tightness: float = 0.5,
    seed: int | random.Random = 0,
) -> CSPInstance:
    """The classic (n, d, m, t) random model: m constraints on random
    variable pairs, each allowing a ``1 - tightness`` fraction of pairs.
    """
    if num_variables < 2:
        raise InvalidInstanceError("need at least two variables")
    if not 0.0 <= tightness <= 1.0:
        raise InvalidInstanceError(f"tightness must be in [0, 1], got {tightness}")
    rng = _rng(seed)
    variables = [f"v{i}" for i in range(num_variables)]
    domain = list(range(domain_size))
    all_pairs = list(product(domain, repeat=2))
    keep = max(1, round(len(all_pairs) * (1.0 - tightness)))
    constraints = []
    for _ in range(num_constraints):
        u, v = rng.sample(variables, 2)
        relation = rng.sample(all_pairs, keep)
        constraints.append(Constraint((u, v), relation))
    return CSPInstance(variables, domain, constraints)


def planted_solution_csp(
    num_variables: int,
    domain_size: int,
    num_constraints: int,
    tightness: float = 0.5,
    seed: int | random.Random = 0,
) -> tuple[CSPInstance, dict]:
    """Random binary CSP whose relations all contain a hidden solution.

    Returns ``(instance, planted_assignment)``.
    """
    rng = _rng(seed)
    variables = [f"v{i}" for i in range(num_variables)]
    domain = list(range(domain_size))
    planted = {v: rng.choice(domain) for v in variables}
    all_pairs = list(product(domain, repeat=2))
    keep = max(1, round(len(all_pairs) * (1.0 - tightness)))
    constraints = []
    for _ in range(num_constraints):
        u, v = rng.sample(variables, 2)
        relation = set(rng.sample(all_pairs, keep))
        relation.add((planted[u], planted[v]))
        constraints.append(Constraint((u, v), relation))
    return CSPInstance(variables, domain, constraints), planted


def bounded_treewidth_csp(
    num_variables: int,
    domain_size: int,
    width: int,
    tightness: float = 0.3,
    seed: int | random.Random = 0,
) -> CSPInstance:
    """A CSP whose primal graph is a partial k-tree (treewidth ≤ width).

    Built by the k-tree process: start from a (width+1)-clique, then
    attach each new variable to a random existing bag of ``width``
    mutually known variables, constraining a random subset of those
    attachments. This is the instance family of Theorem 4.2 / E4.
    """
    if width < 1:
        raise InvalidInstanceError(f"width must be >= 1, got {width}")
    if num_variables < width + 1:
        raise InvalidInstanceError(
            f"need at least width+1 = {width + 1} variables, got {num_variables}"
        )
    rng = _rng(seed)
    variables = [f"v{i}" for i in range(num_variables)]
    domain = list(range(domain_size))
    all_pairs = list(product(domain, repeat=2))
    keep = max(1, round(len(all_pairs) * (1.0 - tightness)))

    edges: list[tuple[str, str]] = []
    # Seed clique on the first width+1 variables.
    bags: list[list[str]] = [variables[: width + 1]]
    for i in range(width + 1):
        for j in range(i + 1, width + 1):
            edges.append((variables[i], variables[j]))
    # k-tree growth: each new vertex joins a width-subset of some bag.
    for idx in range(width + 1, num_variables):
        bag = rng.choice(bags)
        attach = rng.sample(bag, width)
        for u in attach:
            edges.append((variables[idx], u))
        bags.append(attach + [variables[idx]])

    constraints = [
        Constraint((u, v), rng.sample(all_pairs, keep)) for u, v in edges
    ]
    return CSPInstance(variables, domain, constraints)
