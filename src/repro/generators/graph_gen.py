"""Random graph and hypergraph generators."""

from __future__ import annotations

import random
from itertools import combinations

from ..errors import InvalidInstanceError
from ..graphs.graph import Graph
from ..graphs.hyperclique import Hypergraph as UniformHypergraph


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def gnp_random_graph(n: int, p: float, seed: int | random.Random = 0) -> Graph:
    """Erdős–Rényi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise InvalidInstanceError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def gnm_random_graph(n: int, m: int, seed: int | random.Random = 0) -> Graph:
    """Uniform G(n, m): exactly m distinct edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise InvalidInstanceError(f"m = {m} exceeds C({n},2) = {max_edges}")
    rng = _rng(seed)
    graph = Graph(vertices=range(n))
    chosen = rng.sample(list(combinations(range(n), 2)), m)
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def planted_clique_graph(
    n: int, k: int, p: float = 0.3, seed: int | random.Random = 0
) -> tuple[Graph, tuple[int, ...]]:
    """G(n, p) with a planted k-clique on random vertices.

    Returns ``(graph, clique_vertices)``.
    """
    if k > n:
        raise InvalidInstanceError(f"clique size {k} exceeds n = {n}")
    rng = _rng(seed)
    graph = gnp_random_graph(n, p, rng)
    members = tuple(rng.sample(range(n), k))
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            graph.add_edge(u, v)
    return graph, members


def planted_dominating_set_graph(
    n: int, k: int, seed: int | random.Random = 0
) -> tuple[Graph, tuple[int, ...]]:
    """A graph dominated by a planted set of k centers.

    Every non-center attaches to a random center (guaranteeing
    domination by the k centers) plus sparse random noise edges.
    """
    if k < 1 or k > n:
        raise InvalidInstanceError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = _rng(seed)
    centers = tuple(range(k))
    graph = Graph(vertices=range(n))
    for v in range(k, n):
        graph.add_edge(v, rng.choice(centers))
    for _ in range(n // 2):
        u, v = rng.sample(range(n), 2)
        graph.add_edge(u, v)
    return graph, centers


def planted_vertex_cover_graph(
    n: int, k: int, num_edges: int, seed: int | random.Random = 0
) -> tuple[Graph, tuple[int, ...]]:
    """A graph whose edges all touch a planted k-set (so a k-cover
    exists). Returns ``(graph, cover)``."""
    if k < 1 or k > n:
        raise InvalidInstanceError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = _rng(seed)
    cover = tuple(range(k))
    graph = Graph(vertices=range(n))
    for _ in range(num_edges):
        u = rng.choice(cover)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph, cover


def turan_graph(n: int, parts: int) -> Graph:
    """The Turán graph T(n, parts): complete multipartite with balanced
    parts. It is the densest graph with no (parts+1)-clique — the
    worst case for clique search, which must exhaust the space."""
    if parts < 1 or parts > n:
        raise InvalidInstanceError(f"need 1 <= parts <= n, got parts={parts}, n={n}")
    part_of = [i % parts for i in range(n)]
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if part_of[i] != part_of[j]:
                graph.add_edge(i, j)
    return graph


def skewed_bipartite_graph(
    n_right: int, hubs: int, num_edges: int, seed: int | random.Random = 0
) -> Graph:
    """A triangle-free bipartite graph where a few left hubs carry most
    edges — the degree-skew regime that separates naive neighborhood
    scanning from degree-ordered and AYZ triangle detection."""
    rng = _rng(seed)
    left = [f"L{i}" for i in range(hubs)]
    right = [f"R{i}" for i in range(n_right)]
    graph = Graph(vertices=left + right)
    added = 0
    while added < min(num_edges, hubs * n_right):
        u = left[rng.randrange(hubs)]
        v = right[rng.randrange(n_right)]
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def random_uniform_hypergraph(
    n: int, d: int, num_edges: int, seed: int | random.Random = 0
) -> UniformHypergraph:
    """A random d-uniform hypergraph with ``num_edges`` distinct edges."""
    rng = _rng(seed)
    hypergraph = UniformHypergraph(d, vertices=range(n))
    all_edges = list(combinations(range(n), d))
    if num_edges > len(all_edges):
        raise InvalidInstanceError(
            f"num_edges = {num_edges} exceeds C({n},{d}) = {len(all_edges)}"
        )
    for edge in rng.sample(all_edges, num_edges):
        hypergraph.add_edge(edge)
    return hypergraph


def planted_hyperclique(
    n: int, d: int, k: int, num_noise_edges: int, seed: int | random.Random = 0
) -> tuple[UniformHypergraph, tuple[int, ...]]:
    """A d-uniform hypergraph containing a planted k-hyperclique."""
    if k > n or k < d:
        raise InvalidInstanceError(f"need d <= k <= n, got d={d}, k={k}, n={n}")
    rng = _rng(seed)
    hypergraph = random_uniform_hypergraph(n, d, num_noise_edges, rng)
    members = tuple(rng.sample(range(n), k))
    for edge in combinations(members, d):
        hypergraph.add_edge(edge)
    return hypergraph, members
