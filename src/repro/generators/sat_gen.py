"""Random and planted k-SAT generators.

The uniform random model at clause ratio m/n ≈ 4.26 (the empirical
3SAT satisfiability threshold) produces the hard instances the
ETH/SETH reason about; planted instances guarantee satisfiability for
solution-recovery tests.
"""

from __future__ import annotations

import random

from ..errors import InvalidInstanceError
from ..sat.cnf import CNF

#: Empirical satisfiability-threshold clause/variable ratio for 3SAT.
HARD_3SAT_RATIO = 4.26


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_ksat(
    num_variables: int, num_clauses: int, k: int = 3, seed: int | random.Random = 0
) -> CNF:
    """Uniform random k-SAT: each clause picks k distinct variables and
    independent random polarities."""
    if num_variables < k:
        raise InvalidInstanceError(f"need at least k = {k} variables, got {num_variables}")
    rng = _rng(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_variables + 1), k)
        clauses.append(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return CNF(num_variables, clauses)


def planted_ksat(
    num_variables: int, num_clauses: int, k: int = 3, seed: int | random.Random = 0
) -> tuple[CNF, dict[int, bool]]:
    """Random k-SAT guaranteed satisfiable by a hidden assignment.

    Each clause is resampled until the planted assignment satisfies it.
    Returns ``(formula, planted_assignment)``.
    """
    if num_variables < k:
        raise InvalidInstanceError(f"need at least k = {k} variables, got {num_variables}")
    rng = _rng(seed)
    planted = {v: rng.random() < 0.5 for v in range(1, num_variables + 1)}
    clauses = []
    for _ in range(num_clauses):
        while True:
            variables = rng.sample(range(1, num_variables + 1), k)
            clause = [v if rng.random() < 0.5 else -v for v in variables]
            if any(planted[abs(lit)] == (lit > 0) for lit in clause):
                clauses.append(clause)
                break
    return CNF(num_variables, clauses), planted
