"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, query, or database violates its declared schema."""


class ArityMismatchError(SchemaError):
    """A tuple or scope does not match the arity of its relation."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced that does not occur in the schema."""


class InvalidInstanceError(ReproError):
    """An instance (CSP, graph, formula, ...) is structurally invalid."""


class InvalidDecompositionError(ReproError):
    """A tree decomposition violates one of its three defining axioms."""


class ReductionError(ReproError):
    """A reduction was applied to an instance outside its domain."""


class DerivationError(ReproError):
    """A lower bound's derivation chain failed mechanical validation."""


class SolverError(ReproError):
    """A solver was configured inconsistently or hit an internal limit."""


class BudgetExceededError(SolverError):
    """An operation budget given via ``CostCounter`` was exhausted."""
