"""Propositional satisfiability (§4, §6, §7).

3SAT is the source problem of the ETH (Hypothesis 1/2) and CNF-SAT of
the SETH (Hypothesis 3). This package provides the CNF representation,
a DPLL solver (the exponential baseline the hypotheses speak about),
polynomial special cases (2SAT via implication-graph SCCs, Horn-SAT via
unit propagation, affine-SAT via Gaussian elimination over GF(2)), and a
Schaefer dichotomy classifier for sets of Boolean relations.
"""

from .cnf import CNF, Clause, Literal
from .cdcl import CDCLStats, solve_cdcl
from .dpll import DPLLStats, solve_dpll
from .two_sat import solve_2sat
from .horn import is_horn, solve_horn
from .affine import solve_affine_system
from .dimacs import parse_dimacs, write_dimacs
from .model_counting import count_models
from .schaefer import (
    BooleanRelation,
    SchaeferClass,
    SchaeferVerdict,
    classify_relation_set,
    is_affine_relation,
    is_bijunctive_relation,
    is_dual_horn_relation,
    is_horn_relation,
    is_one_valid,
    is_zero_valid,
)

__all__ = [
    "BooleanRelation",
    "CDCLStats",
    "CNF",
    "Clause",
    "DPLLStats",
    "Literal",
    "SchaeferClass",
    "SchaeferVerdict",
    "classify_relation_set",
    "count_models",
    "is_affine_relation",
    "is_bijunctive_relation",
    "is_dual_horn_relation",
    "is_horn",
    "is_horn_relation",
    "is_one_valid",
    "is_zero_valid",
    "parse_dimacs",
    "solve_2sat",
    "solve_affine_system",
    "solve_cdcl",
    "solve_dpll",
    "solve_horn",
    "write_dimacs",
]
