"""Horn satisfiability by unit propagation.

Horn clauses (≤ 1 positive literal) form one of Schaefer's tractable
classes. The minimal-model algorithm: start all-false, propagate
forced positives to a fixed point, then check purely-negative clauses.
"""

from __future__ import annotations

from ..errors import InvalidInstanceError
from .cnf import CNF


def is_horn(formula: CNF) -> bool:
    """True iff every clause has at most one positive literal."""
    return all(sum(1 for lit in c if lit > 0) <= 1 for c in formula.clauses)


def solve_horn(formula: CNF) -> dict[int, bool] | None:
    """Solve a Horn formula in polynomial time; model or ``None``.

    The returned model is the *minimal* one (fewest true variables),
    a property the tests pin down.

    Complexity: O(‖F‖) — unit propagation with watched counts;
        Schaefer's tractable HORN class.
    """
    if not is_horn(formula):
        raise InvalidInstanceError("formula is not Horn (some clause has 2+ positive literals)")

    true_vars: set[int] = set()
    changed = True
    while changed:
        changed = False
        for clause in formula.clauses:
            positives = [lit for lit in clause if lit > 0]
            if not positives:
                continue
            # A clause forces its head once every negative literal is
            # falsified, i.e. all body variables are already true.
            head = positives[0]
            body_true = all(abs(lit) in true_vars for lit in clause if lit < 0)
            if body_true and head not in true_vars:
                true_vars.add(head)
                changed = True

    assignment = {
        var: (var in true_vars) for var in range(1, formula.num_variables + 1)
    }
    return assignment if formula.evaluate(assignment) else None
