"""DPLL satisfiability solving.

This is the exponential-time baseline whose asymptotics the ETH and
SETH constrain: branching with unit propagation and pure-literal
elimination. Statistics (decisions, propagations) are exposed so the
E5 experiment can plot the exponential trend on random 3SAT near the
hard clause ratio without timing noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..counting import CostCounter, charge
from ..observability.metrics import Histogram, SMALL_BUCKETS, current_metrics
from ..observability.tracing import span
from .cnf import CNF, Literal


@dataclass
class DPLLStats:
    """Work counters for one :func:`solve_dpll` run."""

    decisions: int = 0
    unit_propagations: int = 0
    pure_eliminations: int = 0
    conflicts: int = 0


def solve_dpll(
    formula: CNF,
    counter: CostCounter | None = None,
    use_unit_propagation: bool = True,
    use_pure_literals: bool = True,
    stats: DPLLStats | None = None,
) -> dict[int, bool] | None:
    """Solve ``formula``; return a satisfying assignment or ``None``.

    The two inference rules can be disabled independently — the
    ablation benchmark measures what each contributes.

    Unassigned variables that do not occur in any clause are completed
    arbitrarily (``False``) so callers always receive a total
    assignment over ``1..num_variables``.

    Complexity: O(2^n · ‖F‖) worst case — the branching tree has ≤ 2^n
        leaves, each charged one formula pass.
    """
    stats = stats if stats is not None else DPLLStats()
    assignment: dict[int, bool] = {}

    # Propagation-shape distribution (no-op outside the experiment
    # runtime): the length of each maximal unit-propagation chain —
    # how far one decision cascades before the next branch is needed.
    registry = current_metrics()
    chain_hist = None
    if registry is not None:
        chain_hist = registry.histogram("dpll.unit_chain_length", SMALL_BUCKETS)
        registry.counter("dpll.calls").inc()

    clauses = [set(c) for c in formula.clauses]
    with span(
        "solve_dpll",
        counter=counter,
        variables=formula.num_variables,
        clauses=len(clauses),
    ):
        result = _dpll(clauses, assignment, counter, use_unit_propagation, use_pure_literals, stats, chain_hist)
    if result is None:
        return None
    for var in range(1, formula.num_variables + 1):
        result.setdefault(var, False)
    return result


def _dpll(
    clauses: list[set[Literal]],
    assignment: dict[int, bool],
    counter: CostCounter | None,
    use_up: bool,
    use_pure: bool,
    stats: DPLLStats,
    chain_hist: Histogram | None = None,
) -> dict[int, bool] | None:
    clauses = [set(c) for c in clauses]

    unit_chain = 0
    while True:
        progress = False

        if use_up:
            unit = next((c for c in clauses if len(c) == 1), None)
            if unit is not None:
                lit = next(iter(unit))
                stats.unit_propagations += 1
                unit_chain += 1
                charge(counter)
                conflict = _assign(clauses, assignment, lit)
                if conflict:
                    stats.conflicts += 1
                    if chain_hist is not None:
                        chain_hist.observe(unit_chain)
                    return None
                progress = True

        if not progress and use_pure:
            polarity: dict[int, int] = {}
            for clause in clauses:
                for lit in clause:
                    var = abs(lit)
                    seen = polarity.get(var, 0)
                    polarity[var] = seen | (1 if lit > 0 else 2)
            pure = next((v for v, p in polarity.items() if p in (1, 2)), None)
            if pure is not None:
                stats.pure_eliminations += 1
                charge(counter)
                lit = pure if polarity[pure] == 1 else -pure
                if _assign(clauses, assignment, lit):
                    stats.conflicts += 1
                    return None
                progress = True

        if not progress:
            break

    # One maximal propagation chain ends here (branching or solved).
    if chain_hist is not None and unit_chain:
        chain_hist.observe(unit_chain)

    if not clauses:
        return dict(assignment)

    # Branch by the Jeroslow–Wang heuristic: pick the literal with the
    # largest Σ 2^{-|c|} over clauses containing it — favors literals
    # that satisfy many short clauses at once.
    scores: dict[Literal, float] = {}
    for clause in clauses:
        weight = 2.0 ** -len(clause)
        for lit in clause:
            scores[lit] = scores.get(lit, 0.0) + weight
    branch_lit = max(scores, key=scores.__getitem__)
    for lit in (branch_lit, -branch_lit):
        stats.decisions += 1
        charge(counter)
        trial_clauses = [set(c) for c in clauses]
        trial_assignment = dict(assignment)
        if _assign(trial_clauses, trial_assignment, lit):
            stats.conflicts += 1
            continue
        result = _dpll(trial_clauses, trial_assignment, counter, use_up, use_pure, stats, chain_hist)
        if result is not None:
            return result
    return None


def _assign(clauses: list[set[Literal]], assignment: dict[int, bool], lit: Literal) -> bool:
    """Set ``lit`` true, simplifying ``clauses`` in place.

    Returns True on conflict (an empty clause was produced).
    """
    assignment[abs(lit)] = lit > 0
    for clause in list(clauses):
        if lit in clause:
            clauses.remove(clause)
        elif -lit in clause:
            clause.discard(-lit)
            if not clause:
                return True
    return False
