"""Schaefer's dichotomy (§4, [59]).

For a finite set R of Boolean relations, CSP(R) is polynomial-time
solvable iff every relation in R falls into one common tractable class:

* 0-valid — the all-zero tuple satisfies it;
* 1-valid — the all-one tuple satisfies it;
* Horn — closed under componentwise AND;
* dual-Horn — closed under componentwise OR;
* bijunctive — closed under componentwise majority;
* affine — closed under x ⊕ y ⊕ z.

Otherwise CSP(R) is NP-hard. The closure tests below are the standard
polymorphism checks; :func:`classify_relation_set` returns the verdict
plus every class that witnessed tractability.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import product
from collections.abc import Iterable

from ..errors import InvalidInstanceError


class SchaeferClass(Enum):
    """The six tractable classes of Schaefer's theorem."""

    ZERO_VALID = "0-valid"
    ONE_VALID = "1-valid"
    HORN = "horn"
    DUAL_HORN = "dual-horn"
    BIJUNCTIVE = "bijunctive"
    AFFINE = "affine"


class BooleanRelation:
    """A Boolean relation: a set of 0/1 tuples of a fixed arity.

    Examples
    --------
    >>> r = BooleanRelation.from_clause([1, -2])  # x1 ∨ ¬x2
    >>> sorted(r.tuples)
    [(0, 0), (1, 0), (1, 1)]
    """

    def __init__(self, arity: int, tuples: Iterable[tuple[int, ...]]) -> None:
        if arity < 1:
            raise InvalidInstanceError(f"arity must be >= 1, got {arity}")
        self.arity = arity
        self.tuples = frozenset(tuple(t) for t in tuples)
        for t in self.tuples:
            if len(t) != arity or any(x not in (0, 1) for x in t):
                raise InvalidInstanceError(f"bad tuple {t!r} for arity {arity}")

    @classmethod
    def from_clause(cls, literals: list[int]) -> "BooleanRelation":
        """The relation of a single clause over |literals| positions.

        Position ``i`` carries literal ``literals[i]``; the relation is
        all assignments making the clause true.
        """
        arity = len(literals)
        tuples = [
            assignment
            for assignment in product((0, 1), repeat=arity)
            if any(
                (assignment[i] == 1) == (lit > 0)
                for i, lit in enumerate(literals)
            )
        ]
        return cls(arity, tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanRelation):
            return NotImplemented
        return self.arity == other.arity and self.tuples == other.tuples

    def __hash__(self) -> int:
        return hash((self.arity, self.tuples))

    def __repr__(self) -> str:
        return f"BooleanRelation(arity={self.arity}, |tuples|={len(self.tuples)})"


def is_zero_valid(relation: BooleanRelation) -> bool:
    """All-zero tuple is in the relation."""
    return (0,) * relation.arity in relation.tuples


def is_one_valid(relation: BooleanRelation) -> bool:
    """All-one tuple is in the relation."""
    return (1,) * relation.arity in relation.tuples


def is_horn_relation(relation: BooleanRelation) -> bool:
    """Closed under componentwise AND (min)."""
    return all(
        tuple(a & b for a, b in zip(s, t)) in relation.tuples
        for s in relation.tuples
        for t in relation.tuples
    )


def is_dual_horn_relation(relation: BooleanRelation) -> bool:
    """Closed under componentwise OR (max)."""
    return all(
        tuple(a | b for a, b in zip(s, t)) in relation.tuples
        for s in relation.tuples
        for t in relation.tuples
    )


def is_bijunctive_relation(relation: BooleanRelation) -> bool:
    """Closed under the ternary majority operation."""
    return all(
        tuple((a & b) | (a & c) | (b & c) for a, b, c in zip(s, t, u)) in relation.tuples
        for s in relation.tuples
        for t in relation.tuples
        for u in relation.tuples
    )


def is_affine_relation(relation: BooleanRelation) -> bool:
    """Closed under ternary XOR x ⊕ y ⊕ z."""
    return all(
        tuple(a ^ b ^ c for a, b, c in zip(s, t, u)) in relation.tuples
        for s in relation.tuples
        for t in relation.tuples
        for u in relation.tuples
    )


_CLASS_TESTS = {
    SchaeferClass.ZERO_VALID: is_zero_valid,
    SchaeferClass.ONE_VALID: is_one_valid,
    SchaeferClass.HORN: is_horn_relation,
    SchaeferClass.DUAL_HORN: is_dual_horn_relation,
    SchaeferClass.BIJUNCTIVE: is_bijunctive_relation,
    SchaeferClass.AFFINE: is_affine_relation,
}


@dataclass(frozen=True)
class SchaeferVerdict:
    """Outcome of classifying a relation set.

    ``tractable`` is True iff some single class contains *every*
    relation; ``witnesses`` lists all such classes (empty when NP-hard).
    """

    tractable: bool
    witnesses: tuple[SchaeferClass, ...]

    @property
    def np_hard(self) -> bool:
        return not self.tractable


def classify_relation_set(relations: Iterable[BooleanRelation]) -> SchaeferVerdict:
    """Apply Schaefer's criterion to a set of Boolean relations.

    An empty set is vacuously tractable with every class as witness.
    """
    materialized = list(relations)
    witnesses = tuple(
        cls
        for cls, test in _CLASS_TESTS.items()
        if all(test(rel) for rel in materialized)
    )
    return SchaeferVerdict(tractable=bool(witnesses), witnesses=witnesses)
