"""CNF formulas.

Variables are positive integers; a literal is a nonzero integer whose
sign is its polarity (DIMACS convention). A clause is a frozenset of
literals; a formula is a list of clauses plus the declared variable
count, so that unused variables still count toward ``n`` — the paper's
hypotheses are stated in terms of the *number of variables*, used
verbatim by the experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import InvalidInstanceError

Literal = int
Clause = frozenset[Literal]


class CNF:
    """A CNF formula over variables ``1..num_variables``.

    Examples
    --------
    >>> f = CNF.from_clauses([[1, -3, 5], [-1, 2, 3], [-2, 3, 4]])
    >>> f.num_variables, f.num_clauses
    (5, 3)
    """

    def __init__(self, num_variables: int, clauses: Iterable[Iterable[Literal]] = ()) -> None:
        if num_variables < 0:
            raise InvalidInstanceError(f"variable count must be >= 0, got {num_variables}")
        self.num_variables = num_variables
        self.clauses: list[Clause] = []
        for clause in clauses:
            self.add_clause(clause)

    @classmethod
    def from_clauses(cls, clauses: Iterable[Iterable[Literal]]) -> "CNF":
        """Build a CNF inferring ``num_variables`` as the max |literal|."""
        materialized = [list(c) for c in clauses]
        top = max((abs(l) for c in materialized for l in c), default=0)
        return cls(top, materialized)

    def add_clause(self, clause: Iterable[Literal]) -> None:
        lits = frozenset(clause)
        if not lits:
            raise InvalidInstanceError("empty clause makes the formula trivially false")
        for lit in lits:
            if lit == 0:
                raise InvalidInstanceError("0 is not a literal")
            if abs(lit) > self.num_variables:
                raise InvalidInstanceError(
                    f"literal {lit} exceeds declared variable count {self.num_variables}"
                )
        self.clauses.append(lits)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def max_clause_width(self) -> int:
        return max((len(c) for c in self.clauses), default=0)

    def variables(self) -> set[int]:
        """Variables actually occurring in some clause."""
        return {abs(lit) for clause in self.clauses for lit in clause}

    def is_k_sat(self, k: int) -> bool:
        """True if every clause has at most k literals."""
        return self.max_clause_width <= k

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a (total, for occurring variables) assignment.

        Raises
        ------
        InvalidInstanceError
            If a clause mentions an unassigned variable.
        """
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    raise InvalidInstanceError(f"variable {var} unassigned")
                if assignment[var] == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def simplified(self, assignment: Mapping[int, bool]) -> "CNF | None":
        """Apply a partial assignment: drop satisfied clauses, shrink
        others. Returns ``None`` if some clause became empty (conflict).
        """
        new_clauses: list[list[Literal]] = []
        for clause in self.clauses:
            kept: list[Literal] = []
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    kept.append(lit)
            if satisfied:
                continue
            if not kept:
                return None
            new_clauses.append(kept)
        return CNF(self.num_variables, new_clauses)

    def __repr__(self) -> str:
        return f"CNF(n={self.num_variables}, m={self.num_clauses}, width={self.max_clause_width})"
