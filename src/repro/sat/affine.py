"""Affine satisfiability: XOR systems over GF(2).

Affine relations (solution sets of linear systems mod 2) are Schaefer's
third nontrivial tractable class; Gaussian elimination solves them in
polynomial time.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidInstanceError


def solve_affine_system(
    equations: Sequence[tuple[Sequence[int], int]], num_variables: int
) -> dict[int, bool] | None:
    """Solve XOR equations ``x_{i1} ⊕ ... ⊕ x_{ik} = b`` over GF(2).

    Parameters
    ----------
    equations:
        Each equation is ``(variables, rhs)`` with variables numbered
        from 1 and rhs in {0, 1}.
    num_variables:
        Total variable count; free variables are set to False.

    Returns
    -------
    A model dict or ``None`` if the system is inconsistent.

    Complexity: O(m · n²) — Gaussian elimination over GF(2); Schaefer's
        tractable AFFINE class.
    """
    if num_variables < 0:
        raise InvalidInstanceError("variable count must be nonnegative")
    rows = len(equations)
    matrix = np.zeros((rows, num_variables + 1), dtype=np.uint8)
    for r, (variables, rhs) in enumerate(equations):
        if rhs not in (0, 1):
            raise InvalidInstanceError(f"rhs must be 0/1, got {rhs}")
        for var in variables:
            if not 1 <= var <= num_variables:
                raise InvalidInstanceError(f"variable {var} out of range 1..{num_variables}")
            matrix[r, var - 1] ^= 1
        matrix[r, num_variables] = rhs

    # Gauss-Jordan over GF(2).
    pivot_row = 0
    pivot_cols: list[int] = []
    for col in range(num_variables):
        hit = next((r for r in range(pivot_row, rows) if matrix[r, col]), None)
        if hit is None:
            continue
        matrix[[pivot_row, hit]] = matrix[[hit, pivot_row]]
        for r in range(rows):
            if r != pivot_row and matrix[r, col]:
                matrix[r] ^= matrix[pivot_row]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break

    # Inconsistency: a zero row with rhs 1.
    for r in range(pivot_row, rows):
        if matrix[r, num_variables] and not matrix[r, :num_variables].any():
            return None

    assignment = {var: False for var in range(1, num_variables + 1)}
    for r, col in enumerate(pivot_cols):
        assignment[col + 1] = bool(matrix[r, num_variables])
    return assignment
