"""DIMACS CNF reading and writing.

The standard interchange format for SAT instances, so formulas can move
between this library and external solvers/benchmarks. Supports the
usual liberal dialect: comment lines (``c ...``), the problem line
(``p cnf <vars> <clauses>``), clauses terminated by ``0`` possibly
spanning or sharing lines.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import InvalidInstanceError
from .cnf import CNF


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Raises
    ------
    InvalidInstanceError
        On missing/duplicate problem lines, literals out of range, or a
        clause count mismatch.
    """
    num_variables: int | None = None
    declared_clauses: int | None = None
    clauses: list[list[int]] = []
    current: list[int] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if num_variables is not None:
                raise InvalidInstanceError(f"line {line_number}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise InvalidInstanceError(
                    f"line {line_number}: malformed problem line {line!r}"
                )
            try:
                num_variables = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise InvalidInstanceError(
                    f"line {line_number}: non-numeric problem line {line!r}"
                ) from exc
            continue
        if num_variables is None:
            raise InvalidInstanceError(
                f"line {line_number}: clause before problem line"
            )
        for token in line.split():
            try:
                literal = int(token)
            except ValueError as exc:
                raise InvalidInstanceError(
                    f"line {line_number}: bad token {token!r}"
                ) from exc
            if literal == 0:
                if current:
                    clauses.append(current)
                    current = []
            else:
                current.append(literal)
    if current:
        # Tolerate a missing trailing 0 on the final clause.
        clauses.append(current)
    if num_variables is None:
        raise InvalidInstanceError("no problem line found")
    if declared_clauses is not None and len(clauses) != declared_clauses:
        raise InvalidInstanceError(
            f"problem line declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return CNF(num_variables, clauses)


def write_dimacs(formula: CNF, comments: Iterable[str] = ()) -> str:
    """Serialize a :class:`CNF` as DIMACS text (with trailing newline)."""
    lines = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {formula.num_variables} {formula.num_clauses}")
    for clause in formula.clauses:
        ordered = sorted(clause, key=lambda lit: (abs(lit), lit < 0))
        lines.append(" ".join(str(lit) for lit in ordered) + " 0")
    return "\n".join(lines) + "\n"
