"""2SAT in linear time via implication-graph SCCs (§4).

The paper notes that restricting CSP to |D| = 2 *and* binary constraints
yields polynomial-time 2SAT — one side of Schaefer's dichotomy. The
classical algorithm: each clause (a ∨ b) contributes implications
¬a → b and ¬b → a; the formula is satisfiable iff no variable shares a
strongly connected component with its negation, and Tarjan's reverse
topological order reads off a model.
"""

from __future__ import annotations

from ..errors import InvalidInstanceError
from ..graphs.graph import DiGraph
from .cnf import CNF


def solve_2sat(formula: CNF) -> dict[int, bool] | None:
    """Solve a 2-CNF formula; returns a model or ``None``.

    Raises
    ------
    InvalidInstanceError
        If some clause has more than two literals.

    Complexity: O(n + m) — implication-graph SCCs
        (Aspvall–Plass–Tarjan); Schaefer's tractable 2-SAT class.
    """
    if not formula.is_k_sat(2):
        raise InvalidInstanceError(
            f"solve_2sat needs clause width <= 2, got {formula.max_clause_width}"
        )

    graph = DiGraph()
    for var in range(1, formula.num_variables + 1):
        graph.add_vertex(var)
        graph.add_vertex(-var)
    for clause in formula.clauses:
        lits = list(clause)
        if len(lits) == 1:
            a = lits[0]
            graph.add_edge(-a, a)
        else:
            a, b = lits
            graph.add_edge(-a, b)
            graph.add_edge(-b, a)

    components = graph.strongly_connected_components()
    component_of: dict[int, int] = {}
    for idx, comp in enumerate(components):
        for lit in comp:
            component_of[lit] = idx

    assignment: dict[int, bool] = {}
    for var in range(1, formula.num_variables + 1):
        pos, neg = component_of[var], component_of[-var]
        if pos == neg:
            return None
        # Tarjan emits SCCs in reverse topological order, so a *larger*
        # component index means earlier in topological order; a literal
        # is true iff its SCC comes after its negation's.
        assignment[var] = pos < neg
    return assignment
