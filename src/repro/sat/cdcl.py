"""Conflict-driven clause learning (CDCL) satisfiability solver.

The modern successor of DPLL and the solver family the SETH (§7) is
about: Hypothesis 3 asserts that even this machinery cannot reach
(2−ε)^n on general CNF. Implements the standard architecture:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning;
* non-chronological backjumping;
* VSIDS-style activity-ordered decisions with phase saving;
* geometric restarts.

Non-chronological backjumping is what lets reduction-built instances
(e.g. the 3-coloring gadget encodings) solve quickly: a conflict deep
inside one gadget learns a clause over the literal-level choices and
jumps straight back to them, instead of re-enumerating unrelated
gadget assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..counting import CostCounter, charge
from .cnf import CNF, Literal

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: Restart schedule: first restart after this many conflicts, growing
#: geometrically.
_RESTART_BASE = 100
_RESTART_FACTOR = 1.5
#: VSIDS decay applied after each conflict.
_ACTIVITY_DECAY = 0.95


@dataclass
class CDCLStats:
    """Work counters for one :func:`solve_cdcl` run."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_backjump: int = 0


class _Solver:
    def __init__(self, formula: CNF, counter: CostCounter | None, stats: CDCLStats):
        self.num_vars = formula.num_variables
        self.counter = counter
        self.stats = stats
        # Clause store: lists of literals; index 0/1 are the watched ones.
        self.clauses: list[list[Literal]] = []
        # watches[lit] = clause indices watching lit.
        self.watches: dict[Literal, list[int]] = {}
        for v in range(1, self.num_vars + 1):
            self.watches[v] = []
            self.watches[-v] = []
        self.assign: list[int] = [_UNASSIGNED] * (self.num_vars + 1)
        self.level: list[int] = [0] * (self.num_vars + 1)
        self.reason: list[int | None] = [None] * (self.num_vars + 1)
        self.trail: list[Literal] = []
        self.trail_lim: list[int] = []  # trail length at each decision
        self.propagate_head = 0
        self.activity: list[float] = [0.0] * (self.num_vars + 1)
        self.activity_inc = 1.0
        self.phase: list[int] = [_FALSE] * (self.num_vars + 1)
        self.pending_units: list[Literal] = []
        self.conflict_clause: list[Literal] | None = None
        self.unsat = False

        for clause in formula.clauses:
            self._add_clause(sorted(clause, key=abs))

    # -- clause management --------------------------------------------

    def _add_clause(self, lits: list[Literal]) -> int | None:
        """Register a clause; returns its index (None for units)."""
        if len(lits) == 1:
            self.pending_units.append(lits[0])
            return None
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.watches[lits[0]].append(idx)
        self.watches[lits[1]].append(idx)
        return idx

    # -- assignment / trail --------------------------------------------

    def _value(self, lit: Literal) -> int:
        v = self.assign[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else -v

    def _enqueue(self, lit: Literal, reason: int | None) -> bool:
        """Assign lit true; False if it contradicts the current value."""
        current = self._value(lit)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        var = abs(lit)
        self.assign[var] = _TRUE if lit > 0 else _FALSE
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        self.stats.propagations += 1
        charge(self.counter)
        return True

    def _propagate(self) -> int | None:
        """Watched-literal BCP; returns a conflicting clause index or None."""
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            falsified = -lit
            watchers = self.watches[falsified]
            i = 0
            while i < len(watchers):
                idx = watchers[i]
                clause = self.clauses[idx]
                # Normalize: watched falsified literal at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == _TRUE:
                    i += 1
                    continue
                # Find a new watch among the tail.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != _FALSE:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1]].append(idx)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting on clause[0].
                if not self._enqueue(clause[0], idx):
                    return idx
                i += 1
        return None

    # -- decisions ------------------------------------------------------

    def _decide(self) -> bool:
        """Pick the highest-activity unassigned variable; False if none."""
        best, best_score = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == _UNASSIGNED and self.activity[v] > best_score:
                best, best_score = v, self.activity[v]
        if best == 0:
            return False
        self.stats.decisions += 1
        charge(self.counter)
        self.trail_lim.append(len(self.trail))
        lit = best if self.phase[best] == _TRUE else -best
        assert self._enqueue(lit, None)
        return True

    def _bump(self, var: int) -> None:
        self.activity[var] += self.activity_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.activity_inc *= 1e-100

    # -- conflict analysis -----------------------------------------------

    def _analyze(self, conflict_idx: int) -> tuple[list[Literal], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        current_level = len(self.trail_lim)
        seen = [False] * (self.num_vars + 1)
        learned: list[Literal] = []
        counter = 0
        lits = list(self.clauses[conflict_idx])
        trail_pos = len(self.trail) - 1
        uip: Literal | None = None

        while True:
            for lit in lits:
                var = abs(lit)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Walk the trail backwards to the next seen literal.
            while not seen[abs(self.trail[trail_pos])]:
                trail_pos -= 1
            uip_lit = self.trail[trail_pos]
            var = abs(uip_lit)
            counter -= 1
            seen[var] = False
            trail_pos -= 1
            if counter == 0:
                uip = -uip_lit
                break
            reason_idx = self.reason[var]
            assert reason_idx is not None
            lits = [l for l in self.clauses[reason_idx] if abs(l) != var]

        # Order the tail by decreasing level so the second watch sits at
        # the backjump level (the two-watched-literal invariant).
        learned.sort(key=lambda l: self.level[abs(l)], reverse=True)
        learned = [uip] + learned
        if len(learned) == 1:
            return learned, 0
        backjump = self.level[abs(learned[1])]
        return learned, backjump

    def _backjump(self, target_level: int) -> None:
        if target_level >= len(self.trail_lim):
            return
        cutoff = self.trail_lim[target_level]
        for lit in self.trail[cutoff:]:
            var = abs(lit)
            self.phase[var] = self.assign[var]
            self.assign[var] = _UNASSIGNED
            self.reason[var] = None
        del self.trail[cutoff:]
        del self.trail_lim[target_level:]
        self.propagate_head = len(self.trail)

    # -- main loop --------------------------------------------------------

    def solve(self) -> dict[int, bool] | None:
        # Top-level units from the input formula.
        for lit in self.pending_units:
            if not self._enqueue(lit, None):
                return None
        self.pending_units = []

        conflicts_until_restart = _RESTART_BASE
        conflict_count_window = 0

        while True:
            conflict_idx = self._propagate()
            if conflict_idx is not None:
                self.stats.conflicts += 1
                conflict_count_window += 1
                if not self.trail_lim:
                    return None  # conflict at level 0: UNSAT
                learned, backjump_level = self._analyze(conflict_idx)
                self.stats.max_backjump = max(
                    self.stats.max_backjump, len(self.trail_lim) - backjump_level
                )
                self._backjump(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return None
                else:
                    idx = self._add_clause(learned)
                    self.stats.learned_clauses += 1
                    assert idx is not None
                    if not self._enqueue(learned[0], idx):
                        return None
                self.activity_inc /= _ACTIVITY_DECAY
                if conflict_count_window >= conflicts_until_restart:
                    self.stats.restarts += 1
                    conflict_count_window = 0
                    conflicts_until_restart = int(
                        conflicts_until_restart * _RESTART_FACTOR
                    )
                    self._backjump(0)
                continue

            if not self._decide():
                return {
                    v: self.assign[v] == _TRUE
                    for v in range(1, self.num_vars + 1)
                }


def solve_cdcl(
    formula: CNF,
    counter: CostCounter | None = None,
    stats: CDCLStats | None = None,
) -> dict[int, bool] | None:
    """Solve ``formula`` with CDCL; returns a total model or ``None``.

    Unconstrained variables default to False (the initial phase).

    Complexity: O(2^n) worst case — clause learning does not escape
        exponential time (SETH says no 2^{(1−ε)n} algorithm exists);
        polynomial on many structured families.
    """
    stats = stats if stats is not None else CDCLStats()
    if formula.num_variables == 0:
        return {}
    solver = _Solver(formula, counter, stats)
    return solver.solve()
