"""#SAT: counting CNF models via the CSP counting DP.

The counting problem the paper mentions for all four domains, on the
SAT side: translate the formula to a CSP (the Corollary 6.1 direction)
and run the treewidth counting DP. Polynomial whenever the formula's
primal (variable-interaction) graph has bounded treewidth; exponential
in the width otherwise, exactly as the theory prescribes.
"""

from __future__ import annotations

from ..counting import CostCounter
from ..csp.treewidth_dp import count_with_treewidth
from .cnf import CNF


def count_models(formula: CNF, counter: CostCounter | None = None) -> int:
    """The number of satisfying assignments over all n variables.

    Variables not occurring in any clause are free and multiply the
    count by 2 each (consistent with :func:`solve_dpll`'s totalization).

    Complexity: O(2^n) worst case via the treewidth counting DP on the
        incidence structure — O(n · 2^{k+1} · m) for primal treewidth
        k.
    """
    if formula.num_variables == 0:
        return 1 if not formula.clauses else 0
    from ..reductions.sat_to_csp import sat_to_csp

    reduction = sat_to_csp(formula)
    return count_with_treewidth(reduction.target, counter=counter)
