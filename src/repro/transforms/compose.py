"""The composition engine: fusing transforms and searching for chains.

``compose_chain([t1, t2, ...])`` builds a single
:class:`~repro.transforms.base.Transform` that applies the stages in
order, fusing the three pieces a chained lower-bound proof needs:

* **certificates** — every stage's certificates, re-namespaced as
  ``"<i>/<stage-name>/<certificate-name>"``, so ``certify()`` on the
  composite re-checks every stage's guarantees at once;
* **back-maps** — a named :class:`ComposedBackMap` that pulls a final-
  target solution back stage by stage (each hop through the certified
  ``pull_back``, so ``None → None`` is preserved end to end);
* **parameter bounds** — the symbolic Definition 5.1.3 bounds
  substituted into one end-to-end bound, re-checked on the concrete
  instance as an extra certificate.

``find_chain(source, target)`` is breadth-first search over the
registry's format graph: shortest chain wins, ties broken by transform
name so the result is deterministic.
"""

from __future__ import annotations

from collections import deque

from ..errors import ReductionError
from .base import Transform
from .certified import Certificate, CertifiedReduction
from .domains import Domain
from .params import compose_bounds
from .registry import register, transforms_from


class ComposedBackMap:
    """Named, renderable composition of per-stage solution pull-backs.

    Holds the per-stage :class:`CertifiedReduction` objects of one
    application and walks them in reverse; each hop goes through
    ``pull_back`` so the ``None → None`` contract is certified at
    every stage, not just at the ends.
    """

    def __init__(self, stages: tuple[CertifiedReduction, ...], name: str) -> None:
        self.stages = tuple(stages)
        self.__name__ = name

    def __call__(self, solution):
        for stage in reversed(self.stages):
            solution = stage.pull_back(solution)
            if solution is None:
                return None
        return solution


def chain_name(transforms: list[Transform] | tuple[Transform, ...]) -> str:
    """The display name of a chain: stages joined by ``»``."""
    return " » ".join(t.name for t in transforms)


def compose_chain(transforms: list[Transform] | tuple[Transform, ...]) -> Transform:
    """Fuse a list of transforms into one, validating adjacency.

    Raises
    ------
    ReductionError
        If the list is empty or some adjacent pair does not line up
        (target domain/format of one ≠ source domain/format of the
        next).
    """
    stages = tuple(transforms)
    if not stages:
        raise ReductionError("cannot compose an empty chain")
    if len(stages) == 1:
        return stages[0]
    for first, second in zip(stages, stages[1:]):
        if first.target != second.source or first.target_tag != second.source_tag:
            raise ReductionError(
                f"cannot compose {first.name!r} ({first.edge_label()}) with "
                f"{second.name!r} ({second.edge_label()}): the formats do not "
                "line up"
            )

    name = chain_name(stages)
    guarantees = tuple(
        f"{index}/{stage.name}/{guarantee}"
        for index, stage in enumerate(stages, start=1)
        for guarantee in stage.guarantees
    )
    end_to_end_bound = compose_bounds([stage.parameter_bound for stage in stages])

    def apply_chain(*args, **kwargs) -> CertifiedReduction:
        # Stage i+1 consumes stage i's target instance.
        applications: list[CertifiedReduction] = [stages[0].apply(*args, **kwargs)]
        for stage in stages[1:]:
            applications.append(
                stage.apply(*stage.stage_args(applications[-1].target))
            )

        fused = [
            # One flat certificate list, namespaced per stage so a
            # failure names the hop that broke.
            certificate
            for index, application in enumerate(applications, start=1)
            for certificate in _namespaced(index, application)
        ]
        reduction = CertifiedReduction(
            name=name,
            source=applications[0].source,
            target=applications[-1].target,
            certificates=fused,
            map_solution_back=ComposedBackMap(
                tuple(applications), name=f"pull_back[{name}]"
            ),
            parameter_source=applications[0].parameter_source,
            parameter_target=applications[-1].parameter_target,
        )
        if (
            end_to_end_bound is not None
            and reduction.parameter_source is not None
            and reduction.parameter_target is not None
        ):
            reduction.certify_le(
                f"composed parameter bound k' <= {end_to_end_bound.expr}",
                reduction.parameter_target,
                end_to_end_bound.fn(reduction.parameter_source),
            )
        return reduction

    return Transform(
        name=name,
        source=stages[0].source,
        target=stages[-1].target,
        guarantees=guarantees,
        apply_fn=apply_chain,
        arity=stages[0].arity,
        parameter_bound=end_to_end_bound,
        witness=stages[0].witness,
        source_format=stages[0].source_format,
        target_format=stages[-1].target_format,
        chainable=all(stage.chainable for stage in stages),
        description=f"composed chain: {name}",
    )


def _namespaced(index: int, application: CertifiedReduction):
    for certificate in application.certificates:
        yield Certificate(
            name=f"{index}/{application.name}/{certificate.name}",
            holds=certificate.holds,
            detail=certificate.detail,
        )


def compose(first: Transform, second: Transform) -> Transform:
    """Fuse two transforms: apply ``first``, then ``second``."""
    return compose_chain([first, second])


def register_composed(transforms: list[Transform]) -> Transform:
    """Compose a chain and add the result to the registry."""
    return register(compose_chain(transforms))


def find_chain(
    source: Domain,
    target: Domain,
    *,
    source_format: str = "",
    target_format: str = "",
) -> list[Transform]:
    """Shortest chain of chainable transforms from source to target.

    Breadth-first search over format tags: the start node is
    ``source_format`` (or the source domain's canonical tag), and any
    transform landing in ``target`` (matching ``target_format`` when
    given) ends the search. Among equal-length chains the
    lexicographically smallest sequence of transform names wins, so
    results are deterministic.

    Raises
    ------
    ReductionError
        If no chain exists in the registry.

    Complexity: O(V + E) BFS over the format graph (V format tags,
        E registered chainable transforms).
    """
    start = source_format or source.key
    seen = {start}
    queue: deque[tuple[str, list[Transform]]] = deque([(start, [])])
    while queue:
        tag, path = queue.popleft()
        for candidate in sorted(transforms_from(tag), key=lambda t: t.name):
            extended = path + [candidate]
            if candidate.target == target and (
                not target_format or candidate.target_tag == target_format
            ):
                return extended
            if candidate.target_tag not in seen:
                seen.add(candidate.target_tag)
                queue.append((candidate.target_tag, extended))
    wanted = target_format or target.key
    raise ReductionError(
        f"no transform chain from {start!r} to {wanted!r} in the registry"
    )
