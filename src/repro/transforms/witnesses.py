"""Small deterministic witness instances for transform validation.

Every registered transform names a witness factory: a zero-argument
callable returning the positional arguments of one concrete, small,
*solvable* instance. The derivation validator replays each transform
(and each composed chain) on its witness and re-checks every
certificate, so a refactor that silently breaks a guarantee fails
``--check-derivations`` rather than a paper claim.

Everything here is built literally — no random generators — so the
witnesses are identical on every machine and never drift.
"""

from __future__ import annotations

from ..csp.instance import Constraint, CSPInstance
from ..graphs.graph import Graph
from ..relational.database import Database
from ..relational.query import Atom, JoinQuery
from ..relational.relation import Relation
from ..sat.cnf import CNF


def small_3sat() -> tuple[CNF]:
    """A satisfiable 3-variable 3SAT formula (e.g. x1=x2=x3=True)."""
    return (CNF(3, [[1, 2, 3], [-1, 2, 3], [1, -2, 3], [1, 2, -3]]),)


def small_cnf() -> tuple[CNF]:
    """A satisfiable 4-variable CNF for the SAT → OV split."""
    return (CNF(4, [[1, 2], [-1, 3], [2, -3, 4], [-2, -4]]),)


def triangle_plus_pendant() -> tuple[Graph, int]:
    """A graph with a 3-clique {a, b, c} plus a pendant vertex; k = 3."""
    graph = Graph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("a", "c")
    graph.add_edge("c", "d")
    return (graph, 3)


def triangle_independent_set() -> tuple[Graph, int]:
    """The triangle-plus-pendant graph with independent set {a, d}; k = 2."""
    graph, __ = triangle_plus_pendant()
    return (graph, 2)


def path_graph_domset() -> tuple[Graph, int]:
    """A 5-path dominated by two vertices; t = 2."""
    graph = Graph()
    for i in range(4):
        graph.add_edge(f"v{i}", f"v{i + 1}")
    return (graph, 2)


def path_graph_domset_grouped() -> tuple[Graph, int, int]:
    """The 5-path witness with both slot variables grouped into one."""
    graph, t = path_graph_domset()
    return (graph, t, 2)


def bmm_tripartite_graph() -> tuple[Graph]:
    """A 3×3 Boolean matrix pair as a tripartite I/K/J graph.

    A has 1-entries (0,0), (0,1), (1,1), (2,2); B has (0,1), (1,0),
    (1,2), (2,2) — so A·B is nonzero at (0,1), (0,0), (0,2), (1,0),
    (1,2), (2,2).
    """
    graph = Graph()
    for i, k in ((0, 0), (0, 1), (1, 1), (2, 2)):
        graph.add_edge(("i", i), ("k", k))
    for k, j in ((0, 1), (1, 0), (1, 2), (2, 2)):
        graph.add_edge(("k", k), ("j", j))
    return (graph,)


def small_binary_csp() -> tuple[CSPInstance]:
    """A satisfiable 3-variable binary CSP over {0, 1, 2}.

    Constraints: x < y, y ≠ z — solvable by e.g. (0, 1, 0).
    """
    domain = (0, 1, 2)
    less = {(a, b) for a in domain for b in domain if a < b}
    noteq = {(a, b) for a in domain for b in domain if a != b}
    instance = CSPInstance(
        ["x", "y", "z"],
        domain,
        [Constraint(("x", "y"), less), Constraint(("y", "z"), noteq)],
    )
    return (instance,)


def small_csp_with_groups() -> tuple[CSPInstance, list[list[str]]]:
    """The binary-CSP witness plus a grouping of two of its variables."""
    (instance,) = small_binary_csp()
    return (instance, [["x", "y"]])


def triangle_query_db() -> tuple[JoinQuery, Database]:
    """The triangle join query over a 3-cycle database; one answer."""
    query = JoinQuery(
        [Atom("R", ("A", "B")), Atom("S", ("B", "C")), Atom("T", ("A", "C"))]
    )
    tuples = [(1, 2), (2, 3), (1, 3)]
    database = Database(
        [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
            Relation("T", ("A", "C"), [(1, 3)]),
        ],
        domain={value for pair in tuples for value in pair},
    )
    return (query, database)
