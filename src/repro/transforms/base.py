"""The typed :class:`Transform` protocol: a reduction as a graph edge.

A transform is a certified reduction *plus its contract*: declared
source/target domains (and finer format tags), the guarantee schema —
the certificate names every application must produce — a symbolic
parameter bound, and a witness-instance factory the derivation
validator replays it on. Applying a transform runs the underlying
construction inside an observability span, bumps the ambient metrics,
and mechanically checks the produced certificates against the declared
schema, so a transform that silently drops a guarantee fails loudly at
the first application rather than in a report much later.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..errors import ReductionError
from ..observability.metrics import SMALL_BUCKETS, inc, observe
from ..observability.tracing import span
from .certified import CertifiedReduction
from .domains import Domain
from .params import ParamBound


@dataclass(frozen=True)
class Transform:
    """One registered instance transformation.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"3sat→csp"`` — referenced by
        :class:`~repro.complexity.bounds.LowerBound` derivations.
    source / target:
        The domains the transform maps between.
    guarantees:
        The certificate names every application must attach — the
        machine-checkable schema of the proof's size/parameter claims.
    apply_fn:
        The underlying construction returning a
        :class:`~repro.transforms.certified.CertifiedReduction`.
    arity:
        How many positional arguments the construction takes; a
        parameterized instance like ``(graph, k)`` has arity 2 and is
        splatted when the transform is applied mid-chain.
    parameter_bound:
        Symbolic Definition 5.1.3 bound ``k' ≤ f(k)``, if the
        transform tracks parameters.
    witness:
        Zero-argument factory returning the positional arguments of a
        small concrete instance — what derivation validation replays.
    source_format / target_format:
        Finer instance-shape tags within the domains (``"clique"``,
        ``"coloring"``, ...); empty means the domain's canonical shape.
    chainable:
        Whether chain search may route through this transform. False
        for transforms needing extra non-instance arguments (e.g.
        variable grouping needs the partition).
    description:
        One line for reports and ``find_chain`` diagnostics.
    """

    name: str
    source: Domain
    target: Domain
    guarantees: tuple[str, ...]
    apply_fn: Callable[..., CertifiedReduction]
    arity: int = 1
    parameter_bound: ParamBound | None = None
    witness: Callable[[], tuple] | None = None
    source_format: str = ""
    target_format: str = ""
    chainable: bool = True
    description: str = ""

    @property
    def source_tag(self) -> str:
        """The format tag chain search matches on at the source end."""
        return self.source_format or self.source.key

    @property
    def target_tag(self) -> str:
        """The format tag chain search matches on at the target end."""
        return self.target_format or self.target.key

    def apply(self, *args, **kwargs) -> CertifiedReduction:
        """Run the construction, instrumented and schema-checked."""
        with span(
            f"transform/{self.name}",
            source=self.source.key,
            target=self.target.key,
        ):
            reduction = self.apply_fn(*args, **kwargs)
        self.check_guarantee_schema(reduction)
        inc("transforms.applied")
        observe("transform.certificates", len(reduction.certificates), SMALL_BUCKETS)
        return reduction

    def __call__(self, *args, **kwargs) -> CertifiedReduction:
        return self.apply(*args, **kwargs)

    def check_guarantee_schema(self, reduction: CertifiedReduction) -> None:
        """Every declared guarantee must appear among the certificates.

        This is the schema half of certification; whether each
        certificate *holds* is ``reduction.certify()``'s job.
        """
        produced = {certificate.name for certificate in reduction.certificates}
        missing = [name for name in self.guarantees if name not in produced]
        if missing:
            raise ReductionError(
                f"transform {self.name!r} declared guarantees it did not "
                f"certify: {missing}; produced {sorted(produced)}"
            )

    def witness_args(self) -> tuple:
        """The witness instance's positional arguments.

        Raises
        ------
        ReductionError
            If the transform registered no witness factory.
        """
        if self.witness is None:
            raise ReductionError(
                f"transform {self.name!r} has no witness-instance factory"
            )
        return self.witness()

    def stage_args(self, value: object) -> tuple:
        """Adapt a previous stage's target into this stage's arguments.

        Arity-1 transforms receive the value as-is; higher arities
        require a matching tuple (e.g. a ``(graph, k)`` pair feeding an
        arity-2 parameterized reduction).
        """
        if self.arity == 1:
            return (value,)
        if isinstance(value, tuple) and len(value) == self.arity:
            return value
        raise ReductionError(
            f"transform {self.name!r} takes {self.arity} arguments but the "
            f"previous stage produced {type(value).__name__}"
        )

    def edge_label(self) -> str:
        """``source-tag → target-tag`` for reports and chain listings."""
        return f"{self.source_tag} → {self.target_tag}"
