"""The transform registry and its registration decorator.

Reduction modules register themselves at import time::

    @transform(
        name="3sat→csp",
        source=SAT,
        target=CSP,
        guarantees=("|V| == n", "|C| == m", ...),
        parameter_bound=IDENTITY_BOUND,
        witness=_witness,
    )
    def sat_to_csp(formula): ...

The decorator returns the *plain function unchanged* — existing call
sites keep working with zero overhead — and attaches the registered
:class:`~repro.transforms.base.Transform` as ``fn.transform``. The
instrumented, schema-checked path is ``get_transform(name).apply(...)``,
which is what the composition engine and derivation validator use.

Lookup functions lazily import the built-in reduction modules so the
registry is populated regardless of which entry point touched it
first; registration itself never triggers loading (no import cycles).
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ReductionError
from .base import Transform
from .domains import Domain
from .params import ParamBound

_REGISTRY: dict[str, Transform] = {}
_LOADED = False


def register(entry: Transform) -> Transform:
    """Add one transform; duplicate names are an error, not an update."""
    if entry.name in _REGISTRY:
        raise ReductionError(f"transform {entry.name!r} registered twice")
    if not entry.guarantees:
        raise ReductionError(
            f"transform {entry.name!r} declares no guarantee schema; "
            "every transform must state the certificates it produces"
        )
    _REGISTRY[entry.name] = entry
    return entry


def transform(
    *,
    name: str,
    source: Domain,
    target: Domain,
    guarantees: tuple[str, ...],
    arity: int = 1,
    parameter_bound: ParamBound | None = None,
    witness: Callable[[], tuple] | None = None,
    source_format: str = "",
    target_format: str = "",
    chainable: bool = True,
) -> Callable:
    """Decorator registering a reduction function as a transform."""

    def decorate(fn: Callable) -> Callable:
        doc = (fn.__doc__ or "").strip().splitlines()
        entry = Transform(
            name=name,
            source=source,
            target=target,
            guarantees=tuple(guarantees),
            apply_fn=fn,
            arity=arity,
            parameter_bound=parameter_bound,
            witness=witness,
            source_format=source_format,
            target_format=target_format,
            chainable=chainable,
            description=doc[0] if doc else "",
        )
        register(entry)
        fn.transform = entry
        return fn

    return decorate


def load_builtin_transforms() -> None:
    """Import every module that registers built-in transforms.

    Idempotent; called lazily by the lookup functions so that e.g.
    ``python -m repro.complexity --check-derivations`` sees the full
    registry without importing the world at interpreter start.
    """
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from .. import reductions  # noqa: F401  (registration side effect)
    from ..finegrained import sat_to_ov  # noqa: F401  (registration side effect)


def get_transform(name: str) -> Transform:
    """Look up one transform by name."""
    load_builtin_transforms()
    if name not in _REGISTRY:
        raise ReductionError(
            f"unknown transform {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def has_transform(name: str) -> bool:
    """True if ``name`` is registered."""
    load_builtin_transforms()
    return name in _REGISTRY


def all_transforms() -> list[Transform]:
    """Every registered transform, sorted by name."""
    load_builtin_transforms()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def transforms_from(tag: str) -> list[Transform]:
    """Chainable transforms departing from format tag ``tag``."""
    return [t for t in all_transforms() if t.chainable and t.source_tag == tag]
