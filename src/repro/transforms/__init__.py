"""Composable certified transforms — the reduction graph as a system.

The paper's central move is *chaining* reductions: SAT → CSP → Clique →
conjunctive query, each hop preserving parameters within stated bounds,
so one hypothesis rules out running times for a whole family of
problems (§5–§7). This package is that chain as infrastructure:

* :mod:`~repro.transforms.domains` — the instance languages (SAT, CSP,
  Graph, Structure, Query, Vectors) transforms hop between;
* :mod:`~repro.transforms.certified` — the
  :class:`~repro.transforms.certified.CertifiedReduction` bookkeeping
  (canonical home; ``repro.reductions.base`` is a shim);
* :mod:`~repro.transforms.params` — symbolic Definition 5.1.3
  parameter bounds that compose by substitution;
* :mod:`~repro.transforms.base` — the typed
  :class:`~repro.transforms.base.Transform` protocol: declared
  domains, guarantee schema, witness factory, instrumentation;
* :mod:`~repro.transforms.registry` — the decorator-based registry the
  reduction modules populate at import;
* :mod:`~repro.transforms.compose` — ``compose``/``compose_chain``
  fusing certificates, back-maps, and parameter bounds, plus
  ``find_chain`` path search over the registry.

:mod:`repro.complexity` consumes this registry: every
:class:`~repro.complexity.bounds.LowerBound` carries a derivation that
is either an explicit transform chain validated here or a declared
axiom (paper-stated, no in-repo reduction).
"""

from .base import Transform
from .certified import Certificate, CertifiedReduction, identity_solution
from .compose import (
    ComposedBackMap,
    chain_name,
    compose,
    compose_chain,
    find_chain,
    register_composed,
)
from .domains import (
    CSP,
    GRAPH,
    QUERY,
    SAT,
    STRUCTURE,
    VECTORS,
    Domain,
    all_domains,
    get_domain,
)
from .params import IDENTITY_BOUND, ParamBound, compose_bounds, make_bound
from .registry import (
    all_transforms,
    get_transform,
    has_transform,
    load_builtin_transforms,
    register,
    transform,
    transforms_from,
)

__all__ = [
    "CSP",
    "Certificate",
    "CertifiedReduction",
    "ComposedBackMap",
    "Domain",
    "GRAPH",
    "IDENTITY_BOUND",
    "ParamBound",
    "QUERY",
    "SAT",
    "STRUCTURE",
    "Transform",
    "VECTORS",
    "all_domains",
    "all_transforms",
    "chain_name",
    "compose",
    "compose_bounds",
    "compose_chain",
    "find_chain",
    "get_domain",
    "get_transform",
    "has_transform",
    "identity_solution",
    "load_builtin_transforms",
    "make_bound",
    "register",
    "register_composed",
    "transform",
    "transforms_from",
]
