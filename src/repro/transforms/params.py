"""Symbolic parameter bounds: Definition 5.1's condition (3) as data.

A parameterized reduction may blow the parameter up, but only by a
computable function of the old parameter — ``k' ≤ f(k)``. A
:class:`ParamBound` carries both faces of ``f``: the human-readable
expression (in the letter ``k``) that reports render, and the callable
the validator evaluates on concrete instances. Composition substitutes
one expression into the other, so a chain's end-to-end bound is
derived mechanically rather than re-stated by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..errors import ReductionError


@dataclass(frozen=True)
class ParamBound:
    """One computable parameter bound ``k' ≤ f(k)``.

    Attributes
    ----------
    expr:
        Rendering of ``f`` in the variable ``k``, e.g. ``"k + 2^k"``.
    fn:
        The callable evaluating ``f`` on a concrete parameter value.
    """

    expr: str
    fn: Callable[[int], int]

    def __call__(self, parameter: int) -> int:
        return self.fn(parameter)

    def then(self, outer: "ParamBound") -> "ParamBound":
        """The bound of this step followed by ``outer``: ``f_out ∘ f_in``.

        The composed expression substitutes this bound's expression
        for ``k`` inside the outer one, so ``k ↦ 2k`` then
        ``k ↦ k + 2^k`` renders as ``(2·k) + 2^(2·k)``.
        """
        inner = self

        def composed(parameter: int) -> int:
            return outer.fn(inner.fn(parameter))

        substituted = outer.expr.replace("k", f"({inner.expr})")
        return ParamBound(expr=substituted, fn=composed)

    def holds_on(self, parameter_source: int, parameter_target: int) -> bool:
        """Does ``parameter_target ≤ f(parameter_source)``?"""
        return parameter_target <= self.fn(parameter_source)


def _identity(parameter: int) -> int:
    return parameter


#: The common case: the parameter is preserved exactly (``k' = k``).
IDENTITY_BOUND = ParamBound(expr="k", fn=_identity)


def make_bound(expr: str, fn: Callable[[int], int]) -> ParamBound:
    """A named parameter bound; ``expr`` must mention ``k``."""
    if "k" not in expr:
        raise ReductionError(
            f"parameter bound expression {expr!r} does not mention 'k'"
        )
    return ParamBound(expr=expr, fn=fn)


def compose_bounds(bounds: "list[ParamBound | None]") -> ParamBound | None:
    """Fold per-stage bounds into one end-to-end bound.

    ``None`` anywhere means some stage does not track parameters, so
    the composition is unknown — also ``None``.
    """
    composed: ParamBound | None = None
    for bound in bounds:
        if bound is None:
            return None
        composed = bound if composed is None else composed.then(bound)
    return composed
