"""The certified-reduction framework — canonical home.

A conditional lower bound *is* a reduction plus bookkeeping: the
transformed instance must be equivalent to the source, and its size and
parameters must obey the bounds the proof claims (Definition 5.1's
three conditions, or a polynomial-size bound for NP-hardness). This
module packages both parts so the test suite — and the complexity
report — can check the claims mechanically on concrete instances.

Historically this lived at :mod:`repro.reductions.base`, which remains
a compatibility shim; new code should import from here or from
:mod:`repro.transforms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from ..errors import ReductionError


def identity_solution(solution):
    """The default back-mapping: target solutions are source solutions.

    A named function (not a bare lambda) so run records and derivation
    reports can render which mapping a reduction uses.
    """
    return solution


@dataclass(frozen=True)
class Certificate:
    """One checkable guarantee of a reduction.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"variables == k + 2^k"``.
    holds:
        Whether the guarantee held on this concrete instance.
    detail:
        The measured quantities, for diagnostics.
    """

    name: str
    holds: bool
    detail: str = ""


@dataclass
class CertifiedReduction:
    """The output of applying a reduction to one instance.

    Attributes
    ----------
    name:
        The reduction's identifier, e.g. ``"clique→special-csp"``.
    source:
        The original instance (any type).
    target:
        The transformed instance.
    certificates:
        Guarantees measured during construction.
    map_solution_back:
        Translates a target solution into a source solution. The
        ``None → None`` contract (no-instance preservation) is *not*
        the mapping's job: :meth:`pull_back` certifies it in this one
        shared place, so back-maps never see ``None``.
    parameter_source / parameter_target:
        Parameter values before/after, for parameterized reductions
        (Definition 5.1 condition 3).
    """

    name: str
    source: object
    target: object
    certificates: list[Certificate] = field(default_factory=list)
    map_solution_back: Callable = identity_solution
    parameter_source: int | None = None
    parameter_target: int | None = None

    def certify(self) -> None:
        """Raise :class:`ReductionError` if any certificate failed."""
        failed = [c for c in self.certificates if not c.holds]
        if failed:
            lines = "; ".join(f"{c.name} ({c.detail})" for c in failed)
            raise ReductionError(f"reduction {self.name!r} broke guarantees: {lines}")

    def certificate(self, name: str) -> Certificate:
        for c in self.certificates:
            if c.name == name:
                return c
        raise ReductionError(f"reduction {self.name!r} has no certificate {name!r}")

    def add_certificate(self, name: str, holds: bool, detail: str = "") -> None:
        self.certificates.append(Certificate(name, holds, detail))

    # -- shared certificate-building helpers ---------------------------------
    # Reduction modules used to hand-roll the same ``x == y`` /
    # ``x <= y`` bookkeeping with per-module detail strings; these
    # helpers are the one place that arithmetic and formatting live.

    def certify_eq(self, name: str, actual, expected) -> None:
        """Certificate asserting ``actual == expected``, recording both."""
        self.add_certificate(name, actual == expected, f"{actual} vs {expected}")

    def certify_le(self, name: str, actual, bound) -> None:
        """Certificate asserting ``actual <= bound``, recording both."""
        self.add_certificate(name, actual <= bound, f"{actual} vs {bound}")

    def certify_that(self, name: str, holds: bool, detail: str = "") -> None:
        """Certificate for a predicate measured by the caller."""
        self.add_certificate(name, bool(holds), detail)

    @property
    def back_map_name(self) -> str:
        """Renderable name of the solution back-mapping."""
        return getattr(
            self.map_solution_back, "__name__", type(self.map_solution_back).__name__
        )

    def pull_back(self, target_solution):
        """Map a target solution back; ``None`` stays ``None``.

        This is the single certified site of the ``None → None``
        contract: every back-mapping in the library is invoked through
        here, so no individual reduction needs to restate it.
        """
        if target_solution is None:
            return None
        return self.map_solution_back(target_solution)
