"""Problem domains: the vertices of the transform graph.

The paper's reduction chains hop between a handful of instance
languages — SAT formulas, CSP instances, graphs, relational
structures, join queries (§2), and the fine-grained vector problems of
§7. A :class:`Domain` tags each hop's endpoints so composition can be
checked mechanically: ``compose(t1, t2)`` demands that ``t1`` lands
where ``t2`` departs.

A domain is deliberately coarse — "some graph problem" — because the
paper treats e.g. Clique, Independent Set, and 3-Coloring as one
territory reached by different roads. The finer notion is the *format*
tag on each :class:`~repro.transforms.base.Transform` (``"clique"``,
``"coloring"``, ...), which names the concrete instance shape within
the domain; formats are what chain search actually matches on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class Domain:
    """One instance language the transform graph can visit.

    Attributes
    ----------
    key:
        Stable identifier, e.g. ``"csp"``. Also the *canonical format*
        tag for transforms that do not declare a finer one.
    description:
        What an instance of this domain looks like.
    """

    key: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key


SAT = Domain("sat", "a CNF formula (repro.sat.cnf.CNF)")
CSP = Domain("csp", "a CSP instance (repro.csp.instance.CSPInstance)")
GRAPH = Domain(
    "graph",
    "a graph problem instance: a Graph, a parameterized (Graph, k) "
    "pair, a ColoringInstance, or a (pattern, host, partition) triple",
)
STRUCTURE = Domain(
    "structure", "a homomorphism instance: a pair (A, B) of Structures"
)
QUERY = Domain("query", "a join-query instance: a (JoinQuery, Database) pair")
VECTORS = Domain(
    "vectors", "a fine-grained vector instance (e.g. Orthogonal Vectors)"
)

_DOMAINS: dict[str, Domain] = {
    d.key: d for d in (SAT, CSP, GRAPH, STRUCTURE, QUERY, VECTORS)
}


def all_domains() -> list[Domain]:
    """Every known domain, in registration order."""
    return list(_DOMAINS.values())


def get_domain(key: str) -> Domain:
    """Look up one domain by key."""
    if key not in _DOMAINS:
        raise InvalidInstanceError(
            f"unknown domain {key!r}; known: {sorted(_DOMAINS)}"
        )
    return _DOMAINS[key]
