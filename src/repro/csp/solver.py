"""Solver front-end: pick a strategy by instance structure.

``solve(instance)`` chooses Freuder's DP when the min-fill heuristic
finds small primal treewidth (the Theorem 4.2 regime) and falls back to
backtracking otherwise; explicit methods are available for experiments.
"""

from __future__ import annotations

from ..counting import CostCounter
from ..errors import SolverError
from ..treewidth.heuristics import treewidth_min_fill
from .backtracking import solve_backtracking
from .bruteforce import solve_bruteforce
from .instance import CSPInstance, Value, Variable
from .sat_encoding import solve_via_sat
from .treewidth_dp import solve_with_treewidth

#: Width at or below which the auto strategy prefers the treewidth DP.
AUTO_WIDTH_THRESHOLD = 3

_METHODS = ("auto", "backtracking", "bruteforce", "treewidth", "sat")


def solve(
    instance: CSPInstance,
    method: str = "auto",
    counter: CostCounter | None = None,
) -> dict[Variable, Value] | None:
    """Solve a CSP instance; returns an assignment or ``None``.

    Parameters
    ----------
    method:
        One of ``auto``, ``backtracking``, ``bruteforce``,
        ``treewidth``, ``sat`` (direct encoding + CDCL).

    Complexity: O(|V| · |D|^{k+1} · |C|) when min-fill width k ≤ the
        auto threshold (Theorem 4.2 regime); otherwise the backtracking
        bound O(|D|^{|V|}).
    """
    if method not in _METHODS:
        raise SolverError(f"unknown method {method!r}; choose from {_METHODS}")

    if method == "bruteforce":
        return solve_bruteforce(instance, counter)
    if method == "backtracking":
        return solve_backtracking(instance, counter)
    if method == "treewidth":
        return solve_with_treewidth(instance, counter=counter)
    if method == "sat":
        return solve_via_sat(instance, counter)

    width, decomposition = treewidth_min_fill(instance.primal_graph())
    if width <= AUTO_WIDTH_THRESHOLD:
        return solve_with_treewidth(instance, decomposition, counter)
    return solve_backtracking(instance, counter)
