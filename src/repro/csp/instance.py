"""CSP instances I = (V, D, C) (§2.2).

A constraint is a pair ⟨scope, relation⟩: the scope is a tuple of
variables, the relation the set of allowed value tuples. The instance
records the shared domain D (per the paper's definition); solvers may
internally shrink per-variable domains, but the instance itself is the
immutable problem statement.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from ..errors import InvalidInstanceError
from ..graphs.graph import Graph
from ..hypergraph.hypergraph import Hypergraph

Variable = Hashable
Value = Hashable


class Constraint:
    """One constraint ⟨s_i, R_i⟩.

    Examples
    --------
    >>> c = Constraint(("x", "y"), {(0, 1), (1, 0)})   # x ≠ y over {0,1}
    >>> c.satisfied_by({"x": 0, "y": 1})
    True
    """

    def __init__(self, scope: Iterable[Variable], relation: Iterable[tuple[Value, ...]]) -> None:
        self.scope: tuple[Variable, ...] = tuple(scope)
        if not self.scope:
            raise InvalidInstanceError("constraint scope cannot be empty")
        self.relation: frozenset[tuple[Value, ...]] = frozenset(
            tuple(t) for t in relation
        )
        for t in self.relation:
            if len(t) != len(self.scope):
                raise InvalidInstanceError(
                    f"tuple {t!r} does not match scope arity {len(self.scope)}"
                )

    @property
    def arity(self) -> int:
        return len(self.scope)

    @property
    def is_binary(self) -> bool:
        return self.arity == 2

    def variables(self) -> set[Variable]:
        return set(self.scope)

    def satisfied_by(self, assignment: Mapping[Variable, Value]) -> bool:
        """True if the (total on scope) assignment picks an allowed tuple."""
        try:
            picked = tuple(assignment[v] for v in self.scope)
        except KeyError as missing:
            raise InvalidInstanceError(f"assignment misses variable {missing}") from None
        return picked in self.relation

    def consistent_with(self, partial: Mapping[Variable, Value]) -> bool:
        """True if some allowed tuple agrees with the partial assignment."""
        bound = [(i, partial[v]) for i, v in enumerate(self.scope) if v in partial]
        if len(bound) == len(self.scope):
            return tuple(partial[v] for v in self.scope) in self.relation
        return any(all(t[i] == val for i, val in bound) for t in self.relation)

    def supports(self, variable: Variable, value: Value, domains: Mapping[Variable, set[Value]]) -> bool:
        """Generalized-arc-consistency support test: does some allowed
        tuple assign ``value`` to ``variable`` and values from the
        current ``domains`` to every other scope variable?"""
        positions = [i for i, v in enumerate(self.scope) if v == variable]
        if not positions:
            raise InvalidInstanceError(f"{variable!r} not in scope {self.scope}")
        for t in self.relation:
            if any(t[i] != value for i in positions):
                continue
            if all(
                t[i] in domains[v]
                for i, v in enumerate(self.scope)
                if v != variable
            ):
                return True
        return False

    def __repr__(self) -> str:
        return f"Constraint(scope={self.scope}, |relation|={len(self.relation)})"


class CSPInstance:
    """An instance I = (V, D, C).

    Parameters
    ----------
    variables:
        The ordered variable set V.
    domain:
        The shared domain D.
    constraints:
        The constraint set C; every scope variable must be in V.
    """

    def __init__(
        self,
        variables: Iterable[Variable],
        domain: Iterable[Value],
        constraints: Iterable[Constraint] = (),
    ) -> None:
        self.variables: tuple[Variable, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise InvalidInstanceError("duplicate variables in V")
        self.domain: frozenset[Value] = frozenset(domain)
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        var_set = set(self.variables)
        for c in self.constraints:
            unknown = c.variables() - var_set
            if unknown:
                raise InvalidInstanceError(
                    f"constraint scope mentions unknown variables {sorted(map(repr, unknown))}"
                )

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def domain_size(self) -> int:
        return len(self.domain)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def is_binary(self) -> bool:
        """True iff every constraint is binary (footnote 1 of the paper:
        binary refers to constraint arity, not domain size)."""
        return all(c.is_binary for c in self.constraints)

    def primal_graph(self) -> Graph:
        """The Gaifman graph: variables adjacent iff they co-occur."""
        graph = Graph(vertices=self.variables)
        for c in self.constraints:
            scope = sorted(c.variables(), key=repr)
            for i, u in enumerate(scope):
                for v in scope[i + 1:]:
                    graph.add_edge(u, v)
        return graph

    def hypergraph(self) -> Hypergraph:
        """One hyperedge per constraint scope."""
        return Hypergraph(
            vertices=self.variables,
            edges=[c.variables() for c in self.constraints],
        )

    def is_solution(self, assignment: Mapping[Variable, Value]) -> bool:
        """Check a total assignment against all constraints and the domain."""
        for v in self.variables:
            if v not in assignment:
                return False
            if assignment[v] not in self.domain:
                return False
        return all(c.satisfied_by(assignment) for c in self.constraints)

    def restrict(self, keep: Iterable[Variable]) -> "CSPInstance":
        """The sub-instance induced by ``keep``: keeps constraints whose
        scope lies entirely inside ``keep``.

        Used by the Special CSP solver (§4) to split an instance along
        connected components of the primal graph; for component splits
        no constraint crosses, so this is lossless.
        """
        keep_set = set(keep)
        kept_vars = tuple(v for v in self.variables if v in keep_set)
        kept_constraints = [
            c for c in self.constraints if c.variables() <= keep_set
        ]
        return CSPInstance(kept_vars, self.domain, kept_constraints)

    def constraints_on(self, variable: Variable) -> list[Constraint]:
        """All constraints whose scope contains ``variable``."""
        return [c for c in self.constraints if variable in c.variables()]

    def __repr__(self) -> str:
        return (
            f"CSPInstance(|V|={self.num_variables}, |D|={self.domain_size}, "
            f"|C|={self.num_constraints})"
        )
