"""Constraint satisfaction problems (§2.2).

The CSP domain: instances I = (V, D, C), their primal graphs and
hypergraphs, and four solvers whose contrast carries the paper's
upper-bound side:

* brute force over |D|^|V| assignments (the baseline of Theorems
  6.3/6.4 and the hyperclique conjecture);
* backtracking with MRV + forward checking (practical search);
* generalized arc consistency (GAC-3) preprocessing;
* Freuder's dynamic programming over a tree decomposition, running in
  O(|V|·|D|^{k+1}) for primal treewidth k (Theorem 4.2) — plus its
  counting variant.
"""

from .instance import Constraint, CSPInstance
from .bruteforce import count_bruteforce, solve_bruteforce
from .backtracking import solve_backtracking
from .consistency import enforce_gac, propagate_domains
from .sat_encoding import encode_direct, solve_via_sat
from .treewidth_dp import count_with_treewidth, solve_with_treewidth
from .solver import solve

__all__ = [
    "CSPInstance",
    "Constraint",
    "count_bruteforce",
    "count_with_treewidth",
    "encode_direct",
    "enforce_gac",
    "propagate_domains",
    "solve",
    "solve_backtracking",
    "solve_bruteforce",
    "solve_via_sat",
    "solve_with_treewidth",
]
