"""Solving CSPs through SAT: the direct encoding + CDCL.

The reduction direction opposite to Corollary 6.1: any CSP instance
I = (V, D, C) becomes a CNF over |V|·|D| Boolean variables (the
*direct encoding*): x_{v,d} means "v takes value d", with at-least-one
and at-most-one clauses per variable and one blocking clause per
forbidden scope tuple. The CDCL solver then provides clause learning
and backjumping "for free" to any CSP — the library's strongest
general-purpose solver on structured instances.
"""

from __future__ import annotations

from itertools import product

from ..counting import CostCounter
from ..sat.cdcl import solve_cdcl
from ..sat.cnf import CNF
from .instance import CSPInstance, Value, Variable


def encode_direct(instance: CSPInstance) -> tuple[CNF, dict[tuple[Variable, Value], int]]:
    """The direct encoding of a CSP instance.

    Returns ``(formula, var_of)`` where ``var_of[(v, d)]`` is the CNF
    variable asserting ``v = d``.

    Encoding:

    * at-least-one: ``⋁_d x_{v,d}`` per CSP variable v;
    * at-most-one: ``¬x_{v,d} ∨ ¬x_{v,d'}`` for d < d';
    * conflicts: for every constraint scope tuple *not* in the relation,
      the clause forbidding that combination.
    """
    domain = sorted(instance.domain, key=repr)
    variables = instance.variables
    var_of = {
        (v, d): i * len(domain) + j + 1
        for i, v in enumerate(variables)
        for j, d in enumerate(domain)
    }
    clauses: list[list[int]] = []

    for v in variables:
        clauses.append([var_of[(v, d)] for d in domain])
        for a in range(len(domain)):
            for b in range(a + 1, len(domain)):
                clauses.append(
                    [-var_of[(v, domain[a])], -var_of[(v, domain[b])]]
                )

    for constraint in instance.constraints:
        scope = constraint.scope
        for combo in product(domain, repeat=len(scope)):
            if combo in constraint.relation:
                continue
            # Repeated scope variables: the combo must be self-
            # consistent to be encodable (and violable) at all.
            assignment: dict[Variable, Value] = {}
            consistent = True
            for var, val in zip(scope, combo):
                if var in assignment and assignment[var] != val:
                    consistent = False
                    break
                assignment[var] = val
            if not consistent:
                continue
            clauses.append(
                [-var_of[(var, val)] for var, val in assignment.items()]
            )

    num_cnf_vars = len(variables) * len(domain)
    return CNF(num_cnf_vars, clauses), var_of


def solve_via_sat(
    instance: CSPInstance, counter: CostCounter | None = None
) -> dict[Variable, Value] | None:
    """Solve a CSP by direct encoding + CDCL; assignment or ``None``.

    Complexity: exponential worst case (CDCL); the encoding itself is
        O(|V| · |D|² + Σ_C |D|^{arity(C)}) clauses.
    """
    if instance.num_variables == 0:
        return {}
    if not instance.domain:
        return None
    formula, var_of = encode_direct(instance)
    model = solve_cdcl(formula, counter=counter)
    if model is None:
        return None
    domain = sorted(instance.domain, key=repr)
    solution: dict[Variable, Value] = {}
    for v in instance.variables:
        for d in domain:
            if model[var_of[(v, d)]]:
                solution[v] = d
                break
    assert instance.is_solution(solution)
    return solution
