"""Generalized arc consistency (GAC-3).

The classical propagation algorithm: repeatedly delete domain values
that have no support in some constraint, until a fixed point. Sound
(never removes a value used by a solution) and often dramatically
shrinks the search space; the ablation benchmark quantifies its effect
in front of backtracking.
"""

from __future__ import annotations

from collections import deque

from ..counting import CostCounter, charge
from .instance import Constraint, CSPInstance, Value, Variable


def initial_domains(instance: CSPInstance) -> dict[Variable, set[Value]]:
    """Fresh per-variable domains, all equal to D."""
    return {v: set(instance.domain) for v in instance.variables}


def enforce_gac(
    instance: CSPInstance,
    domains: dict[Variable, set[Value]] | None = None,
    counter: CostCounter | None = None,
) -> dict[Variable, set[Value]] | None:
    """Run GAC-3 to a fixed point.

    Returns the filtered domains, or ``None`` if some domain empties
    (the instance is unsatisfiable).
    """
    doms = initial_domains(instance) if domains is None else {
        v: set(vals) for v, vals in domains.items()
    }

    # Work queue of (variable, constraint) revision pairs.
    queue: deque[tuple[Variable, Constraint]] = deque(
        (v, c) for c in instance.constraints for v in c.variables()
    )
    watchers: dict[Variable, list[Constraint]] = {v: [] for v in instance.variables}
    for c in instance.constraints:
        for v in c.variables():
            watchers[v].append(c)

    while queue:
        variable, constraint = queue.popleft()
        removed = False
        for value in list(doms[variable]):
            charge(counter)
            if not constraint.supports(variable, value, doms):
                doms[variable].discard(value)
                removed = True
        if not doms[variable]:
            return None
        if removed:
            for other_constraint in watchers[variable]:
                for other_var in other_constraint.variables():
                    if other_var != variable:
                        queue.append((other_var, other_constraint))
    return doms


def propagate_domains(
    instance: CSPInstance, counter: CostCounter | None = None
) -> dict[Variable, set[Value]] | None:
    """Convenience: GAC-3 from the full domains."""
    return enforce_gac(instance, None, counter)
