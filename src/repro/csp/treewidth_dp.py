"""Freuder's algorithm: CSP by dynamic programming over a tree
decomposition (Theorem 4.2, [37]).

Given a tree decomposition of the primal graph of width k, a CSP
instance is solved in O(|V| · |D|^{k+1}): every constraint scope is a
clique of the primal graph and hence contained in some bag, so checking
constraints bag-locally is complete. The implementation runs over a
*nice* decomposition, which makes both the decision and the counting
versions four-case recurrences.

``solve_with_treewidth`` is the upper bound whose optimality the
paper's Theorems 6.5–6.7 establish.
"""

from __future__ import annotations

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from ..observability.metrics import SMALL_BUCKETS, current_metrics
from ..observability.tracing import span
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.heuristics import treewidth_min_fill
from ..treewidth.nice import FORGET, INTRODUCE, JOIN, LEAF, make_nice
from .instance import Constraint, CSPInstance, Value, Variable

BagAssignment = tuple[tuple[Variable, Value], ...]


def _canon(assignment: dict[Variable, Value]) -> BagAssignment:
    return tuple(sorted(assignment.items(), key=lambda item: repr(item[0])))


def solve_with_treewidth(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
    counter: CostCounter | None = None,
) -> dict[Variable, Value] | None:
    """Solve ``instance`` by DP over a tree decomposition.

    Parameters
    ----------
    decomposition:
        A valid tree decomposition of the primal graph; computed with
        the min-fill heuristic when omitted.

    Complexity: O(|V| · |D|^{k+1} · |C|) for decomposition width k —
        Freuder's Theorem 4.2 bound, optimal under SETH (Theorem 7.2).
    """
    with span(
        "solve_with_treewidth", counter=counter, variables=instance.num_variables
    ):
        tables, nice, __ = _run_dp(instance, decomposition, counter, count=False)
        if tables is None:
            return None
        return _extract_solution(instance, nice, tables)


def count_with_treewidth(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
    counter: CostCounter | None = None,
) -> int:
    """Count solutions by the counting variant of the same DP.

    Complexity: O(|V| · |D|^{k+1} · |C|) for decomposition width k,
        same DP with multiplicities.
    """
    tables, nice, __ = _run_dp(instance, decomposition, counter, count=True)
    if tables is None:
        return 0
    root_table = tables[nice.root]
    return sum(root_table.values())


def _run_dp(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None,
    counter: CostCounter | None,
    count: bool,
):
    """Bottom-up DP; returns (tables, nice_decomposition, decomposition).

    Table at node t maps canonical bag assignments to the number of
    extensions to forgotten variables (1s when only deciding).
    Returns tables=None if the root table is empty (unsatisfiable).
    """
    if decomposition is None:
        __, decomposition = treewidth_min_fill(instance.primal_graph())
    decomposition.validate(instance.primal_graph())
    nice = make_nice(decomposition)

    # DP-shape distributions (no-op outside the experiment runtime):
    # bag sizes bound the |D|^{k+1} factor per node, table sizes are
    # the realized (often far smaller) state counts.
    registry = current_metrics()
    bag_hist = table_hist = None
    if registry is not None:
        bag_hist = registry.histogram("treewidth.bag_size", SMALL_BUCKETS)
        table_hist = registry.histogram("treewidth.table_size")
        registry.gauge("treewidth.width").set_max(
            max((len(node.bag) for node in nice.nodes), default=1) - 1
        )
        for node in nice.nodes:
            bag_hist.observe(len(node.bag))

    domain = sorted(instance.domain, key=repr)
    if instance.num_variables and not domain:
        return None, nice, decomposition

    # Constraints indexed by variable, checked when that variable is
    # introduced and the full scope is inside the bag.
    constraints_of: dict[Variable, list[Constraint]] = {
        v: instance.constraints_on(v) for v in instance.variables
    }

    tables: list[dict[BagAssignment, int]] = []
    for node in nice.nodes:
        if node.kind == LEAF:
            tables.append({(): 1})
        elif node.kind == INTRODUCE:
            child_table = tables[node.children[0]]
            bag = node.bag
            v = node.vertex
            new_table: dict[BagAssignment, int] = {}
            local = [
                c for c in constraints_of.get(v, ())
                if c.variables() <= bag
            ]
            for bag_assignment, ways in child_table.items():
                partial = dict(bag_assignment)
                for value in domain:
                    charge(counter)
                    partial[v] = value
                    # scope ⊆ bag = keys(partial), so satisfied_by is total.
                    if all(c.satisfied_by(partial) for c in local):
                        key = _canon(partial)
                        new_table[key] = new_table.get(key, 0) + ways
                del partial[v]
            tables.append(new_table)
        elif node.kind == FORGET:
            child_table = tables[node.children[0]]
            v = node.vertex
            new_table = {}
            for bag_assignment, ways in child_table.items():
                charge(counter)
                reduced = _canon({var: val for var, val in bag_assignment if var != v})
                new_table[reduced] = new_table.get(reduced, 0) + ways
            tables.append(new_table)
        elif node.kind == JOIN:
            left_table = tables[node.children[0]]
            right_table = tables[node.children[1]]
            new_table = {}
            for bag_assignment, left_ways in left_table.items():
                charge(counter)
                right_ways = right_table.get(bag_assignment)
                if right_ways is not None:
                    new_table[bag_assignment] = left_ways * right_ways
            tables.append(new_table)
        else:  # pragma: no cover - validate() precludes this
            raise InvalidInstanceError(f"unexpected node kind {node.kind!r}")
        if table_hist is not None:
            table_hist.observe(len(tables[-1]))

    root_table = tables[nice.root]
    if not root_table:
        return None, nice, decomposition
    if not count:
        # Decision mode: collapse counts to 1 to keep integers small.
        pass
    return tables, nice, decomposition


def _extract_solution(
    instance: CSPInstance,
    nice,
    tables: list[dict[BagAssignment, int]],
) -> dict[Variable, Value]:
    """Top-down traceback of one witness through the DP tables."""
    solution: dict[Variable, Value] = {}

    def descend(node_idx: int, required: dict[Variable, Value]) -> None:
        node = nice.nodes[node_idx]
        if node.kind == LEAF:
            return
        if node.kind == INTRODUCE:
            solution.update(required)
            child_required = {
                var: val for var, val in required.items() if var != node.vertex
            }
            descend(node.children[0], child_required)
        elif node.kind == FORGET:
            child_table = tables[node.children[0]]
            v = node.vertex
            for bag_assignment in child_table:
                candidate = dict(bag_assignment)
                if all(candidate.get(var) == val for var, val in required.items()):
                    solution.update(candidate)
                    descend(node.children[0], candidate)
                    return
            raise AssertionError("traceback failed at forget node")
        elif node.kind == JOIN:
            descend(node.children[0], required)
            descend(node.children[1], required)

    root_table = tables[nice.root]
    first_key = next(iter(root_table))
    descend(nice.root, dict(first_key))

    # Variables isolated from every constraint and absent from bags
    # cannot occur (bags cover all vertices), but be defensive:
    domain = sorted(instance.domain, key=repr)
    for v in instance.variables:
        if v not in solution:
            solution[v] = domain[0]
    assert instance.is_solution(solution)
    return solution
