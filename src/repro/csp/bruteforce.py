"""Brute force CSP solving: all |D|^|V| assignments.

This is the baseline the lower bounds are measured against: Theorem 6.4
(no |D|^{o(|V|)}) and the d-uniform hyperclique conjecture (§8, no
|D|^{(1-ε)|V|} even for arity 3) say it is essentially unbeatable in
general.
"""

from __future__ import annotations

from itertools import product

from ..counting import CostCounter, charge
from ..observability.metrics import current_metrics
from ..observability.tracing import span
from .instance import CSPInstance, Value, Variable


def solve_bruteforce(
    instance: CSPInstance, counter: CostCounter | None = None
) -> dict[Variable, Value] | None:
    """Return the first satisfying assignment in domain order, or None.

    Complexity: O(|D|^{|V|} · Σ_C arity(C)) — every assignment is
        checked against every constraint.
    """
    domain = sorted(instance.domain, key=repr)
    variables = instance.variables
    registry = current_metrics()
    tried = 0
    with span("solve_bruteforce", counter=counter, variables=len(variables)):
        try:
            for values in product(domain, repeat=len(variables)):
                charge(counter)
                tried += 1
                assignment = dict(zip(variables, values))
                if all(c.satisfied_by(assignment) for c in instance.constraints):
                    return assignment
            return None
        finally:
            # The exhaustive baseline's only shape is its sheer volume;
            # record it so reports can relate it to the pruned solvers.
            if registry is not None:
                registry.counter("bruteforce.assignments_tried").inc(tried)


def count_bruteforce(instance: CSPInstance, counter: CostCounter | None = None) -> int:
    """Count all solutions by full enumeration.

    Complexity: O(|D|^{|V|} · Σ_C arity(C)) — full enumeration, no
        pruning.
    """
    domain = sorted(instance.domain, key=repr)
    variables = instance.variables
    count = 0
    for values in product(domain, repeat=len(variables)):
        charge(counter)
        assignment = dict(zip(variables, values))
        if all(c.satisfied_by(assignment) for c in instance.constraints):
            count += 1
    return count
