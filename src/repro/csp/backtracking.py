"""Backtracking search with MRV and forward checking.

The practical general-purpose solver: picks the variable with the
fewest remaining values (minimum remaining values), assigns, and prunes
neighbor domains through each touched constraint (forward checking).
Optionally preceded by GAC-3. Both heuristics can be switched off for
the ablation benchmark.
"""

from __future__ import annotations

from ..counting import CostCounter, charge
from ..observability.metrics import SMALL_BUCKETS, current_metrics
from ..observability.tracing import span
from .consistency import enforce_gac, initial_domains
from .instance import CSPInstance, Value, Variable


def solve_backtracking(
    instance: CSPInstance,
    counter: CostCounter | None = None,
    use_mrv: bool = True,
    use_forward_checking: bool = True,
    preprocess_gac: bool = False,
    maintain_gac: bool = False,
) -> dict[Variable, Value] | None:
    """Solve by backtracking; returns an assignment or ``None``.

    ``maintain_gac`` turns the search into MAC (maintained arc
    consistency): GAC-3 re-runs after every assignment. Much stronger
    pruning on propagation-heavy instances (e.g. coloring gadget
    graphs) at a higher per-node cost.

    Complexity: O(|D|^{|V|}) worst case; with MAC, each node also pays
        one GAC-3 pass, O(Σ_C |R_C| · arity(C)) per assignment.
    """
    if preprocess_gac or maintain_gac:
        domains = enforce_gac(instance, None, counter)
        if domains is None:
            return None
    else:
        domains = initial_domains(instance)

    assignment: dict[Variable, Value] = {}
    constraints_of = {
        v: instance.constraints_on(v) for v in instance.variables
    }

    # Search-shape distributions (no-op outside the experiment
    # runtime): how many children each node actually expands, and how
    # deep the search is when it falls back — the two quantities that
    # separate a near-backtrack-free run from thrashing.
    registry = current_metrics()
    branch_hist = backtrack_hist = node_counter = None
    if registry is not None:
        branch_hist = registry.histogram("backtracking.branching_factor", SMALL_BUCKETS)
        backtrack_hist = registry.histogram("backtracking.backtrack_depth", SMALL_BUCKETS)
        node_counter = registry.counter("backtracking.nodes")

    def pick_variable() -> Variable:
        unassigned = [v for v in instance.variables if v not in assignment]
        if use_mrv:
            return min(unassigned, key=lambda v: len(domains[v]))
        return unassigned[0]

    def scope_trial(c, extra_var: Variable, extra_val: Value) -> dict:
        """The assignment restricted to c's scope, plus one trial pair.
        Scopes are tiny, so this avoids copying the full assignment."""
        trial = {v: assignment[v] for v in c.scope if v in assignment}
        trial[extra_var] = extra_val
        return trial

    def consistent(variable: Variable, value: Value) -> bool:
        return all(
            c.consistent_with(scope_trial(c, variable, value))
            for c in constraints_of[variable]
        )

    def forward_check(variable: Variable) -> list[tuple[Variable, Value]] | None:
        """Prune neighbor domains; returns removals for undo, or None
        if some domain emptied."""
        removals: list[tuple[Variable, Value]] = []
        for c in constraints_of[variable]:
            for other in c.variables():
                if other in assignment:
                    continue
                for value in list(domains[other]):
                    charge(counter)
                    if not c.consistent_with(scope_trial(c, other, value)):
                        domains[other].discard(value)
                        removals.append((other, value))
                if not domains[other]:
                    for var, val in removals:
                        domains[var].add(val)
                    return None
        return removals

    def backtrack() -> dict[Variable, Value] | None:
        nonlocal domains
        if len(assignment) == instance.num_variables:
            return dict(assignment)
        if node_counter is not None:
            node_counter.inc()
        children_expanded = 0
        variable = pick_variable()
        for value in sorted(domains[variable], key=repr):
            charge(counter)
            if not consistent(variable, value):
                continue
            children_expanded += 1
            assignment[variable] = value
            if maintain_gac:
                snapshot = domains
                pinned = {v: set(vals) for v, vals in domains.items()}
                pinned[variable] = {value}
                propagated = enforce_gac(instance, pinned, counter)
                if propagated is not None:
                    domains = propagated
                    found = backtrack()
                    if found is not None:
                        return found
                domains = snapshot
            else:
                removals: list[tuple[Variable, Value]] | None = []
                if use_forward_checking:
                    removals = forward_check(variable)
                if removals is not None:
                    found = backtrack()
                    if found is not None:
                        return found
                    for var, val in removals:
                        domains[var].add(val)
            del assignment[variable]
        if branch_hist is not None:
            branch_hist.observe(children_expanded)
            backtrack_hist.observe(len(assignment))
        return None

    with span(
        "solve_backtracking",
        counter=counter,
        variables=instance.num_variables,
        mrv=use_mrv,
        forward_checking=use_forward_checking,
    ):
        return backtrack()
