"""Cores of relational structures (§5, Theorem 5.3).

A structure A is a *core* if every homomorphism A → A is an
automorphism (equivalently: A has no homomorphism to a proper induced
substructure). The core of A is the smallest induced substructure A'
with a homomorphism A → A'; it is unique up to isomorphism, and by
Grohe's theorem the treewidth of the core is what governs the
complexity of HOM(A, _).

Core computation is itself NP-hard in general; the search below removes
one element at a time while a retraction exists, which is exact and
fine for the small pattern structures used in the experiments.
"""

from __future__ import annotations

from ..counting import CostCounter
from .homomorphism import find_structure_homomorphism
from .structure import Structure


def is_core(structure: Structure, counter: CostCounter | None = None) -> bool:
    """True iff there is no retraction to a proper induced substructure."""
    return _find_retract(structure, counter) is None


def compute_core(structure: Structure, counter: CostCounter | None = None) -> Structure:
    """The core of ``structure``: greedily retract until none exists.

    Each step finds a homomorphism from the current structure into an
    induced substructure missing one element; iterating reaches a
    minimal retract, which is the core (unique up to isomorphism).
    """
    core, _ = compute_core_with_retraction(structure, counter)
    return core


def compute_core_with_retraction(
    structure: Structure, counter: CostCounter | None = None
) -> tuple[Structure, dict]:
    """The core plus the retraction homomorphism ``A → core(A)``.

    The retraction is the composition of the one-element retractions
    found along the way; it is what lets a reduction built on core
    minimization map solutions of the minimized instance back to
    solutions of the original (each dropped element answers via its
    image in the core).
    """
    current = structure
    retraction = {element: element for element in structure.universe}
    while True:
        step = _find_retract(current, counter)
        if step is None:
            return current, retraction
        current, hom = step
        retraction = {
            element: hom[image] for element, image in retraction.items()
        }


def _find_retract(
    structure: Structure, counter: CostCounter | None
) -> tuple[Structure, dict] | None:
    """An induced substructure on |A|-1 elements receiving a
    homomorphism from A (returned with that homomorphism), or None."""
    if structure.universe_size <= 1:
        return None
    for dropped in structure.universe:
        candidate = structure.induced_substructure(
            e for e in structure.universe if e != dropped
        )
        hom = find_structure_homomorphism(structure, candidate, counter)
        if hom is not None:
            return candidate, hom
    return None
