"""Cores of relational structures (§5, Theorem 5.3).

A structure A is a *core* if every homomorphism A → A is an
automorphism (equivalently: A has no homomorphism to a proper induced
substructure). The core of A is the smallest induced substructure A'
with a homomorphism A → A'; it is unique up to isomorphism, and by
Grohe's theorem the treewidth of the core is what governs the
complexity of HOM(A, _).

Core computation is itself NP-hard in general; the search below removes
one element at a time while a retraction exists, which is exact and
fine for the small pattern structures used in the experiments.
"""

from __future__ import annotations

from ..counting import CostCounter
from .homomorphism import find_structure_homomorphism
from .structure import Structure


def is_core(structure: Structure, counter: CostCounter | None = None) -> bool:
    """True iff there is no retraction to a proper induced substructure."""
    return _find_retract(structure, counter) is None


def compute_core(structure: Structure, counter: CostCounter | None = None) -> Structure:
    """The core of ``structure``: greedily retract until none exists.

    Each step finds a homomorphism from the current structure into an
    induced substructure missing one element; iterating reaches a
    minimal retract, which is the core (unique up to isomorphism).
    """
    current = structure
    while True:
        smaller = _find_retract(current, counter)
        if smaller is None:
            return current
        current = smaller


def _find_retract(structure: Structure, counter: CostCounter | None) -> Structure | None:
    """An induced substructure on |A|-1 elements receiving a
    homomorphism from A, or None."""
    if structure.universe_size <= 1:
        return None
    for dropped in structure.universe:
        candidate = structure.induced_substructure(
            e for e in structure.universe if e != dropped
        )
        hom = find_structure_homomorphism(structure, candidate, counter)
        if hom is not None:
            return candidate
    return None
