"""Vocabularies: finite sets of relation symbols with arities (§2.4)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class RelationSymbol:
    """A relation symbol with a fixed arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise InvalidInstanceError(
                f"relation symbol {self.name!r} needs arity >= 1, got {self.arity}"
            )


class Vocabulary:
    """A finite vocabulary τ: relation symbols with distinct names."""

    def __init__(self, symbols: Iterable[RelationSymbol] = ()) -> None:
        self._symbols: dict[str, RelationSymbol] = {}
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: RelationSymbol) -> None:
        if symbol.name in self._symbols:
            existing = self._symbols[symbol.name]
            if existing.arity != symbol.arity:
                raise InvalidInstanceError(
                    f"symbol {symbol.name!r} redeclared with arity "
                    f"{symbol.arity} (was {existing.arity})"
                )
            return
        self._symbols[symbol.name] = symbol

    def symbol(self, name: str) -> RelationSymbol:
        if name not in self._symbols:
            raise InvalidInstanceError(f"unknown relation symbol {name!r}")
        return self._symbols[name]

    @property
    def arity(self) -> int:
        """The arity of τ: the maximum symbol arity (0 when empty)."""
        return max((s.arity for s in self._symbols.values()), default=0)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._symbols == other._symbols

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}/{s.arity}" for s in self._symbols.values())
        return f"Vocabulary({inner})"

    @staticmethod
    def graph_vocabulary() -> "Vocabulary":
        """The single binary symbol E — τ-structures over it are
        directed graphs (§2.4)."""
        return Vocabulary([RelationSymbol("E", 2)])
