"""Finite relational structures (§2.4)."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from ..errors import InvalidInstanceError
from ..graphs.graph import DiGraph, Graph
from .vocabulary import RelationSymbol, Vocabulary

Element = Hashable


class Structure:
    """A τ-structure: a universe plus one relation per symbol of τ.

    Examples
    --------
    >>> tau = Vocabulary([RelationSymbol("E", 2)])
    >>> a = Structure(tau, universe=[0, 1], relations={"E": [(0, 1)]})
    >>> a.relation("E")
    frozenset({(0, 1)})
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        universe: Iterable[Element],
        relations: Mapping[str, Iterable[tuple[Element, ...]]] | None = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.universe: tuple[Element, ...] = tuple(universe)
        if len(set(self.universe)) != len(self.universe):
            raise InvalidInstanceError("universe has duplicate elements")
        universe_set = set(self.universe)

        self._relations: dict[str, frozenset[tuple[Element, ...]]] = {}
        supplied = dict(relations) if relations is not None else {}
        for symbol in vocabulary:
            tuples = frozenset(tuple(t) for t in supplied.pop(symbol.name, ()))
            for t in tuples:
                if len(t) != symbol.arity:
                    raise InvalidInstanceError(
                        f"tuple {t!r} does not match arity {symbol.arity} of {symbol.name!r}"
                    )
                bad = [x for x in t if x not in universe_set]
                if bad:
                    raise InvalidInstanceError(
                        f"tuple {t!r} of {symbol.name!r} uses non-universe elements {bad!r}"
                    )
            self._relations[symbol.name] = tuples
        if supplied:
            raise InvalidInstanceError(
                f"relations given for unknown symbols {sorted(supplied)}"
            )

    @property
    def universe_size(self) -> int:
        return len(self.universe)

    def relation(self, name: str) -> frozenset[tuple[Element, ...]]:
        self.vocabulary.symbol(name)
        return self._relations[name]

    def total_tuples(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def induced_substructure(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced on ``elements``: keep tuples whose
        entries all lie inside."""
        keep = set(elements)
        unknown = keep - set(self.universe)
        if unknown:
            raise InvalidInstanceError(f"elements not in universe: {sorted(map(repr, unknown))}")
        kept_universe = [e for e in self.universe if e in keep]
        kept_relations = {
            name: [t for t in tuples if all(x in keep for x in t)]
            for name, tuples in self._relations.items()
        }
        return Structure(self.vocabulary, kept_universe, kept_relations)

    def gaifman_graph(self) -> Graph:
        """Elements adjacent iff they co-occur in some tuple."""
        graph = Graph(vertices=self.universe)
        for tuples in self._relations.values():
            for t in tuples:
                distinct = sorted(set(t), key=repr)
                for i, u in enumerate(distinct):
                    for v in distinct[i + 1:]:
                        graph.add_edge(u, v)
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.vocabulary == other.vocabulary
            and set(self.universe) == set(other.universe)
            and self._relations == other._relations
        )

    def __repr__(self) -> str:
        rels = ", ".join(f"{n}[{len(t)}]" for n, t in self._relations.items())
        return f"Structure(|A|={self.universe_size}, {rels})"

    # -- graph round trips (§2.4: arity-2 single-symbol structures are
    # directed graphs) -------------------------------------------------

    @staticmethod
    def from_digraph(graph: DiGraph) -> "Structure":
        tau = Vocabulary.graph_vocabulary()
        return Structure(
            tau, graph.vertices, {"E": list(graph.edges())}
        )

    @staticmethod
    def from_graph(graph: Graph) -> "Structure":
        """Undirected graphs become symmetric binary structures."""
        tau = Vocabulary.graph_vocabulary()
        edges = []
        for u, v in graph.edges():
            edges.append((u, v))
            edges.append((v, u))
        return Structure(tau, graph.vertices, {"E": edges})

    def to_digraph(self) -> DiGraph:
        symbol_names = [s.name for s in self.vocabulary]
        if symbol_names != ["E"] or self.vocabulary.symbol("E").arity != 2:
            raise InvalidInstanceError("structure is not over the graph vocabulary")
        graph = DiGraph(vertices=self.universe)
        for u, v in self._relations["E"]:
            graph.add_edge(u, v)
        return graph
