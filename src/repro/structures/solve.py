"""Theorem 5.3 as an algorithm: HOM(A, B) via the core of A.

Grohe's theorem says HOM(A, _) is polynomial exactly when the cores of
the patterns have bounded treewidth. This module implements the
algorithm behind the positive side:

1. compute the core A' of A (the instances (A, B) and (A', B) are
   equivalent);
2. take a tree decomposition of A''s Gaifman graph;
3. solve the equivalent CSP by Freuder's DP in |B|^{tw(core)+1}.

For patterns whose core is much smaller/thinner than the pattern — the
situation Theorem 5.3 isolates — this beats direct search exponentially;
the experiment-style test pins that contrast.
"""

from __future__ import annotations

from ..counting import CostCounter
from ..csp.instance import Constraint, CSPInstance
from ..csp.treewidth_dp import solve_with_treewidth
from ..errors import InvalidInstanceError
from .core import compute_core
from .homomorphism import find_structure_homomorphism
from .structure import Element, Structure


def structure_pair_to_csp(source: Structure, target: Structure) -> CSPInstance:
    """The §2.4 translation, pattern side: variables = universe of A,
    domain = universe of B, one constraint per tuple of A."""
    if source.vocabulary != target.vocabulary:
        raise InvalidInstanceError("HOM requires a shared vocabulary")
    if target.universe_size == 0:
        raise InvalidInstanceError("empty target universe")
    constraints = []
    for symbol in source.vocabulary:
        target_tuples = target.relation(symbol.name)
        for scope in source.relation(symbol.name):
            constraints.append(Constraint(scope, target_tuples))
    return CSPInstance(source.universe, target.universe, constraints)


def solve_hom_via_core(
    source: Structure,
    target: Structure,
    counter: CostCounter | None = None,
) -> dict[Element, Element] | None:
    """Decide hom(A, B) through the core; returns a homomorphism
    A → B or ``None``.

    The returned mapping covers all of A: the retraction A → core(A)
    is composed with the core's homomorphism into B.

    Complexity: O(|A|² · |A|^{|A|} + |B|^{|core(A)|} · ‖A‖) — core
        computation (itself a homomorphism search per dropped element)
        plus the search from the smaller core.
    """
    if source.universe_size == 0:
        return {}
    if target.universe_size == 0:
        return None

    core = compute_core(source, counter)
    core_csp = structure_pair_to_csp(core, target)
    core_solution = solve_with_treewidth(core_csp, counter=counter)
    if core_solution is None:
        return None

    # Compose: A → core (retraction found during minimization is not
    # stored, so recompute one hom A → core; it exists by definition).
    retraction = find_structure_homomorphism(source, core, counter)
    assert retraction is not None, "a structure always maps onto its core"
    return {a: core_solution[retraction[a]] for a in source.universe}
