"""Homomorphisms between τ-structures (§2.4).

A homomorphism h : A → B preserves every relation: for each symbol R
and each tuple (a_1, ..., a_k) ∈ R^A, (h(a_1), ..., h(a_k)) ∈ R^B. The
search assigns elements of A one at a time, pruning with the tuples all
of whose entries are already assigned — this is exactly the CSP search
under the §2.4 translation, implemented natively here so the two
domains can be tested against each other.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .structure import Element, Structure


def is_structure_homomorphism(
    source: Structure, target: Structure, mapping: Mapping[Element, Element]
) -> bool:
    """Verify a candidate homomorphism."""
    if source.vocabulary != target.vocabulary:
        return False
    if set(mapping) != set(source.universe):
        return False
    target_universe = set(target.universe)
    if not set(mapping.values()) <= target_universe:
        return False
    for symbol in source.vocabulary:
        target_tuples = target.relation(symbol.name)
        for t in source.relation(symbol.name):
            if tuple(mapping[x] for x in t) not in target_tuples:
                return False
    return True


def find_structure_homomorphism(
    source: Structure, target: Structure, counter: CostCounter | None = None
) -> dict[Element, Element] | None:
    """Find one homomorphism A → B, or ``None``.

    Raises
    ------
    InvalidInstanceError
        If the two structures are over different vocabularies.

    Complexity: O(|B|^{|A|} · ‖A‖) backtracking worst case — HOM is
        NP-complete in general (§2.4).
    """
    result = _search(source, target, count_all=False, counter=counter)
    return result if result is None or isinstance(result, dict) else None


def count_structure_homomorphisms(
    source: Structure, target: Structure, counter: CostCounter | None = None
) -> int:
    """Count all homomorphisms A → B.

    Complexity: O(|B|^{|A|} · ‖A‖) — exhaustive backtracking over all
        maps.
    """
    result = _search(source, target, count_all=True, counter=counter)
    assert isinstance(result, int)
    return result


def _search(
    source: Structure,
    target: Structure,
    count_all: bool,
    counter: CostCounter | None,
):
    if source.vocabulary != target.vocabulary:
        raise InvalidInstanceError("homomorphism requires a shared vocabulary")
    if source.universe_size == 0:
        return 1 if count_all else {}
    if target.universe_size == 0:
        return 0 if count_all else None

    # Constraints: (symbol tuples of A, symbol tuples of B) pairs.
    checks: list[tuple[tuple[Element, ...], frozenset]] = []
    occurs: dict[Element, list[int]] = {e: [] for e in source.universe}
    for symbol in source.vocabulary:
        target_tuples = target.relation(symbol.name)
        for t in source.relation(symbol.name):
            idx = len(checks)
            checks.append((t, target_tuples))
            for x in dict.fromkeys(t):
                occurs[x].append(idx)

    # Assignment order: follow the Gaifman graph for early pruning.
    # Traversal is anchored to universe positions, never raw set order:
    # which homomorphism is found first must not depend on hash seeds.
    gaifman = source.gaifman_graph()
    upos = {e: i for i, e in enumerate(source.universe)}
    order: list[Element] = []
    placed: set[Element] = set()
    for component in gaifman.connected_components():
        frontier = [min(component, key=upos.__getitem__)]
        while frontier:
            e = frontier.pop()
            if e in placed:
                continue
            placed.add(e)
            order.append(e)
            frontier.extend(
                sorted(gaifman.neighbors(e) - placed, key=upos.__getitem__)
            )

    assignment: dict[Element, Element] = {}
    targets = target.universe
    count = 0

    def ready_checks(element: Element) -> list[int]:
        """Checks whose source tuple becomes fully assigned at ``element``."""
        pos = {e: i for i, e in enumerate(order)}
        my_rank = pos[element]
        return [
            i
            for i in occurs[element]
            if all(pos[x] <= my_rank for x in checks[i][0])
        ]

    ready = {e: ready_checks(e) for e in order}

    def backtrack(depth: int):
        nonlocal count
        if depth == len(order):
            if count_all:
                count += 1
                return None
            return dict(assignment)
        element = order[depth]
        for image in targets:
            charge(counter)
            assignment[element] = image
            ok = all(
                tuple(assignment[x] for x in checks[i][0]) in checks[i][1]
                for i in ready[element]
            )
            if ok:
                found = backtrack(depth + 1)
                if found is not None:
                    return found
            del assignment[element]
        return None

    found = backtrack(0)
    if count_all:
        return count
    return found
