"""Relational structures and homomorphisms (§2.4, §5).

The most general of the four domains: finite τ-structures, the
homomorphism problem HOM(A, B), and *cores* — the smallest
hom-equivalent substructures whose treewidth drives Grohe's Theorem
5.3 classification.
"""

from .vocabulary import RelationSymbol, Vocabulary
from .structure import Structure
from .homomorphism import (
    count_structure_homomorphisms,
    find_structure_homomorphism,
    is_structure_homomorphism,
)
from .core import compute_core, compute_core_with_retraction, is_core
from .solve import solve_hom_via_core, structure_pair_to_csp

__all__ = [
    "RelationSymbol",
    "Structure",
    "Vocabulary",
    "compute_core",
    "compute_core_with_retraction",
    "count_structure_homomorphisms",
    "find_structure_homomorphism",
    "is_core",
    "is_structure_homomorphism",
    "solve_hom_via_core",
    "structure_pair_to_csp",
]
