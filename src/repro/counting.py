"""Machine-independent operation counting.

Asymptotic statements in the paper constrain *work*, not wall-clock
time. Every nontrivial algorithm in this library accepts an optional
:class:`CostCounter`; when supplied, the algorithm charges one unit per
elementary step of the kind its theorem counts (tuple probed,
assignment extended, matrix entry touched, ...). Experiments then fit
scaling exponents to these counts, which is far more stable than timing
Python code.

A counter can also carry a *budget*: once the budget is exhausted the
algorithm aborts with :class:`~repro.errors.BudgetExceededError`. This
lets experiments bound runaway exponential sweeps deterministically.

Counts are also the unit the observability layer aggregates: tracing
spans (:mod:`repro.observability.tracing`) record the counter delta
charged while they were open, and run records persist per-experiment
totals via :meth:`repro.observability.context.RunContext.new_counter`.
"""

from __future__ import annotations

from .errors import BudgetExceededError


class CostCounter:
    """Counts elementary operations, optionally enforcing a budget.

    Parameters
    ----------
    budget:
        Maximum number of operations allowed, or ``None`` for no limit.

    Examples
    --------
    >>> counter = CostCounter()
    >>> counter.charge(10)
    >>> counter.total
    10
    """

    __slots__ = ("total", "budget")

    def __init__(self, budget: int | None = None) -> None:
        self.total = 0
        self.budget = budget

    def charge(self, amount: int = 1) -> None:
        """Add ``amount`` operations, raising if the budget is exceeded."""
        self.total += amount
        if self.budget is not None and self.total > self.budget:
            raise BudgetExceededError(
                f"operation budget of {self.budget} exceeded (at {self.total})"
            )

    def reset(self) -> None:
        """Zero the counter without touching the budget."""
        self.total = 0

    def __repr__(self) -> str:
        return f"CostCounter(total={self.total}, budget={self.budget})"


def charge(counter: CostCounter | None, amount: int = 1) -> None:
    """Charge ``counter`` if one was supplied; no-op otherwise.

    Algorithms call this helper so the uncounted fast path stays free of
    branching at every call site.
    """
    if counter is not None:
        counter.charge(amount)
