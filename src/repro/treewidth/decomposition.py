"""Tree decompositions with full axiom validation (Definition 4.1)."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from ..errors import InvalidDecompositionError
from ..graphs.graph import Graph, Vertex

NodeId = Hashable


class TreeDecomposition:
    """A tree decomposition ``(B, T)`` of a graph.

    Parameters
    ----------
    bags:
        Mapping from tree-node id to the bag (set of graph vertices).
    tree_edges:
        Edges of the tree ``T`` over the node ids.

    The three axioms of Definition 4.1 are checked by :meth:`validate`:
    vertex coverage, edge coverage, and connectivity of each vertex's
    occurrence set.
    """

    def __init__(
        self,
        bags: Mapping[NodeId, Iterable[Vertex]],
        tree_edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> None:
        self.bags: dict[NodeId, frozenset[Vertex]] = {
            node: frozenset(bag) for node, bag in bags.items()
        }
        self.tree = Graph(vertices=self.bags)
        for a, b in tree_edges:
            if a not in self.bags or b not in self.bags:
                raise InvalidDecompositionError(
                    f"tree edge ({a!r}, {b!r}) references a node without a bag"
                )
            self.tree.add_edge(a, b)

    @property
    def width(self) -> int:
        """max |B_t| - 1 over all bags (−1 for the empty decomposition)."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags.values()) - 1

    @property
    def nodes(self) -> list[NodeId]:
        return list(self.bags)

    def bag(self, node: NodeId) -> frozenset[Vertex]:
        return self.bags[node]

    def validate(self, graph: Graph) -> None:
        """Raise :class:`InvalidDecompositionError` on any axiom breach."""
        if not self._is_tree():
            raise InvalidDecompositionError("decomposition's tree is not a tree")

        covered: set[Vertex] = set()
        for bag in self.bags.values():
            covered |= bag
        missing = set(graph.vertices) - covered
        if missing:
            raise InvalidDecompositionError(
                f"vertices not covered by any bag: {sorted(map(repr, missing))}"
            )

        for u, v in graph.edges():
            if not any({u, v} <= bag for bag in self.bags.values()):
                raise InvalidDecompositionError(f"edge ({u!r}, {v!r}) is in no bag")

        for v in graph.vertices:
            occ = [node for node, bag in self.bags.items() if v in bag]
            if not self._occurrences_connected(occ):
                raise InvalidDecompositionError(
                    f"occurrence set of vertex {v!r} is not connected in the tree"
                )

    def is_valid(self, graph: Graph) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(graph)
        except InvalidDecompositionError:
            return False
        return True

    def _is_tree(self) -> bool:
        n = self.tree.num_vertices
        if n == 0:
            return True
        if self.tree.num_edges != n - 1:
            return False
        return len(self.tree.connected_components()) == 1

    def _occurrences_connected(self, occ: list[NodeId]) -> bool:
        if len(occ) <= 1:
            return True
        occ_set = set(occ)
        stack = [occ[0]]
        seen = {occ[0]}
        while stack:
            node = stack.pop()
            for nbr in self.tree.neighbors(node):
                if nbr in occ_set and nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return seen == occ_set

    def rooted_children(self, root: NodeId) -> dict[NodeId, list[NodeId]]:
        """Orient the tree away from ``root``; children per node."""
        children: dict[NodeId, list[NodeId]] = {node: [] for node in self.bags}
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for nbr in self.tree.neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    children[node].append(nbr)
                    stack.append(nbr)
        return children

    def __repr__(self) -> str:
        return f"TreeDecomposition(nodes={len(self.bags)}, width={self.width})"
