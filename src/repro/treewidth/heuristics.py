"""Elimination-order heuristics for treewidth.

Any vertex elimination order yields a tree decomposition whose width is
the largest clique created during elimination. ``min_degree`` picks the
vertex of smallest current degree; ``min_fill`` picks the vertex whose
elimination adds the fewest fill edges. Both are classical and are the
ablation axis of benchmark E4/E8.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import InvalidInstanceError
from ..graphs.graph import Graph, Vertex
from .decomposition import TreeDecomposition


def min_degree_order(graph: Graph) -> list[Vertex]:
    """Elimination order by repeatedly removing a min-degree vertex."""
    work = graph.copy()
    order: list[Vertex] = []
    while work.num_vertices:
        v = min(work.vertices, key=lambda u: (work.degree(u), repr(u)))
        _eliminate(work, v)
        order.append(v)
    return order


def min_fill_order(graph: Graph) -> list[Vertex]:
    """Elimination order by repeatedly removing a min-fill vertex."""
    work = graph.copy()
    order: list[Vertex] = []
    while work.num_vertices:
        v = min(work.vertices, key=lambda u: (_fill_count(work, u), repr(u)))
        _eliminate(work, v)
        order.append(v)
    return order


def _fill_count(graph: Graph, v: Vertex) -> int:
    nbrs = sorted(graph.neighbors(v), key=repr)
    return sum(
        1
        for i in range(len(nbrs))
        for j in range(i + 1, len(nbrs))
        if not graph.has_edge(nbrs[i], nbrs[j])
    )


def _eliminate(graph: Graph, v: Vertex) -> None:
    """Turn N(v) into a clique, then delete v."""
    nbrs = sorted(graph.neighbors(v), key=repr)
    for i in range(len(nbrs)):
        for j in range(i + 1, len(nbrs)):
            if not graph.has_edge(nbrs[i], nbrs[j]):
                graph.add_edge(nbrs[i], nbrs[j])
    graph.remove_vertex(v)


def decomposition_from_elimination_order(
    graph: Graph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination order.

    Bag of the i-th eliminated vertex v is {v} ∪ (later neighbors of v
    in the fill-in graph); each bag is linked to the bag of the earliest
    later vertex it contains, the standard construction.
    """
    if set(order) != set(graph.vertices):
        raise InvalidInstanceError("elimination order must be a permutation of V(G)")
    if not order:
        return TreeDecomposition(bags={0: frozenset()}, tree_edges=[])

    position = {v: i for i, v in enumerate(order)}
    work = graph.copy()
    bags: dict[int, set[Vertex]] = {}
    for i, v in enumerate(order):
        later = {u for u in work.neighbors(v) if position[u] > i}
        bags[i] = {v} | later
        _eliminate(work, v)

    tree_edges: list[tuple[int, int]] = []
    roots: list[int] = []
    for i, v in enumerate(order):
        later = bags[i] - {v}
        if later:
            parent = min(position[u] for u in later)
            tree_edges.append((i, parent))
        else:
            roots.append(i)
    # A disconnected graph yields one root bag per component; chain the
    # roots so the result is a single tree (occurrence subtrees stay
    # connected since no vertex occurs in two components).
    for a, b in zip(roots, roots[1:]):
        tree_edges.append((a, b))
    return TreeDecomposition(bags=bags, tree_edges=tree_edges)


def treewidth_lower_bound_degeneracy(graph: Graph) -> int:
    """The degeneracy (MMD) lower bound on treewidth.

    The maximum over the elimination process of the minimum degree:
    tw(G) ≥ degeneracy(G). Together with the heuristics' upper bounds
    this sandwiches the exact value, often certifying the heuristic as
    optimal without running the exponential exact algorithm.
    """
    work = graph.copy()
    best = 0
    while work.num_vertices:
        v = min(work.vertices, key=lambda u: (work.degree(u), repr(u)))
        best = max(best, work.degree(v))
        work.remove_vertex(v)
    return best


def treewidth_min_degree(graph: Graph) -> tuple[int, TreeDecomposition]:
    """(width, decomposition) from the min-degree heuristic."""
    decomposition = decomposition_from_elimination_order(graph, min_degree_order(graph))
    return decomposition.width, decomposition


def treewidth_min_fill(graph: Graph) -> tuple[int, TreeDecomposition]:
    """(width, decomposition) from the min-fill heuristic."""
    decomposition = decomposition_from_elimination_order(graph, min_fill_order(graph))
    return decomposition.width, decomposition
