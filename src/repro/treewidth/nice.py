"""Nice tree decompositions.

A *nice* decomposition restructures an arbitrary tree decomposition so
every node is a Leaf (empty bag), Introduce (adds one vertex), Forget
(removes one vertex), or Join (two children with identical bags). This
is the shape that makes dynamic programming (Theorem 4.2 and the §7
treewidth DPs) a four-case recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvalidDecompositionError
from ..graphs.graph import Vertex
from .decomposition import TreeDecomposition

LEAF = "leaf"
INTRODUCE = "introduce"
FORGET = "forget"
JOIN = "join"


@dataclass
class NiceNode:
    """One node of a nice tree decomposition."""

    kind: str
    bag: frozenset[Vertex]
    children: list[int] = field(default_factory=list)
    #: The vertex introduced/forgotten, for those kinds.
    vertex: Vertex | None = None


@dataclass
class NiceTreeDecomposition:
    """A rooted nice tree decomposition, nodes stored in a flat list.

    ``nodes[root]`` is the root; children indices always point to
    earlier entries, so iterating ``nodes`` in order is a valid
    bottom-up schedule for dynamic programming.
    """

    nodes: list[NiceNode]
    root: int

    @property
    def width(self) -> int:
        if not self.nodes:
            return -1
        return max(len(node.bag) for node in self.nodes) - 1

    def validate(self) -> None:
        """Check the four-node-kind grammar."""
        for i, node in enumerate(self.nodes):
            for child in node.children:
                if child >= i:
                    raise InvalidDecompositionError("children must precede parents")
            if node.kind == LEAF:
                if node.children or node.bag:
                    raise InvalidDecompositionError("leaf nodes have empty bags, no children")
            elif node.kind == INTRODUCE:
                (child,) = node.children
                expected = self.nodes[child].bag | {node.vertex}
                if node.vertex in self.nodes[child].bag or node.bag != expected:
                    raise InvalidDecompositionError(f"bad introduce node {i}")
            elif node.kind == FORGET:
                (child,) = node.children
                expected = self.nodes[child].bag - {node.vertex}
                if node.vertex not in self.nodes[child].bag or node.bag != expected:
                    raise InvalidDecompositionError(f"bad forget node {i}")
            elif node.kind == JOIN:
                left, right = node.children
                if self.nodes[left].bag != node.bag or self.nodes[right].bag != node.bag:
                    raise InvalidDecompositionError(f"bad join node {i}")
            else:
                raise InvalidDecompositionError(f"unknown node kind {node.kind!r}")


def make_nice(decomposition: TreeDecomposition) -> NiceTreeDecomposition:
    """Convert any valid tree decomposition into a nice one.

    The width never increases; the number of nodes grows by at most an
    O(width · nodes) factor.
    """
    if not decomposition.bags:
        return NiceTreeDecomposition(nodes=[NiceNode(LEAF, frozenset())], root=0)

    root_id = decomposition.nodes[0]
    children_map = decomposition.rooted_children(root_id)
    nodes: list[NiceNode] = []

    def emit(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def chain_from_empty(target: frozenset[Vertex]) -> int:
        """Leaf, then introduce target's vertices one at a time."""
        idx = emit(NiceNode(LEAF, frozenset()))
        bag: frozenset[Vertex] = frozenset()
        for v in sorted(target, key=repr):
            bag = bag | {v}
            idx = emit(NiceNode(INTRODUCE, bag, [idx], vertex=v))
        return idx

    def morph(idx: int, source: frozenset[Vertex], target: frozenset[Vertex]) -> int:
        """Forget then introduce to turn bag ``source`` into ``target``."""
        bag = source
        for v in sorted(source - target, key=repr):
            bag = bag - {v}
            idx = emit(NiceNode(FORGET, bag, [idx], vertex=v))
        for v in sorted(target - source, key=repr):
            bag = bag | {v}
            idx = emit(NiceNode(INTRODUCE, bag, [idx], vertex=v))
        return idx

    def build(node_id) -> int:
        bag = decomposition.bag(node_id)
        child_ids = children_map[node_id]
        if not child_ids:
            return chain_from_empty(bag)
        # Each child subtree is morphed up to this node's bag, then the
        # results are combined with a left-deep chain of joins.
        prepared = [
            morph(build(child), decomposition.bag(child), bag)
            for child in child_ids
        ]
        idx = prepared[0]
        for other in prepared[1:]:
            idx = emit(NiceNode(JOIN, bag, [idx, other]))
        return idx

    top = build(root_id)
    # Finish by forgetting the root bag down to empty, so DP tables at
    # the root always aggregate over a single empty-bag entry.
    top = morph(top, decomposition.bag(root_id), frozenset())
    nice = NiceTreeDecomposition(nodes=nodes, root=top)
    nice.validate()
    return nice
