"""Exact treewidth for small graphs.

Held–Karp style dynamic programming over subsets of eliminated vertices
(Bodlaender et al.): the cost of eliminating ``v`` after the set ``S``
is the number of vertices outside ``S ∪ {v}`` reachable from ``v``
through ``S``; treewidth is the min over orders of the max cost.
``O(2^n · n²)`` — intended for the ≤ 20-vertex graphs appearing in the
experiments, where it certifies the heuristics.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import InvalidInstanceError
from ..graphs.graph import Graph, Vertex
from .decomposition import TreeDecomposition
from .heuristics import (
    decomposition_from_elimination_order,
    treewidth_lower_bound_degeneracy,
    treewidth_min_fill,
)

#: Refuse exact computation above this size; the DP is exponential.
MAX_EXACT_VERTICES = 24


def treewidth_exact(graph: Graph) -> tuple[int, TreeDecomposition]:
    """Exact treewidth and a witnessing decomposition.

    Raises
    ------
    InvalidInstanceError
        If the graph has more than :data:`MAX_EXACT_VERTICES` vertices.
    """
    n = graph.num_vertices
    if n > MAX_EXACT_VERTICES:
        raise InvalidInstanceError(
            f"exact treewidth limited to {MAX_EXACT_VERTICES} vertices, got {n}"
        )
    if n == 0:
        return -1, TreeDecomposition(bags={0: frozenset()})

    vertices = graph.vertices
    index = {v: i for i, v in enumerate(vertices)}
    nbr_mask = [0] * n
    for u, v in graph.edges():
        nbr_mask[index[u]] |= 1 << index[v]
        nbr_mask[index[v]] |= 1 << index[u]
    full = (1 << n) - 1

    # Upper bound from the min-fill heuristic prunes the search; when
    # the degeneracy lower bound meets it, the heuristic is certified
    # optimal and the exponential DP is skipped entirely.
    upper, heuristic_dec = treewidth_min_fill(graph)
    if treewidth_lower_bound_degeneracy(graph) == upper:
        return upper, heuristic_dec

    @lru_cache(maxsize=None)
    def cost_after(v: int, eliminated: int) -> int:
        """Degree of vertex v in the fill graph after ``eliminated``."""
        # BFS from v through eliminated vertices; count exits.
        seen = 1 << v
        frontier = nbr_mask[v]
        reach = 0
        while frontier:
            new_exits = frontier & ~eliminated & ~seen
            reach |= new_exits
            inside = frontier & eliminated & ~seen
            seen |= frontier
            frontier = 0
            m = inside
            while m:
                low = m & -m
                frontier |= nbr_mask[low.bit_length() - 1]
                m ^= low
            frontier &= ~seen
        return bin(reach).count("1")

    best_order: list[int] | None = None

    @lru_cache(maxsize=None)
    def solve(eliminated: int) -> tuple[int, tuple[int, ...]]:
        """(best max-cost, best order suffix) for eliminating the rest."""
        if eliminated == full:
            return -1, ()
        best = upper + 1
        best_suffix: tuple[int, ...] = ()
        remaining = full & ~eliminated
        m = remaining
        while m:
            low = m & -m
            v = low.bit_length() - 1
            m ^= low
            c = cost_after(v, eliminated)
            if c >= best:
                continue
            sub, suffix = solve(eliminated | low)
            value = max(c, sub)
            if value < best:
                best = value
                best_suffix = (v,) + suffix
        return best, best_suffix

    width, order_bits = solve(0)
    solve.cache_clear()
    cost_after.cache_clear()

    if width > upper or not order_bits:
        # Heuristic already optimal (pruning removed all exact orders).
        return upper, heuristic_dec
    best_order = [vertices[i] for i in order_bits]
    decomposition = decomposition_from_elimination_order(graph, best_order)
    return width, decomposition
