"""Tree decompositions and treewidth (§4, Definition 4.1).

Treewidth is the structural parameter the paper's classifications hinge
on: bounded treewidth ⇔ polynomial CSP(G) (Theorem 5.2), and the ETH
makes Freuder's |D|^{k+1} algorithm essentially optimal (Theorems
6.5–6.7). Provides validated decompositions, elimination-order
heuristics (min-degree / min-fill), exact treewidth for small graphs,
and nice decompositions for dynamic programming.
"""

from .decomposition import TreeDecomposition
from .heuristics import (
    decomposition_from_elimination_order,
    min_degree_order,
    min_fill_order,
    treewidth_lower_bound_degeneracy,
    treewidth_min_degree,
    treewidth_min_fill,
)
from .exact import treewidth_exact
from .nice import NiceNode, NiceTreeDecomposition, make_nice

__all__ = [
    "NiceNode",
    "NiceTreeDecomposition",
    "TreeDecomposition",
    "decomposition_from_elimination_order",
    "make_nice",
    "min_degree_order",
    "min_fill_order",
    "treewidth_exact",
    "treewidth_lower_bound_degeneracy",
    "treewidth_min_degree",
    "treewidth_min_fill",
]
