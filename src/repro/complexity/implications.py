"""The implication digraph among hypotheses.

An arc X → Y means "X implies Y" (refuting Y refutes X); equivalently Y
is the weaker assumption. The edges are the standard ones the paper
relies on:

* SETH ⇒ ETH (Impagliazzo–Paturi);
* ETH ⇒ FPT ≠ W[1] (via Theorem 6.3: ETH rules out f(k)·n^{o(k)} for
  Clique, in particular any FPT algorithm);
* FPT ≠ W[1] ⇒ P ≠ NP (an NP algorithm for everything would make
  Clique FPT);
* ETH ⇒ P ≠ NP;
* the k-clique conjecture ⇒ FPT ≠ W[1] (an f(k)·n^{O(1)} Clique
  algorithm beats n^{(ω−ε)k/3} for large k);
* the d-uniform hyperclique conjecture ⇒ FPT ≠ W[1] likewise.

Every hypothesis trivially implies "unconditional".
"""

from __future__ import annotations

from ..graphs.graph import DiGraph
from .hypotheses import (
    ETH,
    FPT_NEQ_W1,
    HYPERCLIQUE_CONJECTURE,
    KCLIQUE_CONJECTURE,
    OV_CONJECTURE,
    P_NEQ_NP,
    SETH,
    TRIANGLE_CONJECTURE,
    UNCONDITIONAL,
    all_hypotheses,
    get_hypothesis,
)

_EDGES: tuple[tuple[str, str], ...] = (
    (SETH.key, ETH.key),
    (SETH.key, OV_CONJECTURE.key),
    (ETH.key, FPT_NEQ_W1.key),
    (ETH.key, P_NEQ_NP.key),
    (FPT_NEQ_W1.key, P_NEQ_NP.key),
    (KCLIQUE_CONJECTURE.key, FPT_NEQ_W1.key),
    (HYPERCLIQUE_CONJECTURE.key, FPT_NEQ_W1.key),
    (TRIANGLE_CONJECTURE.key, P_NEQ_NP.key),
)


def implication_graph() -> DiGraph:
    """The digraph with an arc X → Y whenever X implies Y."""
    graph = DiGraph(vertices=[h.key for h in all_hypotheses()])
    for src, dst in _EDGES:
        graph.add_edge(src, dst)
    for h in all_hypotheses():
        if h.key != UNCONDITIONAL.key:
            graph.add_edge(h.key, UNCONDITIONAL.key)
    return graph


def implies(stronger: str, weaker: str) -> bool:
    """True iff ``stronger`` implies ``weaker`` (reflexively)."""
    get_hypothesis(stronger)
    get_hypothesis(weaker)
    if stronger == weaker:
        return True
    graph = implication_graph()
    frontier = [stronger]
    seen = {stronger}
    while frontier:
        node = frontier.pop()
        for nxt in graph.successors(node):
            if nxt == weaker:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def weaker_hypotheses(key: str) -> list[str]:
    """All hypotheses implied by ``key`` (excluding itself)."""
    return [h.key for h in all_hypotheses() if h.key != key and implies(key, h.key)]


def stronger_hypotheses(key: str) -> list[str]:
    """All hypotheses implying ``key`` (excluding itself)."""
    return [h.key for h in all_hypotheses() if h.key != key and implies(h.key, key)]
