"""First-class lower-bound statements: the paper's theorems as data.

Each :class:`LowerBound` records the problem, the running time ruled
out, the hypothesis conditioning the statement, the paper reference,
and — where this library implements it — the module holding the
reduction/construction and the experiment that witnesses the claimed
shape empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hypotheses import (
    ETH,
    FPT_NEQ_W1,
    HYPERCLIQUE_CONJECTURE,
    KCLIQUE_CONJECTURE,
    OV_CONJECTURE,
    SETH,
    TRIANGLE_CONJECTURE,
    UNCONDITIONAL,
    get_hypothesis,
)
from .implications import implies


@dataclass(frozen=True)
class LowerBound:
    """One conditional (or unconditional) lower bound.

    Attributes
    ----------
    key:
        Stable identifier.
    problem:
        The problem the bound is about.
    ruled_out:
        The running time shown impossible.
    hypothesis:
        Key of the hypothesis the bound conditions on.
    paper_ref:
        Theorem/corollary number in the paper.
    reduction_module:
        Dotted path of the module implementing the construction, if any.
    experiment:
        Experiment id (DESIGN.md index) that witnesses the shape.
    """

    key: str
    problem: str
    ruled_out: str
    hypothesis: str
    paper_ref: str
    reduction_module: str = ""
    experiment: str = ""


_BOUNDS: tuple[LowerBound, ...] = (
    LowerBound(
        key="agm-tight",
        problem="Join Query evaluation (computing the full answer)",
        ruled_out="o(N^ρ*(H)) — the answer itself can have size N^ρ*(H)",
        hypothesis=UNCONDITIONAL.key,
        paper_ref="Theorem 3.2",
        reduction_module="repro.generators.agm",
        experiment="E2-agm-tight",
    ),
    LowerBound(
        key="csp-subexp-vars",
        problem="CSP with |D| = 2, arity ≤ 3",
        ruled_out="2^{o(|V|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Corollary 6.1",
        reduction_module="repro.reductions.sat_to_csp",
        experiment="E5-schaefer",
    ),
    LowerBound(
        key="csp-subexp-size",
        problem="binary CSP with |D| = 3",
        ruled_out="2^{o(|V| + |C|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Corollary 6.2",
        reduction_module="repro.reductions.sat_to_coloring",
        experiment="E5-schaefer",
    ),
    LowerBound(
        key="clique-no-fpt",
        problem="k-Clique",
        ruled_out="f(k) · n^{o(k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.3 (Chen et al.)",
        reduction_module="repro.graphs.clique",
        experiment="E7-clique-csp",
    ),
    LowerBound(
        key="csp-domain-exponent",
        problem="binary CSP parameterized by |V|",
        ruled_out="f(|V|) · |D|^{o(|V|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.4",
        reduction_module="repro.reductions.clique_to_csp",
        experiment="E7-clique-csp",
    ),
    LowerBound(
        key="special-csp",
        problem="Special CSP (Definition 4.3)",
        ruled_out="f(|V|) · n^{o(log |V|)}",
        hypothesis=ETH.key,
        paper_ref="§6 via the Special CSP reduction",
        reduction_module="repro.reductions.clique_to_special",
        experiment="E6-special",
    ),
    LowerBound(
        key="treewidth-exponent",
        problem="binary CSP of primal treewidth k",
        ruled_out="f(|V|) · n^{o(k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.5",
        reduction_module="repro.csp.treewidth_dp",
        experiment="E8-treewidth-opt",
    ),
    LowerBound(
        key="beat-treewidth",
        problem="CSP(G) for any class G of unbounded treewidth",
        ruled_out="f(|V|) · n^{o(k / log k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.6 [52] / Theorem 6.7 [25]",
        reduction_module="repro.csp.treewidth_dp",
        experiment="E8-treewidth-opt",
    ),
    LowerBound(
        key="grohe-ss-dichotomy",
        problem="CSP(G) polynomial-time solvability",
        ruled_out="polynomial time for any unbounded-treewidth G",
        hypothesis=FPT_NEQ_W1.key,
        paper_ref="Theorem 5.2 (Grohe–Schwentick–Segoufin)",
        reduction_module="repro.reductions.clique_to_csp",
        experiment="E4-freuder",
    ),
    LowerBound(
        key="grohe-core-dichotomy",
        problem="HOM(A, _) polynomial-time solvability",
        ruled_out="polynomial time when cores have unbounded treewidth",
        hypothesis=FPT_NEQ_W1.key,
        paper_ref="Theorem 5.3 (Grohe)",
        reduction_module="repro.structures.core",
        experiment="E13-hypotheses",
    ),
    LowerBound(
        key="domset-exponent",
        problem="k-Dominating Set (k ≥ 3)",
        ruled_out="O(n^{k−ε})",
        hypothesis=SETH.key,
        paper_ref="Theorem 7.1 (Pătrașcu–Williams)",
        reduction_module="repro.graphs.dominating_set",
        experiment="E9-domset",
    ),
    LowerBound(
        key="freuder-optimal",
        problem="CSP of primal treewidth ≤ k",
        ruled_out="O(|V|^c · |D|^{k−ε})",
        hypothesis=SETH.key,
        paper_ref="Theorem 7.2",
        reduction_module="repro.reductions.domset_to_csp",
        experiment="E9-domset",
    ),
    LowerBound(
        key="kclique-matrix",
        problem="k-Clique",
        ruled_out="O(n^{(ω−ε)k/3 + c})",
        hypothesis=KCLIQUE_CONJECTURE.key,
        paper_ref="§8 (Abboud–Backurs–Vassilevska Williams context)",
        reduction_module="repro.graphs.clique",
        experiment="E10-kclique-mm",
    ),
    LowerBound(
        key="csp-bruteforce",
        problem="CSP with arity ≤ 3",
        ruled_out="f(|V|) · |D|^{(1−ε)|V| + c} · n^{O(1)}",
        hypothesis=HYPERCLIQUE_CONJECTURE.key,
        paper_ref="§8 (hyperclique translation)",
        reduction_module="repro.graphs.hyperclique",
        experiment="E12-hyperclique",
    ),
    LowerBound(
        key="ov-quadratic",
        problem="Orthogonal Vectors",
        ruled_out="O(n^{2−ε} · poly(d))",
        hypothesis=SETH.key,
        paper_ref="§7 (fine-grained complexity, [56])",
        reduction_module="repro.finegrained.sat_to_ov",
        experiment="E18-finegrained",
    ),
    LowerBound(
        key="edit-distance-quadratic",
        problem="Edit Distance",
        ruled_out="O(n^{2−ε})",
        hypothesis=OV_CONJECTURE.key,
        paper_ref="§7 (Backurs–Indyk [12], Bringmann–Künnemann [19])",
        reduction_module="repro.finegrained.edit_distance",
        experiment="E18-finegrained",
    ),
    LowerBound(
        key="triangle-sparse",
        problem="Triangle detection / Boolean triangle join query",
        ruled_out="better than O(m^{2ω/(ω+1)})",
        hypothesis=TRIANGLE_CONJECTURE.key,
        paper_ref="§8 (Strong Triangle Conjecture [4])",
        reduction_module="repro.graphs.triangle",
        experiment="E11-triangle",
    ),
)


def all_lower_bounds() -> list[LowerBound]:
    """Every registered lower bound, in paper order."""
    return list(_BOUNDS)


def bounds_under(hypothesis_key: str) -> list[LowerBound]:
    """All bounds that hold if ``hypothesis_key`` is assumed — i.e.
    whose own hypothesis is implied by it."""
    get_hypothesis(hypothesis_key)
    return [
        b for b in _BOUNDS if implies(hypothesis_key, b.hypothesis)
    ]
