"""First-class lower-bound statements: the paper's theorems as data.

Each :class:`LowerBound` records the problem, the running time ruled
out, the hypothesis conditioning the statement, the paper reference,
and — where this library implements it — the module holding the
reduction/construction and the experiment that witnesses the claimed
shape empirically.

Since the certified-transform refactor every bound also carries a
:class:`~repro.complexity.derivations.Derivation`: either an explicit
chain of registered transforms that the validator replays and
re-certifies (``python -m repro.complexity --check-derivations``), or
an explicit axiom note saying why no in-repo chain exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .derivations import Derivation, axiom, derived
from .hypotheses import (
    BMM_CONJECTURE,
    ETH,
    FPT_NEQ_W1,
    HYPERCLIQUE_CONJECTURE,
    KCLIQUE_CONJECTURE,
    OV_CONJECTURE,
    SETH,
    TRIANGLE_CONJECTURE,
    UNCONDITIONAL,
    get_hypothesis,
)
from .implications import implies


@dataclass(frozen=True)
class LowerBound:
    """One conditional (or unconditional) lower bound.

    Attributes
    ----------
    key:
        Stable identifier.
    problem:
        The problem the bound is about.
    ruled_out:
        The running time shown impossible.
    hypothesis:
        Key of the hypothesis the bound conditions on.
    paper_ref:
        Theorem/corollary number in the paper.
    reduction_module:
        Dotted path of the module implementing the construction, if any.
    experiment:
        Experiment id (DESIGN.md index) that witnesses the shape.
    derivation:
        How the bound follows from its hypothesis: an explicit chain of
        registered transforms, or a declared axiom. ``None`` is a
        registration error that ``--check-derivations`` rejects.
    """

    key: str
    problem: str
    ruled_out: str
    hypothesis: str
    paper_ref: str
    reduction_module: str = ""
    experiment: str = ""
    derivation: Derivation | None = None


_BOUNDS: tuple[LowerBound, ...] = (
    LowerBound(
        key="agm-tight",
        problem="Join Query evaluation (computing the full answer)",
        ruled_out="o(N^ρ*(H)) — the answer itself can have size N^ρ*(H)",
        hypothesis=UNCONDITIONAL.key,
        paper_ref="Theorem 3.2",
        reduction_module="repro.generators.agm",
        derivation=axiom(
            "information-theoretic: AGM-tight instances make the answer "
            "itself of size N^ρ*(H); no reduction involved"
        ),
        experiment="E2-agm-tight",
    ),
    LowerBound(
        key="csp-subexp-vars",
        problem="CSP with |D| = 2, arity ≤ 3",
        ruled_out="2^{o(|V|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Corollary 6.1",
        reduction_module="repro.reductions.sat_to_csp",
        derivation=derived(ETH.key, "3sat→csp"),
        experiment="E5-schaefer",
    ),
    LowerBound(
        key="csp-subexp-size",
        problem="binary CSP with |D| = 3",
        ruled_out="2^{o(|V| + |C|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Corollary 6.2",
        reduction_module="repro.reductions.sat_to_coloring",
        derivation=derived(
            ETH.key,
            "3sat→3coloring",
            "3coloring→csp",
            note="linear-size coloring gadget keeps |V| + |C| = O(n + m)",
        ),
        experiment="E5-schaefer",
    ),
    LowerBound(
        key="clique-no-fpt",
        problem="k-Clique",
        ruled_out="f(k) · n^{o(k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.3 (Chen et al.)",
        reduction_module="repro.graphs.clique",
        derivation=axiom(
            "Chen et al.'s ETH bound for Clique uses a compression "
            "argument, not an instance reduction this library implements"
        ),
        experiment="E7-clique-csp",
    ),
    LowerBound(
        key="csp-domain-exponent",
        problem="binary CSP parameterized by |V|",
        ruled_out="f(|V|) · |D|^{o(|V|)} · n^{O(1)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.4",
        reduction_module="repro.reductions.clique_to_csp",
        derivation=derived(
            ETH.key,
            "clique→csp",
            note="hardness enters via Theorem 6.3 (clique-no-fpt), an axiom",
        ),
        experiment="E7-clique-csp",
    ),
    LowerBound(
        key="special-csp",
        problem="Special CSP (Definition 4.3)",
        ruled_out="f(|V|) · n^{o(log |V|)}",
        hypothesis=ETH.key,
        paper_ref="§6 via the Special CSP reduction",
        reduction_module="repro.reductions.clique_to_special",
        derivation=derived(
            ETH.key,
            "clique→special-csp",
            note="parameter blowup k' = k + 2^k is legal under Definition 5.1",
        ),
        experiment="E6-special",
    ),
    LowerBound(
        key="treewidth-exponent",
        problem="binary CSP of primal treewidth k",
        ruled_out="f(|V|) · n^{o(k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.5",
        reduction_module="repro.csp.treewidth_dp",
        derivation=axiom(
            "Theorem 6.5 embeds cliques into bounded-treewidth classes; "
            "the embedding machinery is not an in-repo transform"
        ),
        experiment="E8-treewidth-opt",
    ),
    LowerBound(
        key="beat-treewidth",
        problem="CSP(G) for any class G of unbounded treewidth",
        ruled_out="f(|V|) · n^{o(k / log k)}",
        hypothesis=ETH.key,
        paper_ref="Theorem 6.6 [52] / Theorem 6.7 [25]",
        reduction_module="repro.csp.treewidth_dp",
        derivation=axiom(
            "needs the excluded-grid theorem and embedding results of "
            "[52]/[25], far beyond this library's reductions"
        ),
        experiment="E8-treewidth-opt",
    ),
    LowerBound(
        key="grohe-ss-dichotomy",
        problem="CSP(G) polynomial-time solvability",
        ruled_out="polynomial time for any unbounded-treewidth G",
        hypothesis=FPT_NEQ_W1.key,
        paper_ref="Theorem 5.2 (Grohe–Schwentick–Segoufin)",
        reduction_module="repro.reductions.clique_to_csp",
        derivation=derived(
            FPT_NEQ_W1.key,
            "clique→csp",
            note="the k-clique CSP has a k-clique primal graph, so "
            "unbounded-treewidth classes interpret Clique",
        ),
        experiment="E4-freuder",
    ),
    LowerBound(
        key="grohe-core-dichotomy",
        problem="HOM(A, _) polynomial-time solvability",
        ruled_out="polynomial time when cores have unbounded treewidth",
        hypothesis=FPT_NEQ_W1.key,
        paper_ref="Theorem 5.3 (Grohe)",
        reduction_module="repro.structures.core",
        derivation=axiom(
            "Grohe's core dichotomy rests on logical interpretations "
            "over cores, not an instance transform in this library"
        ),
        experiment="E13-hypotheses",
    ),
    LowerBound(
        key="domset-exponent",
        problem="k-Dominating Set (k ≥ 3)",
        ruled_out="O(n^{k−ε})",
        hypothesis=SETH.key,
        paper_ref="Theorem 7.1 (Pătrașcu–Williams)",
        reduction_module="repro.graphs.dominating_set",
        derivation=axiom(
            "Pătrașcu–Williams split-and-list SETH reduction; the "
            "library implements the solver side, not the reduction"
        ),
        experiment="E9-domset",
    ),
    LowerBound(
        key="freuder-optimal",
        problem="CSP of primal treewidth ≤ k",
        ruled_out="O(|V|^c · |D|^{k−ε})",
        hypothesis=SETH.key,
        paper_ref="Theorem 7.2",
        reduction_module="repro.reductions.domset_to_csp",
        derivation=derived(
            SETH.key,
            "domset→grouped-csp",
            note="hardness enters via Theorem 7.1 (domset-exponent), an "
            "axiom; grouping trades treewidth for domain size",
        ),
        experiment="E9-domset",
    ),
    LowerBound(
        key="kclique-matrix",
        problem="k-Clique",
        ruled_out="O(n^{(ω−ε)k/3 + c})",
        hypothesis=KCLIQUE_CONJECTURE.key,
        paper_ref="§8 (Abboud–Backurs–Vassilevska Williams context)",
        reduction_module="repro.graphs.clique",
        derivation=axiom(
            "restates the k-clique conjecture itself for the problem it "
            "is about; nothing to derive"
        ),
        experiment="E10-kclique-mm",
    ),
    LowerBound(
        key="csp-bruteforce",
        problem="CSP with arity ≤ 3",
        ruled_out="f(|V|) · |D|^{(1−ε)|V| + c} · n^{O(1)}",
        hypothesis=HYPERCLIQUE_CONJECTURE.key,
        paper_ref="§8 (hyperclique translation)",
        reduction_module="repro.graphs.hyperclique",
        derivation=axiom(
            "the hyperclique→CSP translation is sketched in §8; this "
            "library implements the hyperclique solver only"
        ),
        experiment="E12-hyperclique",
    ),
    LowerBound(
        key="ov-quadratic",
        problem="Orthogonal Vectors",
        ruled_out="O(n^{2−ε} · poly(d))",
        hypothesis=SETH.key,
        paper_ref="§7 (fine-grained complexity, [56])",
        reduction_module="repro.finegrained.sat_to_ov",
        derivation=derived(
            SETH.key,
            "cnfsat→orthogonal-vectors",
            note="split-and-enumerate: an O(N^{2−ε}) OV algorithm gives a "
            "(2−ε')^n SAT algorithm",
        ),
        experiment="E18-finegrained",
    ),
    LowerBound(
        key="edit-distance-quadratic",
        problem="Edit Distance",
        ruled_out="O(n^{2−ε})",
        hypothesis=OV_CONJECTURE.key,
        paper_ref="§7 (Backurs–Indyk [12], Bringmann–Künnemann [19])",
        reduction_module="repro.finegrained.edit_distance",
        derivation=axiom(
            "the OV→edit-distance alignment-gadget reduction of [12]/[19] "
            "is not implemented in this library"
        ),
        experiment="E18-finegrained",
    ),
    LowerBound(
        key="triangle-sparse",
        problem="Triangle detection / Boolean triangle join query",
        ruled_out="better than O(m^{2ω/(ω+1)})",
        hypothesis=TRIANGLE_CONJECTURE.key,
        paper_ref="§8 (Strong Triangle Conjecture [4])",
        reduction_module="repro.graphs.triangle",
        derivation=axiom(
            "restates the Strong Triangle Conjecture for the problem it "
            "is about; nothing to derive"
        ),
        experiment="E11-triangle",
    ),
    LowerBound(
        key="factorized-size",
        problem="factorized (d-)representation of join-query answers",
        ruled_out="o(N) d-representation size for free-connex acyclic "
        "queries — the linear size the factorized engine achieves is "
        "worst-case optimal (Berkholz's tight bound)",
        hypothesis=UNCONDITIONAL.key,
        paper_ref="§4–§5 size-bound context; Berkholz, Factorised "
        "Representations of Join Queries (PAPERS.md)",
        reduction_module="repro.relational.factorized",
        derivation=axiom(
            "information-theoretic: a d-representation must distinguish "
            "the N sub-answers a single relation can contribute, so Ω(N) "
            "nodes are necessary; tightness is witnessed constructively "
            "by the E21 build (linear nodes, quadratic flat answers)"
        ),
        experiment="E21-factorized",
    ),
    LowerBound(
        key="sumprod-triangle",
        problem="semiring sum-product evaluation (SumProd) of the "
        "triangle query",
        ruled_out="better than O(m^{2ω/(ω+1)}) for any commutative "
        "semiring — the Boolean instance is triangle detection",
        hypothesis=TRIANGLE_CONJECTURE.key,
        paper_ref="§8 context; Fan–Koutris, The Fine-Grained Complexity "
        "of Boolean Conjunctive Queries and Sum-Product Problems "
        "(PAPERS.md)",
        reduction_module="repro.reductions.query_to_sumprod",
        derivation=derived(
            TRIANGLE_CONJECTURE.key,
            "boolean-query→sumprod",
            note="Boolean CQ evaluation is the Boolean-semiring instance "
            "of SumProd, so a fast generic sum-product algorithm decides "
            "the triangle join in the same time",
        ),
        experiment="E22-semiring",
    ),
    LowerBound(
        key="sumprod-acyclic-dichotomy",
        problem="semiring sum-product evaluation (SumProd) of cyclic "
        "full conjunctive queries",
        ruled_out="Õ(N) (near-linear) evaluation for any query whose "
        "hypergraph is not α-acyclic — linear time is exactly the "
        "acyclic case the semiring Yannakakis sweep achieves",
        hypothesis=HYPERCLIQUE_CONJECTURE.key,
        paper_ref="§8 context; Fan–Koutris dichotomy (PAPERS.md)",
        reduction_module="repro.relational.semiring",
        derivation=axiom(
            "the hard side of the Fan–Koutris sum-product dichotomy "
            "embeds hyperclique detection into any cyclic SumProd "
            "instance; the embedding machinery is not an in-repo "
            "transform — the easy side is constructive here "
            "(semiring_yannakakis, E22)"
        ),
        experiment="E22-semiring",
    ),
    LowerBound(
        key="enum-delay-dichotomy",
        problem="constant-delay enumeration of acyclic join queries "
        "with projections",
        ruled_out="constant delay after linear preprocessing for "
        "acyclic but non-free-connex queries",
        hypothesis=BMM_CONJECTURE.key,
        paper_ref="§8 ([13] Bagan–Durand–Grandjean, [16] Berkholz et al.)",
        reduction_module="repro.reductions.bmm_to_enumeration",
        derivation=derived(
            BMM_CONJECTURE.key,
            "bmm→star-enumeration",
            note="constant-delay enumeration of π_{l0,l1}(R1(c,l0) ⋈ "
            "R2(c,l1)) after linear preprocessing would emit every "
            "nonzero entry of A·B in O(n^2 + out) time",
        ),
        experiment="E21-factorized",
    ),
)


def all_lower_bounds() -> list[LowerBound]:
    """Every registered lower bound, in paper order."""
    return list(_BOUNDS)


def get_lower_bound(key: str) -> LowerBound:
    """Look up one bound by key.

    Raises
    ------
    InvalidInstanceError
        If no bound with that key is registered.
    """
    for bound in _BOUNDS:
        if bound.key == key:
            return bound
    from ..errors import InvalidInstanceError

    raise InvalidInstanceError(
        f"unknown lower bound {key!r}; known: {[b.key for b in _BOUNDS]}"
    )


def bounds_under(hypothesis_key: str) -> list[LowerBound]:
    """All bounds that hold if ``hypothesis_key`` is assumed — i.e.
    whose own hypothesis is implied by it."""
    get_hypothesis(hypothesis_key)
    return [
        b for b in _BOUNDS if implies(hypothesis_key, b.hypothesis)
    ]
