"""Derivations: how each lower bound follows from its hypothesis.

A :class:`~repro.complexity.bounds.LowerBound` is either

* **derived** — an explicit chain of registered transforms carries
  hardness from a hypothesis to the problem: a fast algorithm for the
  target would ride the chain backwards and refute the hypothesis; or
* an **axiom** — the paper states the bound via an argument this
  library does not implement as a reduction (counting, dichotomy
  machinery, external citations), recorded with an explicit note.

``check_derivation`` validates a derived bound mechanically:

1. every transform name in the chain resolves in the registry;
2. the chain composes (adjacent domains/format tags line up);
3. the implication-graph edge holds — the bound's hypothesis implies
   the hypothesis the chain transfers from, so assuming the bound's
   hypothesis really does yield the hardness the chain propagates;
4. the composed chain is replayed on the first stage's witness
   instance and every fused certificate (including the symbolically
   composed Definition 5.1.3 parameter bound) is re-checked.

``python -m repro.complexity --check-derivations`` runs this over the
whole registry and is wired into CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DerivationError, ReproError
from ..transforms import CertifiedReduction, Transform, compose_chain, get_transform
from .hypotheses import get_hypothesis
from .implications import implies


@dataclass(frozen=True)
class Derivation:
    """The provenance of one lower bound.

    Attributes
    ----------
    hypothesis:
        Key of the hypothesis the transform chain transfers hardness
        from. Empty for axioms.
    chain:
        Names of registered transforms, applied left to right. Empty
        for axioms.
    note:
        For axioms: why no in-repo chain exists (the paper's argument
        in one line). Optional color for derived bounds.
    """

    hypothesis: str = ""
    chain: tuple[str, ...] = ()
    note: str = ""

    @property
    def is_axiom(self) -> bool:
        """True when the bound is paper-stated rather than chain-derived."""
        return not self.chain

    def render(self) -> str:
        """One-line rendering for reports."""
        if self.is_axiom:
            return f"axiom — {self.note}" if self.note else "axiom"
        return f"{self.hypothesis} ⊢ {' » '.join(self.chain)}"


def derived(hypothesis_key: str, *chain: str, note: str = "") -> Derivation:
    """A derivation transferring hardness from ``hypothesis_key``
    along the named transform chain."""
    if not chain:
        raise DerivationError("a derived bound needs at least one transform")
    return Derivation(hypothesis=hypothesis_key, chain=tuple(chain), note=note)


def axiom(note: str) -> Derivation:
    """An explicitly declared paper-stated bound (no in-repo chain)."""
    if not note:
        raise DerivationError("an axiom derivation requires an explanatory note")
    return Derivation(note=note)


def resolve_chain(derivation: Derivation) -> list[Transform]:
    """The registry entries named by a derivation's chain.

    Raises
    ------
    DerivationError
        If some name is unknown (wrapping the registry's error so the
        caller sees which derivation broke).
    """
    transforms = []
    for name in derivation.chain:
        try:
            transforms.append(get_transform(name))
        except ReproError as exc:
            raise DerivationError(str(exc)) from exc
    return transforms


def check_derivation(bound) -> CertifiedReduction | None:
    """Validate one bound's derivation; returns the replayed reduction.

    Axioms validate trivially (returning ``None``); derived bounds go
    through the four-step check described in the module docstring.

    Raises
    ------
    DerivationError
        On any failure, naming the bound and the step that broke.
    """
    derivation = bound.derivation
    if derivation is None:
        raise DerivationError(
            f"lower bound {bound.key!r} has no derivation; every bound must "
            "carry an explicit transform chain or be declared an axiom"
        )
    if derivation.is_axiom:
        return None

    try:
        get_hypothesis(derivation.hypothesis)
        transforms = resolve_chain(derivation)
        composed = compose_chain(transforms)
    except ReproError as exc:
        raise DerivationError(f"bound {bound.key!r}: {exc}") from exc

    if not implies(bound.hypothesis, derivation.hypothesis):
        raise DerivationError(
            f"bound {bound.key!r} conditions on {bound.hypothesis!r}, which "
            f"does not imply the chain's source hypothesis "
            f"{derivation.hypothesis!r} — the implication-graph edge is missing"
        )

    try:
        replay = composed.apply(*composed.witness_args())
        replay.certify()
    except ReproError as exc:
        raise DerivationError(
            f"bound {bound.key!r}: witness replay of chain "
            f"{' » '.join(derivation.chain)} failed: {exc}"
        ) from exc
    return replay


def check_all_derivations() -> "list[tuple[object, CertifiedReduction | None]]":
    """Validate every registered bound; fails on the first broken one.

    Returns the (bound, replayed reduction) pairs so callers can
    report per-bound certificate counts.
    """
    from .bounds import all_lower_bounds

    return [(bound, check_derivation(bound)) for bound in all_lower_bounds()]
