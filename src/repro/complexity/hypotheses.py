"""The complexity hypotheses the paper's lower bounds condition on."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class Hypothesis:
    """A complexity assumption.

    Attributes
    ----------
    key:
        Stable identifier used by lower bounds and the implication graph.
    name:
        Human-readable name.
    statement:
        The formal statement, phrased as in the paper.
    paper_section:
        Where the paper introduces it.
    plausibility:
        The paper's qualitative standing of the assumption, from
        "theorem" (unconditional) through "standard" to "conjecture".
    """

    key: str
    name: str
    statement: str
    paper_section: str
    plausibility: str


UNCONDITIONAL = Hypothesis(
    key="unconditional",
    name="(no assumption)",
    statement="Holds outright; used for information-theoretic bounds "
    "such as Theorem 3.2's answer-size lower bound.",
    paper_section="§3",
    plausibility="theorem",
)

P_NEQ_NP = Hypothesis(
    key="p-neq-np",
    name="P ≠ NP",
    statement="No NP-hard problem admits a polynomial-time algorithm.",
    paper_section="§4",
    plausibility="standard",
)

FPT_NEQ_W1 = Hypothesis(
    key="fpt-neq-w1",
    name="FPT ≠ W[1]",
    statement="Clique is not fixed-parameter tractable: no f(k)·n^{O(1)} "
    "algorithm decides k-Clique.",
    paper_section="§5",
    plausibility="standard",
)

ETH = Hypothesis(
    key="eth",
    name="Exponential-Time Hypothesis (ETH)",
    statement="s_3 > 0: 3SAT with n variables cannot be solved in time "
    "2^{o(n)} (Hypothesis 1); with the Sparsification Lemma, not in "
    "2^{o(n+m)} (Hypothesis 2).",
    paper_section="§6",
    plausibility="standard",
)

SETH = Hypothesis(
    key="seth",
    name="Strong Exponential-Time Hypothesis (SETH)",
    statement="lim_{k→∞} s_k = 1: CNF-SAT with n variables and m clauses "
    "cannot be solved in time (2−ε)^n · m^{O(1)} for any ε > 0 "
    "(Hypothesis 3).",
    paper_section="§7",
    plausibility="controversial",
)

KCLIQUE_CONJECTURE = Hypothesis(
    key="k-clique",
    name="k-clique conjecture",
    statement="No O(n^{(ω−ε)k/3 + c}) algorithm detects k-cliques for any "
    "ε, c > 0: the Nešetřil–Poljak matrix-multiplication bound is optimal.",
    paper_section="§8",
    plausibility="conjecture",
)

HYPERCLIQUE_CONJECTURE = Hypothesis(
    key="hyperclique",
    name="d-uniform hyperclique conjecture",
    statement="For every fixed d ≥ 3 there is no O(n^{(1−ε)k + c}) "
    "algorithm detecting k-cliques in d-uniform hypergraphs for any "
    "ε, c > 0: brute force is optimal.",
    paper_section="§8",
    plausibility="conjecture",
)

OV_CONJECTURE = Hypothesis(
    key="orthogonal-vectors",
    name="Orthogonal Vectors conjecture",
    statement="No O(n^{2−ε} · poly(d)) algorithm decides Orthogonal "
    "Vectors for any ε > 0. Implied by the SETH via the "
    "split-and-enumerate reduction; the workhorse of §7-style "
    "fine-grained lower bounds inside P.",
    paper_section="§7 (fine-grained complexity, [3, 56])",
    plausibility="standard",
)

BMM_CONJECTURE = Hypothesis(
    key="bmm",
    name="combinatorial BMM conjecture",
    statement="No combinatorial algorithm multiplies two Boolean n×n "
    "matrices in time O(n^{3−ε}) for any ε > 0; in particular the "
    "product is not computable in O(n^2) time. The assumption behind "
    "the Bagan–Durand–Grandjean enumeration dichotomy: constant-delay "
    "enumeration of acyclic but non-free-connex queries after linear "
    "preprocessing would compute A·B in O(n^2 + out).",
    paper_section="§8 (enumeration context, [13, 16])",
    plausibility="conjecture",
)

TRIANGLE_CONJECTURE = Hypothesis(
    key="triangle",
    name="Strong Triangle Conjecture",
    statement="No algorithm detects a triangle in time better than "
    "O(m^{2ω/(ω+1)}) in the number of edges m.",
    paper_section="§8",
    plausibility="conjecture",
)

_REGISTRY: dict[str, Hypothesis] = {
    h.key: h
    for h in (
        UNCONDITIONAL,
        P_NEQ_NP,
        FPT_NEQ_W1,
        ETH,
        SETH,
        KCLIQUE_CONJECTURE,
        HYPERCLIQUE_CONJECTURE,
        BMM_CONJECTURE,
        TRIANGLE_CONJECTURE,
        OV_CONJECTURE,
    )
}


def all_hypotheses() -> list[Hypothesis]:
    """Every registered hypothesis, strongest assumptions last."""
    return list(_REGISTRY.values())


def get_hypothesis(key: str) -> Hypothesis:
    if key not in _REGISTRY:
        raise InvalidInstanceError(
            f"unknown hypothesis {key!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]
