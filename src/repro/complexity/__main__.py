"""Command-line entry point for the complexity registry.

``python -m repro.complexity`` prints the hypothesis landscape;
``--check-derivations`` mechanically validates every lower bound's
derivation (chain resolution, composition, implication edge, witness
replay with certificate re-checking) and exits nonzero on the first
failure — the CI ``transforms-selfcheck`` job runs exactly this.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from .report import format_derivation_report, format_landscape


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.complexity",
        description="Inspect and validate the lower-bound registry.",
    )
    parser.add_argument(
        "--check-derivations",
        action="store_true",
        help="replay every derived bound's transform chain on its witness "
        "instance and re-check all fused certificates",
    )
    parser.add_argument(
        "--landscape",
        action="store_true",
        help="print the full hypothesis landscape instead of derivations",
    )
    args = parser.parse_args(argv)

    try:
        if args.landscape:
            print(format_landscape())
        else:
            print(format_derivation_report(validate=args.check_derivations))
    except ReproError as exc:
        print(f"derivation check FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
