"""Human-readable reports over the hypothesis/bound registries."""

from __future__ import annotations

from .bounds import bounds_under
from .hypotheses import all_hypotheses, get_hypothesis
from .implications import stronger_hypotheses, weaker_hypotheses


def format_hypothesis_report(key: str) -> str:
    """Everything the library knows about one hypothesis: statement,
    standing, implications, and the lower bounds it unlocks."""
    h = get_hypothesis(key)
    lines = [
        f"{h.name}  [{h.plausibility}]  ({h.paper_section})",
        f"  {h.statement}",
    ]
    stronger = stronger_hypotheses(key)
    weaker = weaker_hypotheses(key)
    if stronger:
        lines.append(f"  implied by: {', '.join(sorted(stronger))}")
    if weaker:
        lines.append(f"  implies:    {', '.join(sorted(weaker))}")
    bounds = bounds_under(key)
    if bounds:
        lines.append("  lower bounds available under this assumption:")
        for b in bounds:
            lines.append(f"    - {b.problem}: rules out {b.ruled_out}  [{b.paper_ref}]")
    return "\n".join(lines)


def format_landscape() -> str:
    """The full landscape: one report per hypothesis."""
    parts = [format_hypothesis_report(h.key) for h in all_hypotheses()]
    return "\n\n".join(parts)
