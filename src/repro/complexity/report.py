"""Human-readable reports over the hypothesis/bound registries."""

from __future__ import annotations

from .bounds import all_lower_bounds, bounds_under
from .derivations import check_derivation
from .hypotheses import all_hypotheses, get_hypothesis
from .implications import stronger_hypotheses, weaker_hypotheses


def format_hypothesis_report(key: str) -> str:
    """Everything the library knows about one hypothesis: statement,
    standing, implications, and the lower bounds it unlocks."""
    h = get_hypothesis(key)
    lines = [
        f"{h.name}  [{h.plausibility}]  ({h.paper_section})",
        f"  {h.statement}",
    ]
    stronger = stronger_hypotheses(key)
    weaker = weaker_hypotheses(key)
    if stronger:
        lines.append(f"  implied by: {', '.join(sorted(stronger))}")
    if weaker:
        lines.append(f"  implies:    {', '.join(sorted(weaker))}")
    bounds = bounds_under(key)
    if bounds:
        lines.append("  lower bounds available under this assumption:")
        for b in bounds:
            lines.append(f"    - {b.problem}: rules out {b.ruled_out}  [{b.paper_ref}]")
            if b.derivation is not None:
                lines.append(f"      derivation: {b.derivation.render()}")
    return "\n".join(lines)


def format_landscape() -> str:
    """The full landscape: one report per hypothesis."""
    parts = [format_hypothesis_report(h.key) for h in all_hypotheses()]
    return "\n\n".join(parts)


def format_derivation_report(validate: bool = False) -> str:
    """Every lower bound with its derivation chain or axiom note.

    With ``validate=True`` each derived chain is replayed on its
    witness instance and the line reports how many fused certificates
    held — the rendering of ``--check-derivations``.
    """
    lines = ["Lower-bound derivations", "======================="]
    for bound in all_lower_bounds():
        derivation = bound.derivation
        rendered = derivation.render() if derivation is not None else "MISSING"
        lines.append(f"{bound.key}  [{bound.paper_ref}]")
        lines.append(f"  hypothesis: {bound.hypothesis}")
        lines.append(f"  derivation: {rendered}")
        if validate:
            replay = check_derivation(bound)
            if replay is None:
                lines.append("  validated:  axiom (nothing to replay)")
            else:
                lines.append(
                    f"  validated:  {len(replay.certificates)} certificates "
                    f"re-checked on witness; back-map {replay.back_map_name}"
                )
    return "\n".join(lines)
