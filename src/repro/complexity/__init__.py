"""Complexity hypotheses, implications, and lower-bound statements.

The paper's organizing spine (§1, §4–§8): a registry of the
assumptions (P≠NP, FPT≠W[1], ETH, SETH, the k-clique / hyperclique /
triangle conjectures), the implication digraph between them, and
first-class :class:`LowerBound` objects tying each theorem to its
hypothesis and to the module that implements its reduction.
"""

from .hypotheses import (
    ETH,
    FPT_NEQ_W1,
    HYPERCLIQUE_CONJECTURE,
    KCLIQUE_CONJECTURE,
    P_NEQ_NP,
    SETH,
    TRIANGLE_CONJECTURE,
    UNCONDITIONAL,
    Hypothesis,
    all_hypotheses,
    get_hypothesis,
)
from .implications import (
    implication_graph,
    implies,
    stronger_hypotheses,
    weaker_hypotheses,
)
from .bounds import LowerBound, all_lower_bounds, bounds_under, get_lower_bound
from .derivations import (
    Derivation,
    axiom,
    check_all_derivations,
    check_derivation,
    derived,
    resolve_chain,
)
from .paper_map import PAPER_MAP, format_paper_map, modules_for
from .report import (
    format_derivation_report,
    format_hypothesis_report,
    format_landscape,
)

__all__ = [
    "Derivation",
    "ETH",
    "FPT_NEQ_W1",
    "HYPERCLIQUE_CONJECTURE",
    "Hypothesis",
    "KCLIQUE_CONJECTURE",
    "LowerBound",
    "PAPER_MAP",
    "P_NEQ_NP",
    "SETH",
    "TRIANGLE_CONJECTURE",
    "UNCONDITIONAL",
    "all_hypotheses",
    "all_lower_bounds",
    "axiom",
    "bounds_under",
    "get_lower_bound",
    "check_all_derivations",
    "check_derivation",
    "derived",
    "format_derivation_report",
    "format_hypothesis_report",
    "format_landscape",
    "format_paper_map",
    "get_hypothesis",
    "implication_graph",
    "implies",
    "modules_for",
    "resolve_chain",
    "stronger_hypotheses",
    "weaker_hypotheses",
]
