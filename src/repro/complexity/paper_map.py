"""Paper-section → module navigation map, as data.

A machine-readable index of where each section of the paper lives in
this library. Used by documentation tooling and by tests that keep the
map honest (every named module must import; every section of the paper
must appear).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SectionEntry:
    """One paper section and its implementation sites."""

    section: str
    title: str
    modules: tuple[str, ...]
    experiments: tuple[str, ...] = ()


PAPER_MAP: tuple[SectionEntry, ...] = (
    SectionEntry(
        "§2.1",
        "Database queries",
        ("repro.relational.query", "repro.relational.database", "repro.relational.relation"),
    ),
    SectionEntry(
        "§2.2",
        "Constraint satisfaction problems",
        ("repro.csp.instance", "repro.reductions.query_to_csp"),
    ),
    SectionEntry(
        "§2.3",
        "Graph problems",
        (
            "repro.graphs.graph",
            "repro.graphs.homomorphism",
            "repro.graphs.subgraph_iso",
            "repro.reductions.csp_to_graph",
        ),
    ),
    SectionEntry(
        "§2.4",
        "Relational structures",
        (
            "repro.structures.structure",
            "repro.structures.homomorphism",
            "repro.reductions.csp_to_structures",
        ),
    ),
    SectionEntry(
        "§3",
        "Unconditional lower bounds (AGM)",
        (
            "repro.hypergraph.covers",
            "repro.relational.estimate",
            "repro.relational.wcoj",
            "repro.relational.kernels",
            "repro.generators.agm",
            "repro.relational.planner",
        ),
        ("E1-agm-upper", "E2-agm-tight", "E3-wcoj", "E19-kernels"),
    ),
    SectionEntry(
        "§4",
        "NP-hardness, treewidth, Schaefer",
        (
            "repro.treewidth.decomposition",
            "repro.treewidth.exact",
            "repro.csp.treewidth_dp",
            "repro.sat.schaefer",
            "repro.graphs.special",
        ),
        ("E4-freuder", "E5-schaefer", "E17-phase-transition"),
    ),
    SectionEntry(
        "§5",
        "Parameterized intractability",
        (
            "repro.graphs.vertex_cover",
            "repro.graphs.color_coding",
            "repro.reductions.clique_to_csp",
            "repro.reductions.clique_to_special",
            "repro.reductions.parameterized_examples",
            "repro.structures.core",
            "repro.structures.solve",
        ),
        ("E6-special", "E14-vc-fpt"),
    ),
    SectionEntry(
        "§6",
        "The Exponential-Time Hypothesis",
        (
            "repro.reductions.sat_to_csp",
            "repro.reductions.sat_to_coloring",
            "repro.graphs.clique",
        ),
        ("E7-clique-csp", "E8-treewidth-opt", "E16-hom-counting"),
    ),
    SectionEntry(
        "§7",
        "The Strong Exponential-Time Hypothesis",
        (
            "repro.graphs.dominating_set",
            "repro.reductions.domset_to_csp",
            "repro.reductions.grouping",
            "repro.sat.cdcl",
            "repro.finegrained.orthogonal_vectors",
            "repro.finegrained.sat_to_ov",
            "repro.finegrained.edit_distance",
        ),
        ("E9-domset", "E18-finegrained"),
    ),
    SectionEntry(
        "§8",
        "Other conjectures",
        (
            "repro.graphs.triangle",
            "repro.graphs.hyperclique",
            "repro.relational.enumeration",
            "repro.relational.semiring",
            "repro.reductions.query_to_sumprod",
        ),
        (
            "E10-kclique-mm",
            "E11-triangle",
            "E12-hyperclique",
            "E15-enumeration",
            "E21-factorized",
            "E22-semiring",
        ),
    ),
    SectionEntry(
        "§9",
        "Conclusions (the landscape)",
        (
            "repro.complexity.hypotheses",
            "repro.complexity.bounds",
            "repro.complexity.implications",
            "repro.complexity.derivations",
            "repro.transforms.base",
            "repro.transforms.registry",
            "repro.transforms.compose",
        ),
        ("E13-hypotheses", "E20-transforms"),
    ),
)


def modules_for(section: str) -> tuple[str, ...]:
    """The implementation modules of one paper section."""
    for entry in PAPER_MAP:
        if entry.section == section:
            return entry.modules
    raise KeyError(f"unknown paper section {section!r}")


def format_paper_map() -> str:
    """Render the map as aligned text."""
    lines = []
    for entry in PAPER_MAP:
        lines.append(f"{entry.section}  {entry.title}")
        for module in entry.modules:
            lines.append(f"      {module}")
        if entry.experiments:
            lines.append(f"      experiments: {', '.join(entry.experiments)}")
    return "\n".join(lines)
