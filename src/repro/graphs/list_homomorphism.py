"""List homomorphisms (the paper's reference [33]).

A list homomorphism from H to G maps each vertex v of H into a
prescribed list L(v) ⊆ V(G) while preserving edges — the graph-domain
face of CSP instances with unary constraints, and the setting of
Egri–Marx–Rzążewski's bounded-treewidth classification. Implemented by
translating to a CSP (binary adjacency constraints + unary list
constraints) so both the search and the Theorem 4.2-style treewidth
route are available.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..counting import CostCounter
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def _to_csp(
    source: Graph,
    target: Graph,
    lists: Mapping[Vertex, Sequence[Vertex]],
):
    from ..csp.instance import Constraint, CSPInstance

    if set(lists) != set(source.vertices):
        raise InvalidInstanceError("need exactly one list per source vertex")
    target_vertices = set(target.vertices)
    for v, allowed in lists.items():
        bad = [u for u in allowed if u not in target_vertices]
        if bad:
            raise InvalidInstanceError(
                f"list of {v!r} mentions non-target vertices {bad!r}"
            )

    symmetric = set()
    for u, w in target.edges():
        symmetric.add((u, w))
        symmetric.add((w, u))

    constraints = [
        Constraint((v,), [(u,) for u in lists[v]]) for v in source.vertices
    ]
    constraints += [
        Constraint((u, w), symmetric) for u, w in source.edges()
    ]
    if not target_vertices:
        raise InvalidInstanceError("empty target graph")
    return CSPInstance(source.vertices, target.vertices, constraints)


def find_list_homomorphism(
    source: Graph,
    target: Graph,
    lists: Mapping[Vertex, Sequence[Vertex]],
    counter: CostCounter | None = None,
) -> dict[Vertex, Vertex] | None:
    """One list homomorphism H → G, or ``None``.

    Solved by Freuder's DP over a tree decomposition of H's primal
    graph (H itself), so bounded-treewidth patterns are polynomial —
    the upper-bound side of [33].

    Complexity: O(Π_v |L(v)| · m_G) backtracking worst case — n_H^{n_G}
        when every list is full.
    """
    from ..csp.treewidth_dp import solve_with_treewidth

    if source.num_vertices == 0:
        return {}
    instance = _to_csp(source, target, lists)
    return solve_with_treewidth(instance, counter=counter)


def count_list_homomorphisms(
    source: Graph,
    target: Graph,
    lists: Mapping[Vertex, Sequence[Vertex]],
    counter: CostCounter | None = None,
) -> int:
    """The number of list homomorphisms H → G.

    Complexity: O(Π_v |L(v)| · m_G) — exhaustive search over
        list-respecting maps.
    """
    from ..csp.treewidth_dp import count_with_treewidth

    if source.num_vertices == 0:
        return 1
    instance = _to_csp(source, target, lists)
    return count_with_treewidth(instance, counter=counter)


def is_list_homomorphism(
    source: Graph,
    target: Graph,
    lists: Mapping[Vertex, Sequence[Vertex]],
    mapping: Mapping[Vertex, Vertex],
) -> bool:
    """Verify a candidate list homomorphism."""
    if set(mapping) != set(source.vertices):
        return False
    if any(mapping[v] not in set(lists[v]) for v in source.vertices):
        return False
    return all(
        target.has_edge(mapping[u], mapping[w]) for u, w in source.edges()
    )
