"""k-Hypercliques in d-uniform hypergraphs (§8).

The d-uniform hyperclique conjecture: for ``d ≥ 3`` no algorithm beats
brute force ``O(n^{(1-ε)k+c})`` — matrix multiplication helps only for
``d = 2``. This module provides the d-uniform container and the brute
force that the conjecture says is optimal.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Hashable, Iterable

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError

Vertex = Hashable


class Hypergraph:
    """A d-uniform hypergraph: every hyperedge has exactly d vertices."""

    def __init__(self, d: int, vertices: Iterable[Vertex] = ()) -> None:
        if d < 1:
            raise InvalidInstanceError(f"uniformity d must be >= 1, got {d}")
        self.d = d
        self._vertices: dict[Vertex, None] = {v: None for v in vertices}
        self._edges: set[frozenset[Vertex]] = set()

    def add_vertex(self, v: Vertex) -> None:
        self._vertices.setdefault(v, None)

    def add_edge(self, edge: Iterable[Vertex]) -> None:
        """Add a hyperedge; it must have exactly d distinct vertices."""
        e = frozenset(edge)
        if len(e) != self.d:
            raise InvalidInstanceError(
                f"hyperedge {sorted(map(repr, e))} has {len(e)} vertices, expected {self.d}"
            )
        for v in e:
            self.add_vertex(v)
        self._edges.add(e)

    @property
    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, edge: Iterable[Vertex]) -> bool:
        return frozenset(edge) in self._edges

    def edges(self) -> list[frozenset[Vertex]]:
        return list(self._edges)

    def __repr__(self) -> str:
        return f"Hypergraph(d={self.d}, |V|={self.num_vertices}, |E|={self.num_edges})"


def is_hyperclique(hypergraph: Hypergraph, candidate: Iterable[Vertex]) -> bool:
    """True iff all C(|candidate|, d) potential hyperedges are present."""
    vs = list(candidate)
    if len(vs) < hypergraph.d:
        return True
    return all(
        hypergraph.has_edge(combo) for combo in combinations(vs, hypergraph.d)
    )


def find_hyperclique_bruteforce(
    hypergraph: Hypergraph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Find a k-hyperclique by trying every k-subset — conjecturally
    optimal for d ≥ 3 (§8).

    Complexity: O(n^k · k^d) — all k-subsets times the d-edge check;
        the hyperclique conjecture says n^{k−ε} is impossible for d ≥
        3.
    """
    if k < 0:
        raise InvalidInstanceError(f"k must be nonnegative, got {k}")
    if k < hypergraph.d:
        vs = hypergraph.vertices
        return tuple(vs[:k]) if len(vs) >= k else None
    for candidate in combinations(hypergraph.vertices, k):
        charge(counter)
        if is_hyperclique(hypergraph, candidate):
            return candidate
    return None
