"""Vertex Cover (§5).

The paper's running example of fixed-parameter tractability: the
bounded-depth search tree gives ``2^k · n^{O(1)}``, in contrast with the
``n^k`` brute force. Experiment E14 measures exactly this contrast.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def is_vertex_cover(graph: Graph, candidate: Iterable[Vertex]) -> bool:
    """True iff every edge has an endpoint in ``candidate``."""
    chosen = set(candidate)
    return all(u in chosen or v in chosen for u, v in graph.edges())


def find_vertex_cover_bruteforce(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Try all ``C(n, ≤k)`` subsets — the ``O(n^k)`` baseline.

    Complexity: O(n^k · m) — all k-subsets times the coverage check.
    """
    if k < 0:
        raise InvalidInstanceError(f"k must be nonnegative, got {k}")
    if graph.num_edges == 0:
        return ()
    vertices = graph.vertices
    for size in range(0, min(k, len(vertices)) + 1):
        for candidate in combinations(vertices, size):
            charge(counter, graph.num_edges)
            if is_vertex_cover(graph, candidate):
                return candidate
    return None


def find_vertex_cover_fpt(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """The ``2^k`` bounded search tree of §5.

    Pick any uncovered edge ``{u, v}``: any cover of size ≤ k must
    contain ``u`` or ``v``; branch on both choices with budget ``k-1``.

    Complexity: O(2^k · (n + m)) — the depth-k branching tree on
        endpoints of an uncovered edge; FPT in k.
    """
    if k < 0:
        raise InvalidInstanceError(f"k must be nonnegative, got {k}")

    def search(g: Graph, budget: int) -> tuple[Vertex, ...] | None:
        charge(counter)
        edge = next(g.edges(), None)
        if edge is None:
            return ()
        if budget == 0:
            return None
        u, v = edge
        for pick in (u, v):
            rest = g.copy()
            rest.remove_vertex(pick)
            sub = search(rest, budget - 1)
            if sub is not None:
                return (pick,) + sub
        return None

    return search(graph.copy(), k)
