"""k-Clique algorithms (§5, §6, §8).

Two strategies from the paper:

* brute force over all ``C(n, k)`` vertex subsets — the ``n^k`` baseline
  that Theorem 6.3 says cannot be beaten by more than a constant factor
  in the exponent (assuming ETH);
* the Nešetřil–Poljak split [53]: for ``k`` divisible by 3, build the
  auxiliary graph on ``(k/3)``-cliques and look for a *triangle* with
  matrix multiplication, giving ``O(n^{ωk/3})``. The k-clique conjecture
  (§8) states this exponent is optimal.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def has_clique(graph: Graph, k: int, counter: CostCounter | None = None) -> bool:
    """Decide whether ``graph`` has a clique of size ``k`` (brute force).

    Complexity: O(n^k · k²) via the brute-force search.
    """
    return find_clique_bruteforce(graph, k, counter) is not None


def find_clique_bruteforce(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Find a k-clique by enumerating vertex subsets.

    This is the ``O(n^k)`` baseline of §5. Enumeration prunes
    lexicographically: a subset is only extended while it stays a
    clique, so the worst case is attained only on dense graphs.

    Returns a clique as a tuple of vertices, or ``None``.

    Complexity: O(n^k · k²) — all k-subsets times the pair check; the
        ETH rules out f(k) · n^{o(k)} (Theorem 6.3).
    """
    if k < 0:
        raise InvalidInstanceError(f"clique size must be nonnegative, got {k}")
    if k == 0:
        return ()
    vertices = graph.vertices
    if k == 1:
        return (vertices[0],) if vertices else None

    # Depth-first search over ordered subsets, keeping the partial set a
    # clique. Candidates for extension are the common neighbors.
    order = {v: i for i, v in enumerate(vertices)}

    def extend(partial: list[Vertex], candidates: list[Vertex]) -> tuple[Vertex, ...] | None:
        if len(partial) == k:
            return tuple(partial)
        for i, v in enumerate(candidates):
            charge(counter)
            nbrs = graph.neighbors(v)
            new_candidates = [u for u in candidates[i + 1:] if u in nbrs]
            if len(partial) + 1 + len(new_candidates) < k:
                continue
            found = extend(partial + [v], new_candidates)
            if found is not None:
                return found
        return None

    return extend([], sorted(vertices, key=order.__getitem__))


def max_clique(graph: Graph, counter: CostCounter | None = None) -> tuple[Vertex, ...]:
    """The largest clique, by decreasing k from a degeneracy upper bound."""
    if graph.num_vertices == 0:
        return ()
    upper = max(graph.degree(v) for v in graph.vertices) + 1
    for k in range(upper, 0, -1):
        clique = find_clique_bruteforce(graph, k, counter)
        if clique is not None:
            return clique
    return ()


def _adjacency_matrix(graph: Graph, index: dict[Vertex, int]) -> np.ndarray:
    n = len(index)
    mat = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges():
        i, j = index[u], index[v]
        mat[i, j] = mat[j, i] = True
    return mat


def find_clique_matrix(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Find a k-clique via the Nešetřil–Poljak reduction to triangles.

    Requires ``k`` divisible by 3 (pad with brute force otherwise by
    calling :func:`find_clique_bruteforce`). Builds the auxiliary graph
    whose vertices are the ``(k/3)``-cliques of ``graph``, with two
    auxiliary vertices adjacent when their union is a ``(2k/3)``-clique,
    then detects a triangle by boolean matrix multiplication. Runtime is
    ``O(n^{ωk/3})`` with fast matrix multiplication; numpy provides the
    practical dense analogue.

    Complexity: O(n^{3⌈k/3⌉}) arithmetic via Boolean matrix products on
        ⌈k/3⌉-sets (Nešetřil–Poljak; n^{ω⌈k/3⌉} with fast
        multiplication).
    """
    if k % 3 != 0 or k <= 0:
        raise InvalidInstanceError(
            f"Nešetřil–Poljak split requires k divisible by 3, got {k}"
        )
    part = k // 3
    vertices = graph.vertices
    small_cliques = [
        combo
        for combo in combinations(sorted(vertices, key=repr), part)
        if graph.is_clique(combo)
    ]
    charge(counter, len(small_cliques))
    if not small_cliques:
        return None

    m = len(small_cliques)
    aux = np.zeros((m, m), dtype=bool)
    members = [set(c) for c in small_cliques]
    for i in range(m):
        for j in range(i + 1, m):
            charge(counter)
            if members[i] & members[j]:
                continue
            union_is_clique = all(
                graph.has_edge(u, v) for u in small_cliques[i] for v in small_cliques[j]
            )
            if union_is_clique:
                aux[i, j] = aux[j, i] = True

    # Triangle in the auxiliary graph == k-clique in the original graph.
    paths2 = aux @ aux
    charge(counter, m * m)
    tri = np.logical_and(paths2, aux)
    hits = np.argwhere(tri)
    if hits.size == 0:
        return None
    i, j = map(int, hits[0])
    # Recover the middle clique l with aux[i,l] and aux[l,j].
    for l in range(m):
        if aux[i, l] and aux[l, j]:
            return tuple(small_cliques[i] + small_cliques[l] + small_cliques[j])
    raise AssertionError("matrix witness disappeared during recovery")
