"""Color coding: FPT detection of k-paths (Alon–Yuster–Zwick).

§5's theme made concrete beyond Vertex Cover: finding a simple path on
k vertices is W[1]-easy — color coding gives 2^{O(k)} · poly(n):

1. randomly color vertices with k colors;
2. a *colorful* path (all colors distinct) is found by dynamic
   programming over (vertex, color subset) states in 2^k · m time;
3. a k-path survives a random coloring with probability k!/k^k ≥ e^{-k},
   so e^k · ln(1/δ) rounds find one with probability ≥ 1 − δ.

Randomness is seeded, so runs are reproducible; the derandomized
fallback (try every coloring) is exposed for tiny instances and used by
the tests as an oracle.
"""

from __future__ import annotations

import math
import random
from itertools import product

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def find_k_path_color_coding(
    graph: Graph,
    k: int,
    seed: int | random.Random = 0,
    failure_probability: float = 1e-3,
    counter: CostCounter | None = None,
) -> tuple[Vertex, ...] | None:
    """Find a simple path on k vertices, with one-sided error.

    Returns a path (tuple of k distinct vertices, consecutive ones
    adjacent) or ``None``. ``None`` answers are wrong with probability
    at most ``failure_probability`` (yes-instances only; no-instances
    are always answered correctly).

    Complexity: O(trials · 2^k · k · m); e^k trials make the failure
        probability constant, for O((2e)^k · k · m) in expectation.
    """
    if k < 1:
        raise InvalidInstanceError(f"k must be >= 1, got {k}")
    if k == 1:
        vertices = graph.vertices
        return (vertices[0],) if vertices else None
    if graph.num_vertices < k:
        return None

    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    rounds = max(1, math.ceil(math.e**k * math.log(1.0 / failure_probability)))
    for __ in range(rounds):
        coloring = {v: rng.randrange(k) for v in graph.vertices}
        path = _colorful_path(graph, k, coloring, counter)
        if path is not None:
            return path
    return None


def find_k_path_exhaustive_colorings(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Derandomized variant: try every k-coloring of V(G).

    Exponential in |V(G)| — an oracle for tests on tiny graphs (a real
    derandomization would use a k-perfect hash family).

    Complexity: O(k^n · 2^k · k · m) — every coloring times the
        color-set DP; exponentially worse than the randomized variant.
    """
    if k < 1:
        raise InvalidInstanceError(f"k must be >= 1, got {k}")
    vertices = graph.vertices
    if k == 1:
        return (vertices[0],) if vertices else None
    if len(vertices) < k:
        return None
    for assignment in product(range(k), repeat=len(vertices)):
        coloring = dict(zip(vertices, assignment))
        path = _colorful_path(graph, k, coloring, counter)
        if path is not None:
            return path
    return None


def _colorful_path(
    graph: Graph,
    k: int,
    coloring: dict[Vertex, int],
    counter: CostCounter | None,
) -> tuple[Vertex, ...] | None:
    """DP for a path using each of the k colors exactly once.

    State: (end vertex v, set S of colors used) → predecessor link.
    2^k · (n + m) states/transitions.
    """
    # table[(v, mask)] = predecessor vertex (or None for path start).
    table: dict[tuple[Vertex, int], Vertex | None] = {}
    for v in graph.vertices:
        charge(counter)
        table[(v, 1 << coloring[v])] = None

    full = (1 << k) - 1
    # Process masks in increasing popcount order (increasing value works
    # since adding a color only increases the mask).
    frontier = sorted(table, key=lambda key: key[1])
    queue = list(frontier)
    position = 0
    while position < len(queue):
        v, mask = queue[position]
        position += 1
        if mask == full:
            return _reconstruct(table, v, mask, coloring)
        for u in graph.neighbors(v):
            charge(counter)
            color_bit = 1 << coloring[u]
            if mask & color_bit:
                continue
            state = (u, mask | color_bit)
            if state not in table:
                table[state] = v
                queue.append(state)
    return None


def _reconstruct(
    table: dict[tuple[Vertex, int], Vertex | None],
    end: Vertex,
    mask: int,
    coloring: dict[Vertex, int],
) -> tuple[Vertex, ...]:
    path = [end]
    current, current_mask = end, mask
    while True:
        predecessor = table[(current, current_mask)]
        if predecessor is None:
            break
        current_mask &= ~(1 << coloring[current])
        current = predecessor
        path.append(current)
    return tuple(reversed(path))


def is_simple_path(graph: Graph, path: tuple[Vertex, ...]) -> bool:
    """Verify a witness: distinct vertices, consecutive adjacency."""
    if len(set(path)) != len(path):
        return False
    return all(graph.has_edge(a, b) for a, b in zip(path, path[1:]))
