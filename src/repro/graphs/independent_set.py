"""Independent Set (§5).

The paper notes Clique and Independent Set are equivalent by graph
complementation — the complement trick is itself a (trivial but
instructive) parameterized reduction, so both directions are exposed.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..counting import CostCounter
from .clique import find_clique_bruteforce
from .graph import Graph, Vertex


def is_independent_set(graph: Graph, candidate: Iterable[Vertex]) -> bool:
    """True iff no two vertices of ``candidate`` are adjacent."""
    chosen = list(candidate)
    return not any(
        graph.has_edge(chosen[i], chosen[j])
        for i in range(len(chosen))
        for j in range(i + 1, len(chosen))
    )


def find_independent_set_bruteforce(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Find an independent set of size k by direct subset search.

    Complexity: O(n^k · k²) — all k-subsets times the non-edge check.
    """
    complement = graph.complement()
    return find_clique_bruteforce(complement, k, counter)


def find_independent_set_via_clique(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """The §5 reduction made explicit: k-IS in G == k-clique in Ḡ.

    Complexity: O(n² + n^k · k²): complement construction plus the
        clique search on it.
    """
    return find_clique_bruteforce(graph.complement(), k, counter)
