"""Special graphs (Definition 4.3) and the Special CSP solver.

A graph is *special* if it has exactly two connected components: a
k-clique and a path on exactly ``2^k`` vertices. The paper uses Special
CSP as a concrete, pedestrian candidate for an NP-intermediate problem:
the path part is easy, the clique part is brute-forceable in ``n^k``
with ``k ≤ log n``, giving quasipolynomial time ``n^{O(log n)}`` — and
the ETH (via Theorem 6.3) rules out ``n^{o(log n)}``.
"""

from __future__ import annotations

from ..counting import CostCounter
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def make_special_graph(k: int, clique_prefix: str = "c", path_prefix: str = "p") -> Graph:
    """Build the special graph for parameter ``k``: a k-clique on
    vertices ``c0..c{k-1}`` plus a path on ``2^k`` vertices ``p0..``.
    """
    if k < 1:
        raise InvalidInstanceError(f"special graphs need k >= 1, got {k}")
    graph = Graph()
    clique = [f"{clique_prefix}{i}" for i in range(k)]
    for v in clique:
        graph.add_vertex(v)
    for i in range(k):
        for j in range(i + 1, k):
            graph.add_edge(clique[i], clique[j])
    path = [f"{path_prefix}{i}" for i in range(2**k)]
    for v in path:
        graph.add_vertex(v)
    for a, b in zip(path, path[1:]):
        graph.add_edge(a, b)
    return graph


def special_graph_parts(graph: Graph) -> tuple[set[Vertex], list[Vertex]] | None:
    """Decompose a special graph into (clique vertices, path in order).

    Returns ``None`` if the graph is not special. A single vertex
    component counts as a 1-clique or a length-1 path; the sizes must
    satisfy ``|path| = 2^{|clique|}`` and the component structure must
    match exactly.
    """
    components = graph.connected_components()
    if len(components) != 2:
        return None
    for clique_part, path_part in (components, components[::-1]):
        if not graph.is_clique(clique_part):
            continue
        path = _as_path(graph, path_part)
        if path is None:
            continue
        k = len(clique_part)
        if len(path) == 2**k:
            return set(clique_part), path
    return None


def is_special_graph(graph: Graph) -> bool:
    """Recognize Definition 4.3 graphs."""
    return special_graph_parts(graph) is not None


def _as_path(graph: Graph, component: set[Vertex]) -> list[Vertex] | None:
    """Return the component's vertices in path order, or None if it is
    not a simple path."""
    if len(component) == 1:
        return list(component)
    endpoints = [v for v in component if len(graph.neighbors(v) & component) == 1]
    if len(endpoints) != 2:
        return None
    if any(len(graph.neighbors(v) & component) > 2 for v in component):
        return None
    order = [endpoints[0]]
    seen = {endpoints[0]}
    while len(order) < len(component):
        nxt = graph.neighbors(order[-1]) & component - seen
        if len(nxt) != 1:
            return None
        v = nxt.pop()
        order.append(v)
        seen.add(v)
    return order


def solve_special_csp(instance, counter: CostCounter | None = None):
    """Solve a Special CSP instance with the §4 two-phase strategy.

    The instance's primal graph must be special. The path component is
    solved by linear-time dynamic programming (it has treewidth 1); the
    clique component by brute force over ``|D|^k`` assignments with
    ``k ≤ log₂ n``. Together: quasipolynomial time, the best possible
    under the ETH.

    Parameters
    ----------
    instance:
        A :class:`repro.csp.CSPInstance` whose primal graph satisfies
        Definition 4.3.

    Returns
    -------
    A satisfying assignment dict, or ``None``.

    Complexity: O(|D|^{log₂ n} · |C| + n · |D|²) — brute force on the ≤
        log₂ n clique variables, linear DP on the path;
        quasipolynomial, optimal under ETH (the n^{o(log n)} bound).
    """
    # Imported here to avoid a package cycle: csp builds on graphs.
    from ..csp.bruteforce import solve_bruteforce
    from ..csp.instance import CSPInstance
    from ..csp.treewidth_dp import solve_with_treewidth

    if not isinstance(instance, CSPInstance):
        raise InvalidInstanceError("solve_special_csp expects a CSPInstance")
    parts = special_graph_parts(instance.primal_graph())
    if parts is None:
        raise InvalidInstanceError("primal graph is not special (Definition 4.3)")
    clique_vars, path_vars = parts

    clique_instance = instance.restrict(clique_vars)
    path_instance = instance.restrict(set(path_vars))

    clique_solution = solve_bruteforce(clique_instance, counter=counter)
    if clique_solution is None:
        return None
    path_solution = solve_with_treewidth(path_instance, counter=counter)
    if path_solution is None:
        return None
    return {**clique_solution, **path_solution}
