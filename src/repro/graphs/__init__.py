"""Graph substrate: the third of the paper's four domains (§2.3).

Provides the plain graph/digraph containers plus every graph algorithm
the paper's upper and lower bounds refer to: clique finding (brute force
and the Nešetřil–Poljak matrix-multiplication split), triangle detection
(enumeration, matrix multiplication, Alon–Yuster–Zwick), dominating set,
vertex cover (FPT search tree), independent set, graph homomorphisms,
partitioned subgraph isomorphism, the "special" graphs of Definition
4.3, and k-hypercliques in d-uniform hypergraphs (§8).
"""

from .graph import DiGraph, Graph
from .clique import (
    find_clique_bruteforce,
    find_clique_matrix,
    has_clique,
    max_clique,
)
from .color_coding import (
    find_k_path_color_coding,
    find_k_path_exhaustive_colorings,
    is_simple_path,
)
from .triangle import (
    count_triangles_matrix,
    find_triangle_ayz,
    find_triangle_enumeration,
    find_triangle_matrix,
    has_triangle,
)
from .dominating_set import (
    find_dominating_set_bruteforce,
    greedy_dominating_set,
    is_dominating_set,
)
from .vertex_cover import (
    find_vertex_cover_bruteforce,
    find_vertex_cover_fpt,
    is_vertex_cover,
)
from .independent_set import (
    find_independent_set_bruteforce,
    find_independent_set_via_clique,
    is_independent_set,
)
from .homomorphism import (
    count_graph_homomorphisms,
    count_graph_homomorphisms_treewidth,
    find_graph_homomorphism,
    is_graph_homomorphism,
)
from .list_homomorphism import (
    count_list_homomorphisms,
    find_list_homomorphism,
    is_list_homomorphism,
)
from .subgraph_iso import (
    find_partitioned_subgraph,
    find_subgraph_isomorphism,
)
from .special import (
    is_special_graph,
    make_special_graph,
    solve_special_csp,
    special_graph_parts,
)
from .hyperclique import (
    Hypergraph as UniformHypergraph,
    find_hyperclique_bruteforce,
    is_hyperclique,
)

__all__ = [
    "DiGraph",
    "Graph",
    "UniformHypergraph",
    "count_graph_homomorphisms",
    "count_graph_homomorphisms_treewidth",
    "count_list_homomorphisms",
    "count_triangles_matrix",
    "find_clique_bruteforce",
    "find_clique_matrix",
    "find_dominating_set_bruteforce",
    "find_graph_homomorphism",
    "find_hyperclique_bruteforce",
    "find_independent_set_bruteforce",
    "find_independent_set_via_clique",
    "find_k_path_color_coding",
    "find_list_homomorphism",
    "find_k_path_exhaustive_colorings",
    "find_partitioned_subgraph",
    "find_subgraph_isomorphism",
    "find_triangle_ayz",
    "find_triangle_enumeration",
    "find_triangle_matrix",
    "find_vertex_cover_bruteforce",
    "find_vertex_cover_fpt",
    "greedy_dominating_set",
    "has_clique",
    "has_triangle",
    "is_dominating_set",
    "is_graph_homomorphism",
    "is_hyperclique",
    "is_independent_set",
    "is_list_homomorphism",
    "is_simple_path",
    "is_special_graph",
    "is_vertex_cover",
    "make_special_graph",
    "max_clique",
    "solve_special_csp",
    "special_graph_parts",
]
