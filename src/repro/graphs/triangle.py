"""Triangle detection (§8, the triangle conjecture).

Three algorithms whose relative performance the paper discusses:

* edge/neighbor enumeration — ``O(sum of min-degrees)``, at worst
  ``O(m^{3/2})`` with the standard degree-ordering trick;
* boolean matrix multiplication over the ``d x d`` adjacency matrix —
  ``O(d^ω)`` in the domain size ``d``;
* Alon–Yuster–Zwick [7] — split vertices at a degree threshold
  ``Δ = m^{(ω-1)/(ω+1)}``; handle low-degree vertices by enumerating
  their neighbor pairs and high-degree vertices (at most ``2m/Δ`` of
  them) by matrix multiplication, for ``O(m^{2ω/(ω+1)})`` total. The
  Strong Triangle Conjecture states this is optimal in ``m``.
"""

from __future__ import annotations

import numpy as np

from ..counting import CostCounter, charge
from .graph import Graph, Vertex

#: The best known matrix multiplication exponent cited by the paper
#: (Alman & Vassilevska Williams 2021). Used only in *cost models*;
#: numpy's actual multiply is cubic/BLAS.
OMEGA = 2.3729

Triangle = tuple[Vertex, Vertex, Vertex]


def has_triangle(graph: Graph, counter: CostCounter | None = None) -> bool:
    """Decide triangle existence via enumeration.

    Complexity: O(m^{3/2}) via the edge-enumeration search.
    """
    return find_triangle_enumeration(graph, counter) is not None


def find_triangle_naive(
    graph: Graph, counter: CostCounter | None = None
) -> Triangle | None:
    """Naive detection: for every vertex, scan all neighbor pairs.

    Costs Σ_v deg(v)² — quadratic in m on skewed-degree graphs, the
    baseline the degree-ordered and AYZ methods improve on.

    Complexity: O(n³) — every vertex triple.
    """
    for u in graph.vertices:
        nbrs = sorted(graph.neighbors(u), key=repr)
        for i, v in enumerate(nbrs):
            v_nbrs = graph.neighbors(v)
            for w in nbrs[i + 1:]:
                charge(counter)
                if w in v_nbrs:
                    return (u, v, w)
    return None


def find_triangle_enumeration(
    graph: Graph, counter: CostCounter | None = None
) -> Triangle | None:
    """Find a triangle by scanning each edge's endpoint neighborhoods.

    Vertices are processed in nondecreasing degree order and each edge
    is charged to its lower-degree endpoint, the classic ``O(m^{3/2})``
    bound.

    Complexity: O(m^{3/2}) — each edge intersects the neighborhood of
        its lower-degree endpoint.
    """
    order = sorted(graph.vertices, key=graph.degree)
    rank = {v: i for i, v in enumerate(order)}
    for u in order:
        higher = [v for v in graph.neighbors(u) if rank[v] > rank[u]]
        for i, v in enumerate(higher):
            v_nbrs = graph.neighbors(v)
            for w in higher[i + 1:]:
                charge(counter)
                if w in v_nbrs:
                    return (u, v, w)
    return None


def _adjacency(graph: Graph) -> tuple[np.ndarray, list[Vertex]]:
    vertices = graph.vertices
    index = {v: i for i, v in enumerate(vertices)}
    mat = np.zeros((len(vertices), len(vertices)), dtype=bool)
    for u, v in graph.edges():
        mat[index[u], index[v]] = mat[index[v], index[u]] = True
    return mat, vertices


def find_triangle_matrix(
    graph: Graph, counter: CostCounter | None = None
) -> Triangle | None:
    """Find a triangle via A² ∧ A on the adjacency matrix.

    This is the ``O(d^ω)`` method: ``(A²)[i,j] > 0`` and ``A[i,j]``
    together witness a path ``i - l - j`` closed by the edge ``ij``.

    Complexity: O(n^ω) with fast matrix multiplication (numpy's product
        is cubic in practice but cache-efficient).
    """
    if graph.num_vertices == 0:
        return None
    mat, vertices = _adjacency(graph)
    n = len(vertices)
    charge(counter, n * n)
    paths2 = mat.astype(np.int64) @ mat.astype(np.int64)
    closed = np.logical_and(paths2 > 0, mat)
    hits = np.argwhere(closed)
    if hits.size == 0:
        return None
    i, j = map(int, hits[0])
    row = np.logical_and(mat[i], mat[j])
    l = int(np.argwhere(row)[0][0])
    return (vertices[i], vertices[l], vertices[j])


def count_triangles_matrix(graph: Graph, counter: CostCounter | None = None) -> int:
    """Count triangles as trace(A³)/6.

    Complexity: O(n^ω) — trace(A³)/6 via two matrix products.
    """
    if graph.num_vertices == 0:
        return 0
    mat, _ = _adjacency(graph)
    a = mat.astype(np.int64)
    charge(counter, a.shape[0] ** 2)
    return int(np.trace(a @ a @ a)) // 6


def ayz_degree_threshold(num_edges: int, omega: float = OMEGA) -> float:
    """The AYZ split threshold Δ = m^{(ω-1)/(ω+1)}."""
    if num_edges <= 0:
        return 0.0
    return num_edges ** ((omega - 1.0) / (omega + 1.0))


def find_triangle_ayz(
    graph: Graph,
    counter: CostCounter | None = None,
    threshold: float | None = None,
) -> Triangle | None:
    """Alon–Yuster–Zwick triangle detection in ``O(m^{2ω/(ω+1)})``.

    Low-degree vertices (degree ≤ Δ) contribute at most ``m·Δ`` neighbor
    pairs, checked directly. Any remaining triangle lies entirely within
    the ≤ ``2m/Δ`` high-degree vertices, handled by matrix
    multiplication on the induced subgraph.

    Complexity: O(m^{2ω/(ω+1)}) — Alon–Yuster–Zwick degree splitting;
        the Strong Triangle Conjecture says this is optimal.
    """
    m = graph.num_edges
    if m == 0:
        return None
    delta = ayz_degree_threshold(m) if threshold is None else threshold

    low = [v for v in graph.vertices if graph.degree(v) <= delta]
    low_set = set(low)
    for u in low:
        nbrs = sorted(graph.neighbors(u), key=repr)
        for i, v in enumerate(nbrs):
            v_nbrs = graph.neighbors(v)
            for w in nbrs[i + 1:]:
                charge(counter)
                if w in v_nbrs:
                    return (u, v, w)

    high = [v for v in graph.vertices if v not in low_set]
    return find_triangle_matrix(graph.subgraph(high), counter)
