"""Graph homomorphisms (§2.3).

A homomorphism ``f : V(H) → V(G)`` maps edges to edges; solutions of a
binary CSP with one symmetric relation everywhere are exactly the
homomorphisms from its primal graph to the relation's graph. The search
below is a plain backtracking over H's vertices with neighbor-consistent
pruning; it doubles as the reference oracle for the CSP translation
tests.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..counting import CostCounter, charge
from .graph import Graph, Vertex


def is_graph_homomorphism(
    source: Graph, target: Graph, mapping: Mapping[Vertex, Vertex]
) -> bool:
    """Check that ``mapping`` sends every edge of ``source`` to an edge
    of ``target`` (loops in targets are not modeled by :class:`Graph`,
    matching the paper's simple-graph setting)."""
    if set(mapping) != set(source.vertices):
        return False
    return all(
        target.has_edge(mapping[u], mapping[v]) for u, v in source.edges()
    )


def find_graph_homomorphism(
    source: Graph, target: Graph, counter: CostCounter | None = None
) -> dict[Vertex, Vertex] | None:
    """Find one homomorphism from ``source`` to ``target`` or ``None``.

    Vertices of ``source`` are assigned in a connectivity-friendly order
    (each vertex after the first is adjacent to an earlier one when
    possible) so that pruning against already-assigned neighbors fires
    early.

    Complexity: O(n_H^{n_G} · m_G) backtracking worst case.
    """
    hom = _search(source, target, count_all=False, counter=counter)
    return hom if hom is None or isinstance(hom, dict) else None


def count_graph_homomorphisms(
    source: Graph, target: Graph, counter: CostCounter | None = None
) -> int:
    """Count all homomorphisms from ``source`` to ``target``.

    Complexity: O(n_H^{n_G} · m_G) — exhaustive backtracking over all
        maps.
    """
    result = _search(source, target, count_all=True, counter=counter)
    assert isinstance(result, int)
    return result


def count_graph_homomorphisms_treewidth(
    source: Graph, target: Graph, counter: CostCounter | None = None
) -> int:
    """Count homomorphisms in time O(|V(H)| · |V(G)|^{tw(H)+1}).

    The counting counterpart of Theorem 4.2 (and the upper-bound side
    of the Curticapean–Marx counting lower bounds the paper cites as
    [27]): translate to a CSP whose primal graph is the pattern, then
    run the counting DP over a tree decomposition of the *pattern* —
    polynomial in the host for any bounded-treewidth pattern family,
    e.g. counting k-paths or k-cycles.

    Complexity: O(n_G · n_H^{k+1}) for a width-k decomposition of G —
        the Díaz–Serna–Thilikos DP.
    """
    # Local import to avoid a package cycle (csp builds on graphs).
    from ..csp.instance import Constraint, CSPInstance
    from ..csp.treewidth_dp import count_with_treewidth

    if source.num_vertices == 0:
        return 1
    if target.num_vertices == 0:
        return 0
    symmetric = set()
    for u, v in target.edges():
        symmetric.add((u, v))
        symmetric.add((v, u))
    constraints = [Constraint((u, v), symmetric) for u, v in source.edges()]
    instance = CSPInstance(source.vertices, target.vertices, constraints)
    return count_with_treewidth(instance, counter=counter)


def _assignment_order(source: Graph) -> list[Vertex]:
    order: list[Vertex] = []
    placed: set[Vertex] = set()
    for component in source.connected_components():
        frontier = [next(iter(component))]
        while frontier:
            v = frontier.pop()
            if v in placed:
                continue
            placed.add(v)
            order.append(v)
            frontier.extend(source.neighbors(v) - placed)
    return order


def _search(
    source: Graph,
    target: Graph,
    count_all: bool,
    counter: CostCounter | None,
) -> dict[Vertex, Vertex] | int | None:
    if source.num_vertices == 0:
        return 1 if count_all else {}
    if target.num_vertices == 0:
        return 0 if count_all else None

    order = _assignment_order(source)
    targets = target.vertices
    assignment: dict[Vertex, Vertex] = {}
    count = 0

    def backtrack(depth: int) -> dict[Vertex, Vertex] | None:
        nonlocal count
        if depth == len(order):
            if count_all:
                count += 1
                return None
            return dict(assignment)
        v = order[depth]
        assigned_nbrs = [u for u in source.neighbors(v) if u in assignment]
        for image in targets:
            charge(counter)
            if all(target.has_edge(assignment[u], image) for u in assigned_nbrs):
                assignment[v] = image
                found = backtrack(depth + 1)
                del assignment[v]
                if found is not None:
                    return found
        return None

    found = backtrack(0)
    if count_all:
        return count
    return found
