"""(Partitioned) subgraph isomorphism (§2.3).

Partitioned subgraph isomorphism is the graph-side image of binary CSP:
``V(G)`` is partitioned into ``|V(H)|`` classes, one per pattern vertex,
and we look for a copy of ``H`` that picks exactly one vertex from each
class. The paper uses this equivalence to transfer the Grohe–Schwentick–
Segoufin and "Can you beat treewidth?" lower bounds between domains.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def find_partitioned_subgraph(
    pattern: Graph,
    host: Graph,
    partition: Mapping[Vertex, Sequence[Vertex]],
    counter: CostCounter | None = None,
) -> dict[Vertex, Vertex] | None:
    """Find a partition-respecting embedding of ``pattern`` in ``host``.

    Parameters
    ----------
    pattern:
        The graph ``H`` to embed.
    host:
        The graph ``G`` to embed into.
    partition:
        For each pattern vertex, the host vertices of its class.
        Classes must be disjoint; every host vertex used must exist.

    Returns
    -------
    A mapping pattern-vertex → host-vertex such that pattern edges map
    to host edges and each image lies in its own class, or ``None``.

    Notes
    -----
    Injectivity across classes is automatic since classes are disjoint
    and each class contributes exactly one vertex — this matches the
    "respects the partition" condition of §2.3.

    Complexity: O(Π_v |class(v)| · m_H) backtracking worst case —
        n_G^{n_H} when every class is the whole host.
    """
    _validate_partition(pattern, host, partition)

    order = sorted(pattern.vertices, key=lambda v: len(partition[v]))
    assignment: dict[Vertex, Vertex] = {}

    def backtrack(depth: int) -> dict[Vertex, Vertex] | None:
        if depth == len(order):
            return dict(assignment)
        v = order[depth]
        assigned_nbrs = [u for u in pattern.neighbors(v) if u in assignment]
        for image in partition[v]:
            charge(counter)
            if all(host.has_edge(assignment[u], image) for u in assigned_nbrs):
                assignment[v] = image
                found = backtrack(depth + 1)
                del assignment[v]
                if found is not None:
                    return found
        return None

    return backtrack(0)


def find_subgraph_isomorphism(
    pattern: Graph, host: Graph, counter: CostCounter | None = None
) -> dict[Vertex, Vertex] | None:
    """Ordinary subgraph isomorphism: an *injective* edge-preserving map.

    Implemented as partitioned subgraph isomorphism where every class is
    the whole host vertex set, plus an explicit injectivity check during
    search (classes overlap here, so injectivity is enforced manually).

    Complexity: O(n_G^{n_H} · m_H) backtracking worst case.
    """
    order = sorted(pattern.vertices, key=pattern.degree, reverse=True)
    hosts = host.vertices
    assignment: dict[Vertex, Vertex] = {}
    used: set[Vertex] = set()

    def backtrack(depth: int) -> dict[Vertex, Vertex] | None:
        if depth == len(order):
            return dict(assignment)
        v = order[depth]
        assigned_nbrs = [u for u in pattern.neighbors(v) if u in assignment]
        for image in hosts:
            if image in used:
                continue
            charge(counter)
            if len(host.neighbors(image)) < pattern.degree(v):
                continue
            if all(host.has_edge(assignment[u], image) for u in assigned_nbrs):
                assignment[v] = image
                used.add(image)
                found = backtrack(depth + 1)
                del assignment[v]
                used.discard(image)
                if found is not None:
                    return found
        return None

    return backtrack(0)


def _validate_partition(
    pattern: Graph, host: Graph, partition: Mapping[Vertex, Sequence[Vertex]]
) -> None:
    if set(partition) != set(pattern.vertices):
        raise InvalidInstanceError(
            "partition must have exactly one class per pattern vertex"
        )
    seen: set[Vertex] = set()
    for v, cls in partition.items():
        for w in cls:
            if not host.has_vertex(w):
                raise InvalidInstanceError(f"class of {v!r} mentions unknown host vertex {w!r}")
            if w in seen:
                raise InvalidInstanceError(f"host vertex {w!r} appears in two classes")
            seen.add(w)
