"""Dominating Set (§7).

The paper uses k-Dominating Set as the SETH-hard anchor problem:
Pătrașcu & Williams (Theorem 7.1) show that an ``O(n^{k-ε})`` algorithm
for any ``k ≥ 3`` refutes the SETH, so the ``O(n^{k+O(1)})`` brute force
implemented here is essentially optimal.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from ..counting import CostCounter, charge
from ..errors import InvalidInstanceError
from .graph import Graph, Vertex


def is_dominating_set(graph: Graph, candidate: Iterable[Vertex]) -> bool:
    """True iff every vertex is in ``candidate`` or adjacent to it."""
    chosen = set(candidate)
    for v in chosen:
        if not graph.has_vertex(v):
            raise InvalidInstanceError(f"vertex {v!r} not in graph")
    return all(
        v in chosen or graph.neighbors(v) & chosen for v in graph.vertices
    )


def find_dominating_set_bruteforce(
    graph: Graph, k: int, counter: CostCounter | None = None
) -> tuple[Vertex, ...] | None:
    """Find a dominating set of size ≤ k by trying all ``C(n, ≤k)`` sets.

    This is the ``O(n^{k+2})`` baseline of §7 (each candidate costs
    ``O(n²)`` to verify; we charge one unit per closed-neighborhood
    probe).

    Complexity: O(n^k · (n + m)) — all k-subsets times a domination
        check; SETH rules out O(n^{k−ε}) for k ≥ 3 (Theorem 7.1).
    """
    if k < 0:
        raise InvalidInstanceError(f"k must be nonnegative, got {k}")
    vertices = graph.vertices
    if not vertices:
        return ()
    if k == 0:
        return None
    for size in range(1, min(k, len(vertices)) + 1):
        for candidate in combinations(vertices, size):
            charge(counter, len(vertices))
            if is_dominating_set(graph, candidate):
                return candidate
    return None


def greedy_dominating_set(graph: Graph) -> tuple[Vertex, ...]:
    """The classical ln(n)-approximation: repeatedly pick the vertex
    whose closed neighborhood covers the most still-undominated vertices.

    Used by experiments to get feasible (not optimal) solutions on
    instances too large for the exact search.
    """
    undominated = set(graph.vertices)
    chosen: list[Vertex] = []
    while undominated:
        best = max(
            graph.vertices,
            key=lambda v: len(graph.closed_neighborhood(v) & undominated),
        )
        gain = graph.closed_neighborhood(best) & undominated
        if not gain:
            # Isolated undominated vertices must be picked directly.
            best = next(iter(undominated))
            gain = {best}
        chosen.append(best)
        undominated -= graph.closed_neighborhood(best)
    return tuple(chosen)
