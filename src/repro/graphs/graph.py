"""Minimal adjacency-set graph containers.

The library deliberately does not depend on networkx: the graph
algorithms *are* part of what the paper's bounds talk about, so they are
implemented from scratch on top of these two containers. Vertices may be
any hashable object.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from ..errors import InvalidInstanceError

Vertex = Hashable


class Graph:
    """A simple undirected graph (no loops, no parallel edges).

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.num_edges
    2
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex; a no-op if already present."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, adding endpoints as needed."""
        if u == v:
            raise InvalidInstanceError(f"self-loop on {u!r} not allowed")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        for u in self._adj.pop(v):
            self._adj[u].discard(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; endpoints stay."""
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    # -- queries ------------------------------------------------------

    @property
    def vertices(self) -> list[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Iterate each undirected edge exactly once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """The open neighborhood N(v) (a copy)."""
        return set(self._adj[v])

    def closed_neighborhood(self, v: Vertex) -> set[Vertex]:
        """N[v] = N(v) ∪ {v}, as used by Dominating Set (§7)."""
        return self._adj[v] | {v}

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """The induced subgraph on ``keep``."""
        keep_set = set(keep)
        sub = Graph(vertices=keep_set)
        for u in keep_set:
            if u in self._adj:
                for v in self._adj[u] & keep_set:
                    sub.add_edge(u, v)
        return sub

    def complement(self) -> "Graph":
        """The complement graph on the same vertex set."""
        verts = self.vertices
        comp = Graph(vertices=verts)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if not self.has_edge(u, v):
                    comp.add_edge(u, v)
        return comp

    def connected_components(self) -> list[set[Vertex]]:
        """Connected components as vertex sets, by first-seen order."""
        seen: set[Vertex] = set()
        components = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            comp = set()
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(self._adj[v] - comp)
            seen |= comp
            components.append(comp)
        return components

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """True if ``vertices`` are pairwise adjacent."""
        vs = list(vertices)
        return all(
            self.has_edge(vs[i], vs[j])
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
        )

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"


class DiGraph:
    """A simple directed graph (loops allowed, no parallel arcs).

    Loops are allowed because directed graph homomorphism targets
    (§2.4) naturally contain them — a reflexive vertex absorbs any
    source vertex.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    def add_vertex(self, v: Vertex) -> None:
        self._succ.setdefault(v, set())
        self._pred.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the arc ``u -> v``."""
        self.add_vertex(u)
        self.add_vertex(v)
        self._succ[u].add(v)
        self._pred[v].add(u)

    @property
    def vertices(self) -> list[Vertex]:
        return list(self._succ)

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for u, succs in self._succ.items():
            for v in succs:
                yield (u, v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, v: Vertex) -> set[Vertex]:
        return set(self._succ[v])

    def predecessors(self, v: Vertex) -> set[Vertex]:
        return set(self._pred[v])

    def strongly_connected_components(self) -> list[set[Vertex]]:
        """Tarjan's algorithm, iteratively, in reverse topological order.

        Used by the 2SAT solver (§4): a 2-CNF formula is satisfiable iff
        no variable shares an SCC with its negation.
        """
        index_of: dict[Vertex, int] = {}
        lowlink: dict[Vertex, int] = {}
        on_stack: set[Vertex] = set()
        stack: list[Vertex] = []
        components: list[set[Vertex]] = []
        counter = 0

        for root in self._succ:
            if root in index_of:
                continue
            # Iterative Tarjan: work items are (vertex, iterator over succs).
            work = [(root, iter(self._succ[root]))]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index_of:
                        index_of[w] = lowlink[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(self._succ[w])))
                        advanced = True
                        break
                    if w in on_stack:
                        lowlink[v] = min(lowlink[v], index_of[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
                if lowlink[v] == index_of[v]:
                    comp = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.add(w)
                        if w == v:
                            break
                    components.append(comp)
        return components

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
