"""E1/E2 — the AGM bound (Theorems 3.1 and 3.2).

E1 (upper): for random databases over several query shapes, the
measured answer size never exceeds N^ρ*(H).

E2 (tight): the Theorem 3.2 construction achieves the bound — the
answer of the tight database matches the predicted Π floor(N^{x_v})
exactly, and its observed exponent log|answer| / log N approaches
ρ*(H) as N grows.
"""

from __future__ import annotations

import random

from ..generators.agm import (
    expected_tight_answer_size,
    tight_agm_database,
    uniform_random_database,
)
from ..hypergraph.covers import fractional_edge_cover_number
from ..observability.context import RunContext
from ..relational.estimate import agm_bound
from ..relational.query import JoinQuery
from ..relational.wcoj import generic_join
from .harness import ExperimentResult, safe_log_ratio

QUERY_SHAPES: dict[str, JoinQuery] = {}


def _shapes() -> dict[str, JoinQuery]:
    if not QUERY_SHAPES:
        QUERY_SHAPES.update(
            {
                "triangle": JoinQuery.triangle(),
                "4-cycle": JoinQuery.cycle(4),
                "star-3": JoinQuery.star(3),
                "path-3": JoinQuery.path(3),
                "lw-4": JoinQuery.loomis_whitney(4),
            }
        )
    return QUERY_SHAPES


def run_upper(
    relation_sizes: tuple[int, ...] = (20, 40, 80),
    domain_factor: float = 0.5,
    seed: int = 0,
    context: RunContext | None = None,
) -> ExperimentResult:
    """E1: answer sizes of random databases never exceed the AGM bound."""
    ctx = RunContext.ensure(context, "E1-agm-upper")
    result = ExperimentResult(
        experiment_id="E1-agm-upper",
        claim="Theorem 3.1: |Q(D)| <= N^rho*(H) on every instance",
        columns=("query", "rho_star", "N", "answer", "agm_bound", "within_bound"),
    )
    rng = random.Random(seed)
    violations = 0
    for name, query in _shapes().items():
        rho = fractional_edge_cover_number(query.hypergraph())
        with ctx.span(f"E1/{name}", rho_star=rho):
            for n in relation_sizes:
                domain = max(2, int(n * domain_factor))
                database = uniform_random_database(query, n, domain, rng)
                answer = generic_join(query, database, counter=ctx.new_counter())
                bound = agm_bound(query, database)
                ok = len(answer) <= bound + 1e-6
                violations += 0 if ok else 1
                result.add_row(
                    query=name,
                    rho_star=rho,
                    N=n,
                    answer=len(answer),
                    agm_bound=bound,
                    within_bound=ok,
                )
    result.findings["violations"] = violations
    result.findings["verdict"] = "PASS" if violations == 0 else "FAIL"
    return result


#: Shapes for the tight sweep: ρ* <= 2 keeps answers ~N² and feasible
#: in pure Python (star-3 has ρ* = 3 and would materialize N³ tuples).
TIGHT_SHAPES = ("triangle", "4-cycle", "path-3", "lw-4")


def run_tight(
    relation_sizes: tuple[int, ...] = (64, 144, 256),
    shapes: tuple[str, ...] = TIGHT_SHAPES,
    context: RunContext | None = None,
) -> ExperimentResult:
    # Sizes start at 64 so the floor(N^{x_v}) rounding loss stays small
    # even for LW-4's x_v = 1/3 weights (64^{1/3} = 4 exactly).
    """E2: the tight construction meets N^rho* (within rounding)."""
    ctx = RunContext.ensure(context, "E2-agm-tight")
    result = ExperimentResult(
        experiment_id="E2-agm-tight",
        claim="Theorem 3.2: databases exist with |Q(D)| >= N^rho*(H)",
        columns=(
            "query",
            "rho_star",
            "N",
            "answer",
            "predicted",
            "observed_exponent",
        ),
    )
    worst_gap = 0.0
    for name, query in _shapes().items():
        if name not in shapes:
            continue
        rho = fractional_edge_cover_number(query.hypergraph())
        for n in relation_sizes:
            database = tight_agm_database(query, n)
            with ctx.span(f"E2/{name}", N=n):
                answer = generic_join(query, database, counter=ctx.new_counter())
            predicted = expected_tight_answer_size(query, n)
            exponent = safe_log_ratio(max(len(answer), 1), n) if n > 1 else 0.0
            worst_gap = max(worst_gap, rho - exponent)
            result.add_row(
                query=name,
                rho_star=rho,
                N=n,
                answer=len(answer),
                predicted=predicted,
                observed_exponent=exponent,
            )
            assert len(answer) == predicted, (name, n)
    result.findings["max_exponent_gap_vs_rho"] = worst_gap
    result.findings["verdict"] = (
        "PASS" if worst_gap < 0.35 else "FAIL"
    )  # rounding loss shrinks as N grows
    return result
