"""E3 — worst-case optimal joins beat every pairwise plan (Theorem 3.3).

Two triangle-query series:

* on the *skewed cross* databases (each relation {0}×[N/2] ∪ [N/2]×{0})
  every pairwise plan materializes ~N²/4 intermediate tuples while the
  answer — and Generic Join's work — is only Θ(N): the textbook gap;
* on the *tight AGM* databases both stay at the N^{3/2} envelope,
  showing Generic Join never exceeds the AGM bound (Theorem 3.3).
"""

from __future__ import annotations

from ..generators.agm import skewed_triangle_database, tight_agm_database
from ..observability.context import RunContext
from ..relational.joins import best_left_deep_peak, evaluate_left_deep
from ..relational.query import JoinQuery
from ..relational.wcoj import generic_join
from .harness import ExperimentResult, fit_exponent


def run(
    relation_sizes: tuple[int, ...] = (32, 64, 128, 256),
    context: RunContext | None = None,
) -> ExperimentResult:
    """Compare Generic Join vs pairwise plans on skewed and tight
    triangle inputs."""
    ctx = RunContext.ensure(context, "E3-wcoj")
    query = JoinQuery.triangle()
    result = ExperimentResult(
        experiment_id="E3-wcoj",
        claim="Theorem 3.3: Generic Join stays within O(N^rho*) while "
        "pairwise plans pay ~N^2 on the skewed triangle instances",
        columns=(
            "family",
            "N",
            "answer",
            "wcoj_ops",
            "best_plan_peak",
            "plan_peak_over_answer",
        ),
    )
    series: dict[str, tuple[list[int], list[int], list[int]]] = {}
    ops_per_answer = 0.0
    for family, make_db in (
        ("skewed", skewed_triangle_database),
        ("tight", lambda n: tight_agm_database(query, n)),
    ):
        ns, wcoj_ops, peaks = [], [], []
        with ctx.span(f"E3/{family}", sizes=len(relation_sizes)):
            for n in relation_sizes:
                database = make_db(n)
                counter = ctx.new_counter()
                answer = generic_join(query, database, counter=counter)
                __, best_peak = best_left_deep_peak(query, database)
                ns.append(n)
                wcoj_ops.append(max(counter.total, 1))
                peaks.append(best_peak)
                ops_per_answer = max(
                    ops_per_answer, counter.total / max(len(answer), 1)
                )
                result.add_row(
                    family=family,
                    N=n,
                    answer=len(answer),
                    wcoj_ops=counter.total,
                    best_plan_peak=best_peak,
                    plan_peak_over_answer=best_peak / max(len(answer), 1),
                )
        series[family] = (ns, wcoj_ops, peaks)

    skew_ns, skew_wcoj, skew_peaks = series["skewed"]
    tight_ns, tight_wcoj, tight_peaks = series["tight"]
    result.findings["skewed_wcoj_exponent"] = fit_exponent(skew_ns, skew_wcoj)
    result.findings["skewed_plan_exponent"] = fit_exponent(skew_ns, skew_peaks)
    result.findings["tight_wcoj_exponent"] = fit_exponent(tight_ns, tight_wcoj)
    result.findings["tight_plan_exponent"] = fit_exponent(tight_ns, tight_peaks)
    # O(1)-per-probe check: with trie nodes threaded down the recursion
    # (rather than re-walked from the root), charged ops per output
    # tuple stay a small constant across the whole sweep.
    result.findings["max_ops_per_answer"] = ops_per_answer
    result.findings["verdict"] = (
        "PASS"
        if result.findings["skewed_plan_exponent"]
        > result.findings["skewed_wcoj_exponent"] + 0.5
        and result.findings["tight_wcoj_exponent"] < 1.8
        else "FAIL"
    )
    return result


def run_orderings(
    relation_size: int = 256,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Ablation: Generic Join variable orderings change constants, not
    the N^rho* envelope."""
    ctx = RunContext.ensure(context, "E3-wcoj-ablation")
    query = JoinQuery.triangle()
    database = tight_agm_database(query, relation_size)
    result = ExperimentResult(
        experiment_id="E3-wcoj-ablation",
        claim="any Generic Join variable order is worst-case optimal",
        columns=("order", "ops", "answer"),
    )
    from itertools import permutations

    ops_seen = []
    with ctx.span("E3/orderings", N=relation_size):
        for order in permutations(query.attributes):
            counter = ctx.new_counter()
            answer = generic_join(query, database, attribute_order=order, counter=counter)
            ops_seen.append(counter.total)
            result.add_row(order="→".join(order), ops=counter.total, answer=len(answer))
    result.findings["max_over_min_ops"] = max(ops_seen) / min(ops_seen)
    return result
