"""E8 — the treewidth DP's exponent tracks k on clique primal graphs
(Theorems 6.5–6.7).

Clique queries have treewidth k−1; Freuder's DP on them costs
|D|^{Θ(k)}, and the ETH says no algorithm does |D|^{o(k)}. We measure
the DP's fitted exponent in |D| as the primal clique grows and check it
increases ≈ linearly — the upper-bound half of "can you beat
treewidth?" (Theorem 6.6's answer: only by log factors, and only maybe).
"""

from __future__ import annotations

from itertools import product

from ..csp.instance import Constraint, CSPInstance
from ..csp.treewidth_dp import solve_with_treewidth
from ..observability.context import RunContext
from ..treewidth.exact import treewidth_exact
from .harness import ExperimentResult, fit_exponent


def clique_csp(size: int, domain_size: int, seed_shift: int = 0) -> CSPInstance:
    """A CSP whose primal graph is K_size: all-different-ish constraints
    (value pairs with a fixed offset pattern keep it satisfiable)."""
    variables = [f"v{i}" for i in range(size)]
    domain = list(range(domain_size))
    disequal = {(a, b) for a, b in product(domain, repeat=2) if a != b}
    constraints = [
        Constraint((variables[i], variables[j]), disequal)
        for i in range(size)
        for j in range(i + 1, size)
    ]
    return CSPInstance(variables, domain, constraints)


def run(
    clique_sizes: tuple[int, ...] = (2, 3, 4),
    domain_sizes: tuple[int, ...] = (4, 6, 8, 12),
    context: RunContext | None = None,
) -> ExperimentResult:
    """DP cost exponent in |D| as the primal clique (treewidth+1) grows."""
    ctx = RunContext.ensure(context, "E8-treewidth-opt")
    result = ExperimentResult(
        experiment_id="E8-treewidth-opt",
        claim="Theorems 6.5/6.7: on treewidth-k primal graphs (cliques), "
        "cost is |D|^{Theta(k)}; exponent grows with k",
        columns=("clique_size", "treewidth", "D", "dp_ops", "satisfiable"),
    )
    exponents: dict[int, float] = {}
    for size in clique_sizes:
        ds, ops = [], []
        for d in domain_sizes:
            instance = clique_csp(size, d)
            width, decomposition = treewidth_exact(instance.primal_graph())
            assert width == size - 1
            counter = ctx.new_counter()
            with ctx.span("E8/dp", clique=size, D=d):
                solution = solve_with_treewidth(instance, decomposition, counter)
            ds.append(d)
            ops.append(max(counter.total, 1))
            result.add_row(
                clique_size=size,
                treewidth=width,
                D=d,
                dp_ops=counter.total,
                satisfiable=solution is not None,
            )
        exponents[size] = fit_exponent(ds, ops)
    result.findings["dp_exponent_by_clique_size"] = exponents
    ordered = [exponents[s] for s in sorted(exponents)]
    result.findings["verdict"] = (
        "PASS" if all(a < b for a, b in zip(ordered, ordered[1:])) else "FAIL"
    )
    return result
