"""E10 — the k-clique conjecture's two sides (§8).

The Nešetřil–Poljak matrix split solves k-clique by triangle detection
on the C(n, k/3) auxiliary graph, asymptotically n^{ωk/3} < n^k. Worst-
case cost needs *no*-instances, so the sweep uses Turán graphs
T(n, k−1) (k-clique-free). Two series:

* correctness: both algorithms agree on planted yes-instances and
  Turán no-instances;
* shape: on the no-instances the brute-force/matrix cost ratio grows
  with n for k = 6 (with a cubic practical multiply, k = 3 shows no
  gap — exactly why the conjecture is about the ω exponent).
"""

from __future__ import annotations

from ..generators.graph_gen import planted_clique_graph, turan_graph
from ..graphs.clique import find_clique_bruteforce, find_clique_matrix
from ..observability.context import RunContext
from .harness import ExperimentResult, fit_exponent


def run(
    ks: tuple[int, ...] = (3, 6),
    graph_sizes: tuple[int, ...] = (8, 12, 16),
    seed: int = 0,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Brute force vs matrix split on Turán no-instances and planted
    yes-instances."""
    ctx = RunContext.ensure(context, "E10-kclique-mm")
    result = ExperimentResult(
        experiment_id="E10-kclique-mm",
        claim="§8 k-clique conjecture: n^{wk/3} matrix method vs n^k "
        "brute force; the gap widens with n on clique-free inputs",
        columns=("k", "n", "family", "bruteforce_ops", "matrix_ops", "agree"),
    )
    agree_all = True
    bf_exponents: dict[int, float] = {}
    mm_exponents: dict[int, float] = {}
    for k in ks:
        ns, bf_series, mm_series = [], [], []
        for n in graph_sizes:
            for family, graph, expect in (
                ("turan", turan_graph(n, k - 1), False),
                ("planted", planted_clique_graph(n, k, p=0.2, seed=seed + n + k)[0], True),
            ):
                bf_counter = ctx.new_counter()
                with ctx.span("E10/bruteforce", k=k, n=n, family=family):
                    bf = find_clique_bruteforce(graph, k, bf_counter)
                mm_counter = ctx.new_counter()
                with ctx.span("E10/matrix", k=k, n=n, family=family):
                    mm = find_clique_matrix(graph, k, mm_counter)
                agree = (bf is None) == (mm is None) and (bf is not None) == expect
                agree_all = agree_all and agree
                if family == "turan":
                    ns.append(n)
                    bf_series.append(max(bf_counter.total, 1))
                    mm_series.append(max(mm_counter.total, 1))
                result.add_row(
                    k=k,
                    n=n,
                    family=family,
                    bruteforce_ops=bf_counter.total,
                    matrix_ops=mm_counter.total,
                    agree=agree,
                )
        bf_exponents[k] = fit_exponent(ns, bf_series)
        mm_exponents[k] = fit_exponent(ns, mm_series)
    result.findings["bruteforce_exponent_by_k"] = bf_exponents
    result.findings["matrix_exponent_by_k"] = mm_exponents
    largest = max(ks)
    result.findings["verdict"] = (
        "PASS"
        if agree_all and bf_exponents[largest] > mm_exponents[largest]
        else "FAIL"
    )
    return result
