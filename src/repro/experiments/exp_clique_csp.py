"""E7 — the n^k wall for Clique-as-CSP (Theorems 6.3/6.4).

Worst-case search cost only shows on *no*-instances (a yes-instance
lets brute force exit early), so the sweep runs on Turán graphs
T(n, k−1): the densest graphs with no k-clique. Both the direct clique
search and the Clique→CSP brute force must exhaust their spaces; fitted
exponents in n grow with k — the shape Theorem 6.3 says cannot be
avoided (no f(k)·n^{o(k)}), mirrored on the CSP side as |D|^{Θ(|V|)}
(Theorem 6.4).
"""

from __future__ import annotations

from ..csp.bruteforce import solve_bruteforce
from ..generators.graph_gen import turan_graph
from ..graphs.clique import find_clique_bruteforce
from ..observability.context import RunContext
from ..reductions.clique_to_csp import clique_to_csp
from .harness import ExperimentResult, fit_exponent


def run(
    ks: tuple[int, ...] = (2, 3, 4),
    graph_sizes: tuple[int, ...] = (8, 12, 16, 24),
    context: RunContext | None = None,
) -> ExperimentResult:
    """Fit the brute-force cost exponent in n per clique size k."""
    ctx = RunContext.ensure(context, "E7-clique-csp")
    result = ExperimentResult(
        experiment_id="E7-clique-csp",
        claim="Theorems 6.3/6.4: k-Clique (== CSP with k variables, "
        "domain n) costs n^{Theta(k)} on clique-free inputs; "
        "exponent grows with k",
        columns=("k", "n", "graph_ops", "csp_ops", "has_clique"),
    )
    exponents: dict[int, float] = {}
    csp_exponents: dict[int, float] = {}
    for k in ks:
        ns, graph_ops, csp_ops = [], [], []
        for n in graph_sizes:
            graph = turan_graph(n, k - 1)
            counter = ctx.new_counter()
            with ctx.span("E7/clique-search", k=k, n=n):
                clique = find_clique_bruteforce(graph, k, counter)
            assert clique is None, "Turán graphs are k-clique-free"
            reduction = clique_to_csp(graph, k)
            reduction.certify()
            csp_counter = ctx.new_counter()
            csp_solution = solve_bruteforce(reduction.target, csp_counter)
            assert csp_solution is None
            ns.append(n)
            graph_ops.append(max(counter.total, 1))
            csp_ops.append(max(csp_counter.total, 1))
            result.add_row(
                k=k,
                n=n,
                graph_ops=counter.total,
                csp_ops=csp_counter.total,
                has_clique=False,
            )
        exponents[k] = fit_exponent(ns, graph_ops)
        csp_exponents[k] = fit_exponent(ns, csp_ops)
    result.findings["graph_cost_exponent_by_k"] = exponents
    result.findings["csp_cost_exponent_by_k"] = csp_exponents
    ordered_graph = [exponents[k] for k in sorted(exponents)]
    ordered_csp = [csp_exponents[k] for k in sorted(csp_exponents)]
    result.findings["verdict"] = (
        "PASS"
        if all(a < b for a, b in zip(ordered_graph, ordered_graph[1:]))
        and all(a < b for a, b in zip(ordered_csp, ordered_csp[1:]))
        else "FAIL"
    )
    return result
