"""E18 — SETH inside P: Orthogonal Vectors and Edit Distance (§7).

Three series:

* the SAT→OV reduction's certificates hold and solving the OV instance
  by brute force decides the formula (and decodes a model);
* OV brute force fits a quadratic exponent in n — the shape the OV
  conjecture says cannot be beaten;
* the edit-distance DP fits a quadratic exponent in the string length
  (the [12, 19] wall), while the banded variant is subquadratic when
  the distance is promised small — the permitted escape.
"""

from __future__ import annotations

import random

from ..finegrained.edit_distance import edit_distance, edit_distance_banded
from ..finegrained.orthogonal_vectors import OVInstance, find_orthogonal_pair
from ..finegrained.sat_to_ov import sat_to_orthogonal_vectors
from ..generators.sat_gen import random_ksat
from ..observability.context import RunContext
from ..sat.dpll import solve_dpll
from .harness import ExperimentResult, fit_exponent


def random_ov_instance(n: int, dimension: int, ones: int, rng: random.Random) -> OVInstance:
    def vec() -> list[int]:
        v = [0] * dimension
        for i in rng.sample(range(dimension), ones):
            v[i] = 1
        return v

    return OVInstance.from_lists(
        [vec() for __ in range(n)], [vec() for __ in range(n)]
    )


def random_string(length: int, alphabet: str, rng: random.Random) -> str:
    return "".join(rng.choice(alphabet) for __ in range(length))


def run(
    ov_sizes: tuple[int, ...] = (64, 128, 256, 512),
    string_lengths: tuple[int, ...] = (64, 128, 256, 512),
    sat_trials: int = 6,
    seed: int = 0,
    context: RunContext | None = None,
) -> ExperimentResult:
    """OV/edit-distance exponents + SAT→OV equivalence checks."""
    ctx = RunContext.ensure(context, "E18-finegrained")
    rng = random.Random(seed)
    result = ExperimentResult(
        experiment_id="E18-finegrained",
        claim="§7: SETH ⇒ no n^{2−ε} for OV; OV ⇒ no n^{2−ε} for "
        "Edit Distance — both brute-force/DP shapes are quadratic",
        columns=("series", "n", "ops", "note"),
    )

    # --- SAT → OV equivalence ----------------------------------------
    equivalent = True
    with ctx.span("E18/sat-to-ov", trials=sat_trials):
        for trial in range(sat_trials):
            formula = random_ksat(8, rng.randrange(10, 40), 3, seed=seed * 100 + trial)
            reduction = sat_to_orthogonal_vectors(formula)
            reduction.certify()
            pair = find_orthogonal_pair(reduction.target)
            sat = solve_dpll(formula) is not None
            equivalent = equivalent and ((pair is not None) == sat)
            if pair is not None:
                equivalent = equivalent and formula.evaluate(reduction.pull_back(pair))
    result.findings["sat_ov_equivalent"] = equivalent

    # --- OV brute-force shape (no-instance-heavy: dense vectors) ------
    ns, ov_ops = [], []
    with ctx.span("E18/ov-bruteforce", sizes=len(ov_sizes)):
        for n in ov_sizes:
            dimension = 24
            instance = random_ov_instance(n, dimension, ones=dimension // 2, rng=rng)
            counter = ctx.new_counter()
            find_orthogonal_pair(instance, counter)
            ns.append(n)
            ov_ops.append(max(counter.total, 1))
            result.add_row(series="ov", n=n, ops=counter.total, note=f"d={dimension}")
    result.findings["ov_exponent"] = fit_exponent(ns, ov_ops)

    # --- Edit distance DP shape ---------------------------------------
    lengths, dp_ops, banded_ops = [], [], []
    with ctx.span("E18/edit-distance", lengths=len(string_lengths)):
        for length in string_lengths:
            a = random_string(length, "ab", rng)
            b = random_string(length, "ab", rng)
            counter = ctx.new_counter()
            edit_distance(a, b, counter)
            lengths.append(length)
            dp_ops.append(max(counter.total, 1))
            result.add_row(series="edit-dp", n=length, ops=counter.total, note="")

            # Banded variant under a small-distance promise: perturb a copy.
            noisy = list(a)
            for __ in range(4):
                noisy[rng.randrange(length)] = rng.choice("ab")
            banded_counter = ctx.new_counter()
            edit_distance_banded(a, "".join(noisy), 8, banded_counter)
            banded_ops.append(max(banded_counter.total, 1))
            result.add_row(
                series="edit-banded", n=length, ops=banded_counter.total, note="k=8"
            )
    result.findings["edit_dp_exponent"] = fit_exponent(lengths, dp_ops)
    result.findings["edit_banded_exponent"] = fit_exponent(lengths, banded_ops)

    result.findings["verdict"] = (
        "PASS"
        if equivalent
        and result.findings["ov_exponent"] > 1.8
        and result.findings["edit_dp_exponent"] > 1.8
        and result.findings["edit_banded_exponent"] < 1.3
        else "FAIL"
    )
    return result
