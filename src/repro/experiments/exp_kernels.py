"""E19 — columnar kernels are observationally identical to the naive
engines (backend A/B validation for `repro.relational.kernels`).

The columnar backend (interned int columns, sorted-array tries,
leapfrog intersection, vectorized pairwise joins) is a change of
*representation* only: for every engine and input family it must
produce the same answer set and charge the same operation counts as
the naive backend. This experiment sweeps the E3 input families across
Generic Join, left-deep pairwise plans, Yannakakis, and acyclic
enumeration on both backends and records the observed agreement —
findings are exact match counts, never wall-clock, so the record is
deterministic and baseline-safe.
"""

from __future__ import annotations

from ..generators.agm import skewed_triangle_database, tight_agm_database
from ..observability.context import RunContext
from ..relational.enumeration import enumerate_acyclic
from ..relational.joins import evaluate_left_deep
from ..relational.planner import wcoj_attribute_order
from ..relational.query import JoinQuery
from ..relational.wcoj import generic_join
from ..relational.yannakakis import yannakakis
from .harness import ExperimentResult


def run(
    relation_sizes: tuple[int, ...] = (16, 32, 64, 128),
    context: RunContext | None = None,
) -> ExperimentResult:
    """A/B every relational engine across backends on the E3 families."""
    ctx = RunContext.ensure(context, "E19-kernels")
    result = ExperimentResult(
        experiment_id="E19-kernels",
        claim="the columnar backend returns identical answer sets and "
        "identical op counts to the naive backend on every engine",
        columns=(
            "engine",
            "family",
            "N",
            "answer",
            "naive_ops",
            "columnar_ops",
            "answers_equal",
        ),
    )
    triangle = JoinQuery.triangle()
    path = JoinQuery.path(3)
    cases = 0
    answer_mismatches = 0
    ops_mismatches = 0

    def record(engine: str, family: str, n: int, naive_run, columnar_run) -> None:
        nonlocal cases, answer_mismatches, ops_mismatches
        a_naive, ops_naive = naive_run
        a_col, ops_col = columnar_run
        equal = a_naive == a_col
        cases += 1
        answer_mismatches += 0 if equal else 1
        ops_mismatches += 0 if ops_naive == ops_col else 1
        result.add_row(
            engine=engine,
            family=family,
            N=n,
            answer=len(a_naive),
            naive_ops=ops_naive,
            columnar_ops=ops_col,
            answers_equal=equal,
        )

    def measured(fn, query, database, **kw):
        counter = ctx.new_counter()
        answer = fn(query, database, counter=counter, **kw)
        return set(answer.tuples), counter.total

    with ctx.span("E19/triangle-families", sizes=len(relation_sizes)):
        for family, make_db in (
            ("skewed", skewed_triangle_database),
            ("tight", lambda n: tight_agm_database(triangle, n)),
        ):
            for n in relation_sizes:
                naive_db = make_db(n)
                columnar_db = naive_db.with_backend("columnar")
                order = wcoj_attribute_order(triangle, naive_db)
                record(
                    "generic_join",
                    family,
                    n,
                    measured(generic_join, triangle, naive_db, attribute_order=order),
                    measured(generic_join, triangle, columnar_db, attribute_order=order),
                )
                record(
                    "left_deep",
                    family,
                    n,
                    measured(
                        lambda q, d, counter=None: evaluate_left_deep(
                            q, d, counter=counter
                        ).answer,
                        triangle,
                        naive_db,
                    ),
                    measured(
                        lambda q, d, counter=None: evaluate_left_deep(
                            q, d, counter=counter
                        ).answer,
                        triangle,
                        columnar_db,
                    ),
                )

    with ctx.span("E19/acyclic-engines", sizes=len(relation_sizes)):
        for n in relation_sizes:
            naive_db = tight_agm_database(path, n)
            columnar_db = naive_db.with_backend("columnar")
            record(
                "yannakakis",
                "tight-path",
                n,
                measured(yannakakis, path, naive_db),
                measured(yannakakis, path, columnar_db),
            )
            c_naive, c_col = ctx.new_counter(), ctx.new_counter()
            e_naive = set(enumerate_acyclic(path, naive_db, c_naive))
            e_col = set(enumerate_acyclic(path, columnar_db, c_col))
            record(
                "enumerate_acyclic",
                "tight-path",
                n,
                (e_naive, c_naive.total),
                (e_col, c_col.total),
            )

    result.findings["cases"] = cases
    result.findings["answer_mismatches"] = answer_mismatches
    result.findings["op_count_mismatches"] = ops_mismatches
    result.findings["verdict"] = (
        "PASS" if answer_mismatches == 0 and ops_mismatches == 0 else "FAIL"
    )
    return result
