"""E22 — one sum-product core, four semirings (Fan–Koutris, §8).

The uniformity claim behind the semiring-generic engine, measured:
Boolean evaluation, counting, cheapest-witness search and provenance
tracking are the *same* sum-product computation, so the engines charge
the *same* operation counts for all four — the semiring only changes
what flows through the accumulators, never how many steps are taken.

Two deterministic families, no RNG:

* **acyclic side** — the hub star (two relations fanning out of one
  center value, Θ(N²) answers): the semiring Yannakakis DP aggregates
  in O(N) operations while materialize-then-fold pays for the full
  Θ(N²) answer set, and for every semiring the two values are
  ``==``-identical (the repo invariant, byte for byte);
* **cyclic side** — a diagonal triangle family (N triangles): the
  generic-join aggregate agrees with materialize-then-fold on a query
  where no join tree exists and the WCOJ core does the accumulation.

Findings include one fitted ops exponent *per semiring* (they must
coincide — that is the uniformity), the materialization exponent they
beat on the acyclic family, and the cross-checks.
"""

from __future__ import annotations

from ..observability.context import RunContext
from ..relational.database import Database
from ..relational.query import JoinQuery
from ..relational.relation import Relation
from ..relational.semiring import aggregate_relation, all_semirings
from ..relational.wcoj import generic_join, generic_join_aggregate
from ..relational.yannakakis import semiring_yannakakis
from .harness import ExperimentResult, fit_exponent


def hub_star_database(n: int) -> Database:
    """Star(2) with one hub: |R1| = |R2| = n, Θ(n²) full answers."""
    return Database(
        [
            Relation("R1", ("x", "y"), [(0, i) for i in range(n)]),
            Relation("R2", ("x", "y"), [(0, j) for j in range(n)]),
        ]
    )


def diagonal_triangle_database(n: int) -> Database:
    """Triangle family with exactly n triangles (i, i, i)."""
    edges = [(i, i) for i in range(n)]
    return Database(
        [
            Relation("R1", ("x", "y"), edges),
            Relation("R2", ("x", "y"), edges),
            Relation("R3", ("x", "y"), edges),
        ]
    )


def run(
    sizes: tuple[int, ...] = (16, 32, 64, 128),
    context: RunContext | None = None,
) -> ExperimentResult:
    """Sweep both families across every registered semiring."""
    ctx = RunContext.ensure(context, "E22-semiring")
    semirings = all_semirings()
    star = JoinQuery.star(2)
    triangle = JoinQuery.triangle()
    result = ExperimentResult(
        experiment_id="E22-semiring",
        claim="sum-product evaluation is semiring-generic: one core serves "
        "Boolean, counting, min-cost and provenance at identical operation "
        "counts, the acyclic DP beats materialize-then-fold by a polynomial "
        "factor, and every (semiring, engine) value equals the flat fold",
        columns=(
            "N",
            "answers_acyclic",
            "dp_ops",
            "fold_acyclic_ops",
            "answers_cyclic",
            "wcoj_agg_ops",
            "dp_agree",
            "wcoj_agree",
            "ops_uniform",
        ),
    )
    ns = []
    dp_ops_by_semiring: dict[str, list[int]] = {s.name: [] for s in semirings}
    fold_ops_series: list[int] = []
    for n in sizes:
        star_db = hub_star_database(n)
        tri_db = diagonal_triangle_database(n)

        # Reference: materialize the full answers once per family, fold
        # flat per semiring. The materialization counter is the cost the
        # aggregating engines are measured against.
        fold_counter = ctx.new_counter()
        with ctx.span("E22/materialize", N=n):
            star_full = generic_join(star, star_db, counter=fold_counter)
        fold_ops = fold_counter.total
        tri_full = generic_join(triangle, tri_db)

        dp_ops: dict[str, int] = {}
        wcoj_ops: dict[str, int] = {}
        dp_agree = wcoj_agree = True
        for semiring in semirings:
            expected_star = aggregate_relation(semiring, star, star_full)
            expected_tri = aggregate_relation(semiring, triangle, tri_full)
            counter = ctx.new_counter()
            with ctx.span("E22/dp", N=n, semiring=semiring.name):
                dp_value = semiring_yannakakis(
                    star, star_db, semiring, counter=counter
                )
            dp_ops[semiring.name] = counter.total
            dp_agree = dp_agree and dp_value == expected_star
            counter = ctx.new_counter()
            with ctx.span("E22/wcoj", N=n, semiring=semiring.name):
                wcoj_value = generic_join_aggregate(
                    triangle, tri_db, semiring, counter=counter
                )
            wcoj_ops[semiring.name] = counter.total
            wcoj_agree = wcoj_agree and wcoj_value == expected_tri

        # Uniformity: the charge profile must not depend on the semiring.
        ops_uniform = (
            len(set(dp_ops.values())) == 1 and len(set(wcoj_ops.values())) == 1
        )
        ns.append(n)
        fold_ops_series.append(fold_ops)
        for name, ops in dp_ops.items():
            dp_ops_by_semiring[name].append(ops)
        result.add_row(
            N=n,
            answers_acyclic=len(star_full),
            dp_ops=dp_ops[semirings[0].name],
            fold_acyclic_ops=fold_ops,
            answers_cyclic=len(tri_full),
            wcoj_agg_ops=wcoj_ops[semirings[0].name],
            dp_agree=dp_agree,
            wcoj_agree=wcoj_agree,
            ops_uniform=ops_uniform,
        )

    for name, series in dp_ops_by_semiring.items():
        result.findings[f"dp_ops_exponent_{name}"] = fit_exponent(ns, series)
    result.findings["fold_ops_exponent"] = fit_exponent(ns, fold_ops_series)
    result.findings["all_dp_agree"] = all(r["dp_agree"] for r in result.rows)
    result.findings["all_wcoj_agree"] = all(r["wcoj_agree"] for r in result.rows)
    result.findings["ops_semiring_independent"] = all(
        r["ops_uniform"] for r in result.rows
    )
    dp_exponents = [
        result.findings[f"dp_ops_exponent_{s.name}"] for s in semirings
    ]
    result.findings["verdict"] = (
        "PASS"
        if all(e < 1.3 for e in dp_exponents)
        and result.findings["fold_ops_exponent"] > 1.7
        and result.findings["all_dp_agree"]
        and result.findings["all_wcoj_agree"]
        and result.findings["ops_semiring_independent"]
        else "FAIL"
    )
    return result
