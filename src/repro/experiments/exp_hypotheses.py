"""E13 — the hypothesis landscape as data (§1, §9).

Checks the implication digraph has exactly the structure the paper
relies on (SETH ⇒ ETH ⇒ {FPT≠W[1], P≠NP}), that every registered lower
bound's hypothesis exists, and that assuming SETH unlocks every
ETH/FPT≠W[1]/P≠NP-conditioned bound by transitivity.
"""

from __future__ import annotations

from ..complexity.bounds import all_lower_bounds, bounds_under
from ..complexity.hypotheses import all_hypotheses, get_hypothesis
from ..complexity.implications import implies
from ..observability.context import RunContext
from .harness import ExperimentResult

EXPECTED_IMPLICATIONS: tuple[tuple[str, str], ...] = (
    ("seth", "eth"),
    ("eth", "fpt-neq-w1"),
    ("eth", "p-neq-np"),
    ("fpt-neq-w1", "p-neq-np"),
    ("seth", "p-neq-np"),
    ("k-clique", "fpt-neq-w1"),
)

EXPECTED_NON_IMPLICATIONS: tuple[tuple[str, str], ...] = (
    ("eth", "seth"),
    ("p-neq-np", "eth"),
    ("fpt-neq-w1", "eth"),
    ("triangle", "seth"),
)


def run(context: RunContext | None = None) -> ExperimentResult:
    """Validate the landscape and count bounds unlocked per hypothesis."""
    RunContext.ensure(context, "E13-hypotheses")
    result = ExperimentResult(
        experiment_id="E13-hypotheses",
        claim="§1/§9: the assumption hierarchy orders the bounds — "
        "stronger assumptions unlock strictly more lower bounds",
        columns=("hypothesis", "plausibility", "bounds_unlocked"),
    )
    errors = []
    for src, dst in EXPECTED_IMPLICATIONS:
        if not implies(src, dst):
            errors.append(f"missing implication {src} => {dst}")
    for src, dst in EXPECTED_NON_IMPLICATIONS:
        if implies(src, dst):
            errors.append(f"spurious implication {src} => {dst}")
    for bound in all_lower_bounds():
        get_hypothesis(bound.hypothesis)  # raises on dangling keys

    for h in all_hypotheses():
        result.add_row(
            hypothesis=h.key,
            plausibility=h.plausibility,
            bounds_unlocked=len(bounds_under(h.key)),
        )

    unlocked = {row["hypothesis"]: row["bounds_unlocked"] for row in result.rows}
    monotone = (
        unlocked["seth"] >= unlocked["eth"] >= unlocked["fpt-neq-w1"]
        and unlocked["unconditional"] <= min(
            v for k, v in unlocked.items() if k != "unconditional"
        ) + max(unlocked.values())  # unconditional bounds hold under everything
    )
    result.findings["implication_errors"] = errors
    result.findings["monotone_unlocking"] = monotone
    result.findings["total_bounds"] = len(all_lower_bounds())
    result.findings["verdict"] = "PASS" if not errors and monotone else "FAIL"
    return result
