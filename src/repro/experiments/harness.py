"""Shared experiment infrastructure.

Experiments report *rows* (dicts with a fixed column set) plus derived
*findings* (named scalars such as fitted exponents), and can render
themselves as an aligned text table — the "same rows/series the paper
reports" deliverable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..errors import InvalidInstanceError
from ..observability.record import jsonify


class _Missing:
    """Singleton sentinel for a deliberately absent cell.

    ``add_row`` requires a value for every declared column so that
    ``column()``/``fit_exponent`` never silently ingest holes; a cell
    that is genuinely not measured (e.g. the naive algorithm skipped at
    large N) must say so explicitly with :data:`MISSING`.
    """

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"


#: Explicit placeholder for an intentionally unmeasured cell.
MISSING = _Missing()


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md experiment id, e.g. ``"E2-agm-tight"``.
    claim:
        One-line statement of what the paper predicts.
    columns:
        Ordered column names of ``rows``.
    rows:
        The measured series.
    findings:
        Derived scalars (fitted exponents, crossover points, verdicts).
    """

    experiment_id: str
    claim: str
    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    findings: dict[str, object] = field(default_factory=dict)

    def add_row(self, **values) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise InvalidInstanceError(f"row has unknown columns {sorted(unknown)}")
        missing = set(self.columns) - set(values)
        if missing:
            raise InvalidInstanceError(
                f"row is missing columns {sorted(missing)}; pass MISSING for "
                "cells that are deliberately unmeasured"
            )
        self.rows.append(values)

    def column(self, name: str) -> list:
        if name not in self.columns:
            raise InvalidInstanceError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def to_payload(self) -> dict:
        """JSON-safe dict for run records (``MISSING`` cells → null)."""
        rows = [
            {
                column: None if row[column] is MISSING else jsonify(row[column])
                for column in self.columns
            }
            for row in self.rows
        ]
        return {
            "experiment_id": self.experiment_id,
            "claim": self.claim,
            "columns": list(self.columns),
            "rows": rows,
            "findings": {key: jsonify(value) for key, value in self.findings.items()},
        }

    def __str__(self) -> str:
        header = f"[{self.experiment_id}] {self.claim}"
        table = format_table(self.columns, self.rows)
        notes = "\n".join(
            f"  {key} = {value}" for key, value in self.findings.items()
        )
        parts = [header, table]
        if notes:
            parts.append(notes)
        return "\n".join(parts)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Render rows as a fixed-width text table."""
    def cell(value) -> str:
        if value is MISSING:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    widths = [len(c) for c in columns]
    rendered = []
    for row in rows:
        cells = [cell(row.get(c, "")) for c in columns]
        widths = [max(w, len(s)) for w, s in zip(widths, cells)]
        rendered.append(cells)
    lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(s.ljust(w) for s, w in zip(cells, widths)))
    return "\n".join(lines)


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares line through (log x, log y): (slope, intercept).

    The slope is the measured exponent; the intercept (natural log of
    the constant factor) lets report dashboards draw the fitted curve
    ``y = e^intercept · x^slope`` through the measured points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise InvalidInstanceError("need at least two (x, y) pairs")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise InvalidInstanceError("log-log fit needs positive values")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    return float(slope), float(intercept)


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x.

    The measured analogue of "runs in O(x^e)": for cost series that are
    genuinely polynomial the slope converges to the exponent.
    """
    slope, __ = fit_loglog(xs, ys)
    return slope


def geometric_sweep(start: int, factor: float, count: int) -> list[int]:
    """Geometrically spaced integer parameter values, deduplicated."""
    if start < 1 or factor <= 1.0 or count < 1:
        raise InvalidInstanceError("need start >= 1, factor > 1, count >= 1")
    values = []
    current = float(start)
    for _ in range(count):
        value = int(round(current))
        if not values or value > values[-1]:
            values.append(value)
        current *= factor
    return values


def safe_log_ratio(a: float, b: float) -> float:
    """log(a)/log(b) with guards; the 'observed exponent' of a vs b."""
    if a <= 0 or b <= 0 or b == 1:
        raise InvalidInstanceError("invalid log ratio inputs")
    return math.log(a) / math.log(b)
