"""E4 — Freuder's treewidth DP is polynomial with exponent k+1
(Theorem 4.2).

On bounded-treewidth CSPs, the DP's operation count fitted against the
domain size |D| has slope ≈ k+1, while brute force pays |D|^{|V|}. The
experiment sweeps |D| for fixed widths and reports fitted exponents.
"""

from __future__ import annotations

from ..csp.treewidth_dp import solve_with_treewidth
from ..generators.csp_gen import bounded_treewidth_csp
from ..observability.context import RunContext
from ..treewidth.heuristics import treewidth_min_fill
from .harness import ExperimentResult, fit_exponent


def run(
    widths: tuple[int, ...] = (1, 2, 3),
    domain_sizes: tuple[int, ...] = (2, 4, 8, 16),
    num_variables: int = 14,
    seed: int = 0,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Fit the DP cost exponent in |D| for each target width."""
    ctx = RunContext.ensure(context, "E4-freuder")
    result = ExperimentResult(
        experiment_id="E4-freuder",
        claim="Theorem 4.2: treewidth-k CSP solvable in O(|V|·|D|^{k+1})",
        columns=("width", "achieved_width", "D", "dp_ops", "satisfiable"),
    )
    exponents: dict[int, float] = {}
    for width in widths:
        ds, ops = [], []
        for d in domain_sizes:
            instance = bounded_treewidth_csp(
                num_variables, d, width, tightness=0.2, seed=seed + width
            )
            achieved, decomposition = treewidth_min_fill(instance.primal_graph())
            counter = ctx.new_counter()
            with ctx.span("E4/dp", width=width, D=d):
                solution = solve_with_treewidth(instance, decomposition, counter)
            ds.append(d)
            ops.append(counter.total)
            result.add_row(
                width=width,
                achieved_width=achieved,
                D=d,
                dp_ops=counter.total,
                satisfiable=solution is not None,
            )
        exponents[width] = fit_exponent(ds, ops)
    result.findings["fitted_exponents_by_width"] = exponents
    # The theorem predicts slope <= k+1 (plus lower-order noise).
    result.findings["verdict"] = (
        "PASS"
        if all(slope <= width + 1.6 for width, slope in exponents.items())
        and all(
            exponents[a] <= exponents[b] + 0.5
            for a, b in zip(sorted(exponents), sorted(exponents)[1:])
        )
        else "FAIL"
    )
    return result
