"""E15 — constant-delay enumeration for acyclic queries (§8, [13, 16]).

The positive side of the story whose negative side is the hyperclique
conjecture: after linear preprocessing, α-acyclic queries enumerate
with data-independent delay, while naive nested-loop enumeration
suffers delays that grow with the data (it re-discovers dangling
tuples between answers).

Workload: the path-3 query over databases where half of R1's tuples
dangle (their R2 continuation never reaches R3). The naive enumerator
pays ~N operations between answers scanning the dead branches; the
preprocessed enumerator's inter-answer delay stays flat as N grows.
"""

from __future__ import annotations

from ..observability.context import RunContext
from ..relational.database import Database
from ..relational.enumeration import (
    enumerate_acyclic,
    enumerate_nested_loop,
    measure_delays,
)
from ..relational.query import JoinQuery
from ..relational.relation import Relation
from .harness import ExperimentResult, fit_exponent


def dangling_database(n: int, answers: int = 10) -> Database:
    """A path-3 instance: even R1 tuples reach answers, odd ones dangle
    inside R2."""
    r1 = Relation("R1", ("x", "y"), [(i, i) for i in range(n)])
    r2_tuples = []
    for i in range(n):
        if i % 2 == 0:
            r2_tuples.append((i, 0))          # continues to R3
        else:
            r2_tuples.append((i, n + i))      # dangles
    r2 = Relation("R2", ("x", "y"), r2_tuples)
    r3 = Relation("R3", ("x", "y"), [(0, j) for j in range(answers)])
    return Database([r1, r2, r3])


def run(
    sizes: tuple[int, ...] = (50, 100, 200, 400),
    context: RunContext | None = None,
) -> ExperimentResult:
    """Max inter-answer delay of both enumerators across an N sweep."""
    ctx = RunContext.ensure(context, "E15-enumeration")
    query = JoinQuery.path(3)
    result = ExperimentResult(
        experiment_id="E15-enumeration",
        claim="[13]: acyclic queries enumerate with data-independent "
        "delay after linear preprocessing; naive enumeration does not",
        columns=(
            "N",
            "answers",
            "naive_max_delay",
            "acyclic_max_delay",
            "acyclic_preprocessing",
        ),
    )
    ns, naive_delays, acyclic_delays = [], [], []
    for n in sizes:
        database = dangling_database(n)

        naive_counter = ctx.new_counter()
        with ctx.span("E15/naive", N=n):
            naive = measure_delays(
                enumerate_nested_loop(query, database, naive_counter), naive_counter
            )
        acyclic_counter = ctx.new_counter()
        with ctx.span("E15/acyclic", N=n):
            acyclic = measure_delays(
                enumerate_acyclic(query, database, acyclic_counter), acyclic_counter
            )
        assert naive.answers == acyclic.answers
        # Setup (preprocessing before the first answer) is profiled
        # separately; max_delay covers inter-answer gaps *and* the
        # exhaustion tail after the last answer, so neither end of the
        # run can hide data-dependent work.
        naive_max = naive.max_delay
        acyclic_max = acyclic.max_delay
        ns.append(n)
        naive_delays.append(max(naive_max, 1))
        acyclic_delays.append(max(acyclic_max, 1))
        result.add_row(
            N=n,
            answers=acyclic.answers,
            naive_max_delay=naive_max,
            acyclic_max_delay=acyclic_max,
            acyclic_preprocessing=acyclic.setup,
        )
    result.findings["naive_delay_exponent"] = fit_exponent(ns, naive_delays)
    result.findings["acyclic_delay_exponent"] = fit_exponent(ns, acyclic_delays)
    result.findings["verdict"] = (
        "PASS"
        if result.findings["naive_delay_exponent"] > 0.7
        and result.findings["acyclic_delay_exponent"] < 0.2
        else "FAIL"
    )
    return result
