"""E17 — where the hard instances live: the random-CSP phase transition.

Context for §6: the ETH postulates that hard SAT/CSP instances exist;
empirically they cluster at a constraint-tightness threshold where the
satisfiability probability crosses 1/2 — below it almost everything is
satisfiable (easy), above it almost everything is refutable (easy
again), and search cost peaks at the crossover. The experiment sweeps
the tightness of random binary CSPs and reports satisfiable fraction
and mean backtracking cost per tightness.
"""

from __future__ import annotations

from ..csp.backtracking import solve_backtracking
from ..generators.csp_gen import random_binary_csp
from ..observability.context import RunContext
from .harness import ExperimentResult


def run(
    tightness_values: tuple[float, ...] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85),
    num_variables: int = 12,
    domain_size: int = 4,
    constraint_factor: float = 2.2,
    trials: int = 8,
    seed: int = 0,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Sweep constraint tightness; report SAT fraction and search cost."""
    ctx = RunContext.ensure(context, "E17-phase-transition")
    result = ExperimentResult(
        experiment_id="E17-phase-transition",
        claim="§6 context: random CSP hardness peaks at the "
        "satisfiability threshold; both phases' edges are easy",
        columns=("tightness", "sat_fraction", "mean_ops"),
    )
    num_constraints = round(constraint_factor * num_variables)
    costs = []
    for tightness in tightness_values:
        sat_count = 0
        total_ops = 0
        with ctx.span("E17/sweep", tightness=tightness, trials=trials):
            for trial in range(trials):
                instance = random_binary_csp(
                    num_variables,
                    domain_size,
                    num_constraints,
                    tightness=tightness,
                    seed=seed * 1000 + trial * 17 + int(tightness * 100),
                )
                counter = ctx.new_counter()
                if solve_backtracking(instance, counter=counter) is not None:
                    sat_count += 1
                total_ops += counter.total
        mean_ops = total_ops / trials
        costs.append(mean_ops)
        result.add_row(
            tightness=tightness,
            sat_fraction=sat_count / trials,
            mean_ops=mean_ops,
        )

    sat_fractions = result.column("sat_fraction")
    peak_index = costs.index(max(costs))
    result.findings["peak_tightness"] = tightness_values[peak_index]
    result.findings["peak_over_edges"] = max(costs) / max(
        1.0, (costs[0] + costs[-1]) / 2
    )
    # The shape: SAT fraction decreases along the sweep, and the cost
    # peak sits strictly inside the sweep (not at either easy edge).
    monotone = all(a >= b - 0.26 for a, b in zip(sat_fractions, sat_fractions[1:]))
    interior_peak = 0 < peak_index < len(tightness_values) - 1
    result.findings["verdict"] = (
        "PASS" if monotone and interior_peak and result.findings["peak_over_edges"] > 1.5
        else "FAIL"
    )
    return result
