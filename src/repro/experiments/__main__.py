"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run E3 E4
    python -m repro.experiments run all --parallel 4 --json run.json
    python -m repro.experiments run all --compare results/run-0001.json
    python -m repro.experiments validate results/run-0002.json

Each run prints every experiment's claim, row table, and findings, and
persists a versioned :class:`~repro.observability.record.RunRecord`
under ``--results-dir`` (or to ``--json``). Re-runs replay unchanged
experiments from the content-addressed cache unless ``--no-cache``.
Exit codes: 0 all experiments succeeded, 1 failures/timeouts/FAIL
verdicts/drift, 2 usage errors (unknown experiment id).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable
from pathlib import Path

from ..observability.cache import ResultCache
from ..observability.record import (
    RunRecord,
    compare_records,
    render_result_payload,
    validate_record,
)
from ..observability.runner import ExperimentSpec, run_specs
from . import (
    exp_agm,
    exp_clique_csp,
    exp_domset,
    exp_enumeration,
    exp_finegrained,
    exp_freuder,
    exp_hom_counting,
    exp_hyperclique,
    exp_hypotheses,
    exp_kclique_mm,
    exp_phase_transition,
    exp_schaefer,
    exp_special,
    exp_treewidth_opt,
    exp_triangle,
    exp_vc_fpt,
    exp_wcoj,
)

#: Experiment id prefix → the spec bundling its runner callables.
SPECS: dict[str, ExperimentSpec] = {
    spec.key: spec
    for spec in (
        ExperimentSpec("E1", (exp_agm.run_upper,)),
        ExperimentSpec("E2", (exp_agm.run_tight,)),
        ExperimentSpec("E3", (exp_wcoj.run, exp_wcoj.run_orderings)),
        ExperimentSpec("E4", (exp_freuder.run,)),
        ExperimentSpec("E5", (exp_schaefer.run_classifier, exp_schaefer.run_hard_ratio)),
        ExperimentSpec("E6", (exp_special.run,)),
        ExperimentSpec("E7", (exp_clique_csp.run,)),
        ExperimentSpec("E8", (exp_treewidth_opt.run,)),
        ExperimentSpec("E9", (exp_domset.run,)),
        ExperimentSpec("E10", (exp_kclique_mm.run,)),
        ExperimentSpec("E11", (exp_triangle.run,)),
        ExperimentSpec("E12", (exp_hyperclique.run,)),
        ExperimentSpec("E13", (exp_hypotheses.run,)),
        ExperimentSpec("E14", (exp_vc_fpt.run,)),
        ExperimentSpec("E15", (exp_enumeration.run,)),
        ExperimentSpec("E16", (exp_hom_counting.run,)),
        ExperimentSpec("E17", (exp_phase_transition.run,)),
        ExperimentSpec("E18", (exp_finegrained.run,)),
    )
}

#: Back-compat view: experiment id prefix → its runner callables.
RUNNERS: dict[str, list[Callable]] = {
    key: list(spec.runners) for key, spec in SPECS.items()
}


def _ordered_ids() -> list[str]:
    return sorted(SPECS, key=lambda k: int(k[1:]))


def list_experiments() -> None:
    for key in _ordered_ids():
        # Instantiate nothing; read the module docstring's first line.
        runner = SPECS[key].runners[0]
        doc = (sys.modules[runner.__module__].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{key:>4}  {summary}")


def resolve_ids(ids: list[str]) -> list[str] | None:
    """Normalize user-supplied ids to spec keys; None on unknown ids."""
    if ids == ["all"]:
        return _ordered_ids()
    resolved = []
    for raw in ids:
        key = raw.upper().split("-")[0]
        if key not in SPECS:
            print(f"unknown experiment {raw!r}; try 'list'", file=sys.stderr)
            return None
        resolved.append(key)
    return resolved


def _next_record_path(results_dir: Path) -> Path:
    taken = []
    for existing in results_dir.glob("run-*.json"):
        suffix = existing.stem.removeprefix("run-")
        if suffix.isdigit():
            taken.append(int(suffix))
    return results_dir / f"run-{max(taken, default=0) + 1:04d}.json"


def _print_entry(entry) -> None:
    """Progress output for one finalized experiment entry."""
    if entry.status in ("ok", "cached"):
        for payload in entry.results:
            print(render_result_payload(payload))
            print()
        print(
            f"{entry.key}: {entry.status} — "
            f"{entry.cost_total} ops, {entry.elapsed_s:.2f}s"
        )
    else:
        print(f"{entry.key}: {entry.status} — {entry.error}", file=sys.stderr)
    print()


def run_command(args: argparse.Namespace) -> int:
    ids = resolve_ids(args.ids)
    if ids is None:
        return 2
    results_dir = Path(args.results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    cache = None if args.no_cache else ResultCache(results_dir / "cache")
    record = run_specs(
        [SPECS[key] for key in ids],
        parallel=args.parallel,
        timeout=args.timeout,
        cache=cache,
        on_complete=_print_entry,
    )

    path = Path(args.json) if args.json else _next_record_path(results_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(record.to_json() + "\n", encoding="utf-8")
    print(f"record written to {path}")

    status = 0
    failures = record.failures
    if failures:
        summary = ", ".join(f"{run.key} ({run.status})" for run in failures)
        print(f"{len(failures)} experiment(s) failed: {summary}", file=sys.stderr)
        status = 1

    if args.compare:
        old_payload = json.loads(Path(args.compare).read_text(encoding="utf-8"))
        problems = validate_record(old_payload)
        if problems:
            print(
                f"--compare record {args.compare} is invalid: {problems[0]}",
                file=sys.stderr,
            )
            return 2
        diff = compare_records(old_payload, record.to_dict(), tolerance=args.tolerance)
        print(diff.render())
        if diff.has_drift:
            print("findings drifted beyond tolerance", file=sys.stderr)
            status = max(status, 1)
    return status


def validate_command(path: str) -> int:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_record(payload)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    experiments = payload["experiments"]
    print(f"{path}: valid {payload['schema']} record, {len(experiments)} experiment(s)")
    return 0


def run_experiments(ids: list[str]) -> int:
    """Serial in-process runner kept for programmatic use: no record
    persistence, no cache, no worker pool."""
    resolved = resolve_ids(ids)
    if resolved is None:
        return 2
    failures = 0
    for key in resolved:
        for runner in RUNNERS[key]:
            result = runner()
            print(result)
            print()
            if result.findings.get("verdict") == "FAIL":
                failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")

    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (e.g. E3) or 'all'")
    run_parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="worker processes (default: 1)",
    )
    run_parser.add_argument(
        "--json", metavar="PATH",
        help="write the run record here instead of results-dir/run-NNNN.json",
    )
    run_parser.add_argument(
        "--compare", metavar="OLD",
        help="diff findings against a previous run record; drift exits 1",
    )
    run_parser.add_argument(
        "--tolerance", type=float, default=0.15, metavar="T",
        help="absolute exponent-drift tolerance for --compare (default: 0.15)",
    )
    run_parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-experiment timeout in seconds (default: none)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="always execute; do not read or write the result cache",
    )
    run_parser.add_argument(
        "--results-dir", default="results", metavar="DIR",
        help="directory for run records and the cache (default: results)",
    )

    validate_parser = sub.add_parser(
        "validate", help="schema-check a run record JSON file"
    )
    validate_parser.add_argument("path", help="run record to validate")

    args = parser.parse_args(argv)
    if args.command == "list":
        list_experiments()
        return 0
    if args.command == "validate":
        return validate_command(args.path)
    return run_command(args)


if __name__ == "__main__":
    raise SystemExit(main())
